//! Quickstart: inspect a three-line pipeline for introduced bias, in SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use blue_elephants::mlinspect::{PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};

fn main() {
    // A tiny pipeline: load, then filter. The filter keeps rows with
    // age > 30 — which, in this data, skews the race distribution.
    let pipeline = r#"
data = pd.read_csv('people.csv', na_values='?')
data = data[['age', 'income']]
data = data[data['age'] > 30]
"#;
    let csv = "\
age,income,race
25,40000,race1
28,38000,race1
29,52000,race1
35,61000,race2
41,58000,race2
52,49000,race2
";

    let mut engine = Engine::new(EngineProfile::in_memory());
    let result = PipelineInspector::on_pipeline(pipeline)
        .with_file("people.csv", csv)
        .no_bias_introduced_for(&["race"], 0.25)
        .execute_in_sql(&mut engine, SqlMode::Cte, false)
        .expect("pipeline runs");

    println!("captured DAG:\n{}", result.dag.describe());

    let check = &result.check_results[0];
    println!(
        "NoBiasIntroducedFor(race, 25%): {}",
        if check.passed() { "PASSED" } else { "FAILED" }
    );
    for v in &check.bias_violations {
        println!(
            "  node #{} ({}) changed '{}' ratios by {:.1}%:",
            v.node,
            result.dag.node(v.node).kind.label(),
            v.column,
            v.max_abs_change * 100.0
        );
        for (value, change) in v.change.changes() {
            println!("    {value}: {:+.3}", change);
        }
    }

    // The selection removed every race1 row although `race` was projected
    // away before the filter — the ctid join-back still measures it.
    assert!(!check.passed());
}
