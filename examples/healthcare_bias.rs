//! The paper's flagship scenario: the healthcare pipeline, inspected for
//! technical bias on `race` and `age_group`, end-to-end including training.
//!
//! ```sh
//! cargo run --release --example healthcare_bias
//! ```

use blue_elephants::datagen;
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};

fn main() {
    let patients = datagen::patients_csv(889, 42);
    let histories = datagen::histories_csv(889, 42);

    // Run the identical inspection on the baseline and on both database
    // profiles.
    let baseline = PipelineInspector::on_pipeline(pipelines::HEALTHCARE)
        .with_file("patients.csv", patients.clone())
        .with_file("histories.csv", histories.clone())
        .no_bias_introduced_for(&["race", "age_group"], 0.25)
        .no_illegal_features(&["race"])
        .execute()
        .expect("baseline run");

    let mut postgres = Engine::new(EngineProfile::disk_based());
    let in_postgres = PipelineInspector::on_pipeline(pipelines::HEALTHCARE)
        .with_file("patients.csv", patients.clone())
        .with_file("histories.csv", histories.clone())
        .no_bias_introduced_for(&["race", "age_group"], 0.25)
        .no_illegal_features(&["race"])
        .execute_in_sql(&mut postgres, SqlMode::View, true)
        .expect("postgres run");

    let mut umbra = Engine::new(EngineProfile::in_memory());
    let in_umbra = PipelineInspector::on_pipeline(pipelines::HEALTHCARE)
        .with_file("patients.csv", patients)
        .with_file("histories.csv", histories)
        .no_bias_introduced_for(&["race", "age_group"], 0.25)
        .no_illegal_features(&["race"])
        .execute_in_sql(&mut umbra, SqlMode::Cte, false)
        .expect("umbra run");

    for (name, result) in [
        ("pandas baseline", &baseline),
        ("postgres (VIEW, materialized)", &in_postgres),
        ("umbra (CTE)", &in_umbra),
    ] {
        println!("== {name} ==");
        for check in &result.check_results {
            let what = match &check.check {
                blue_elephants::mlinspect::checks::Check::NoBiasIntroducedFor {
                    columns, ..
                } => format!("NoBiasIntroducedFor({})", columns.join(", ")),
                blue_elephants::mlinspect::checks::Check::NoIllegalFeatures { .. } => {
                    "NoIllegalFeatures".to_string()
                }
            };
            println!(
                "  {what}: {}",
                if check.passed() { "PASSED" } else { "FAILED" }
            );
            for v in &check.bias_violations {
                println!(
                    "    line {} {} changed {} by {:+.1}%",
                    result.dag.node(v.node).line,
                    result.dag.node(v.node).kind.label(),
                    v.column,
                    v.max_abs_change * 100.0
                );
            }
            for f in &check.illegal_features {
                println!("    illegal feature: {f}");
            }
        }
        if let Some(acc) = result.accuracy() {
            println!("  model accuracy: {acc:.4}");
        }
    }

    // All three agree on the verdicts.
    assert_eq!(
        baseline.check_results[0].passed(),
        in_postgres.check_results[0].passed()
    );
    assert_eq!(
        baseline.check_results[0].passed(),
        in_umbra.check_results[0].passed()
    );
}
