//! Print the SQL the backend generates for the healthcare pipeline — the
//! paper's "functionality to generate inspection-enabled SQL queries from
//! pipelines written in Python without execution".
//!
//! ```sh
//! cargo run --example transpile_only           # CTE mode
//! cargo run --example transpile_only -- view   # VIEW mode, materialized
//! ```

use blue_elephants::datagen;
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};

fn main() {
    let view_mode = std::env::args().any(|a| a == "view");
    let mode = if view_mode {
        SqlMode::View
    } else {
        SqlMode::Cte
    };

    let transpiled = PipelineInspector::on_pipeline(pipelines::HEALTHCARE)
        .with_file("patients.csv", datagen::patients_csv(20, 1))
        .with_file("histories.csv", datagen::histories_csv(20, 1))
        .transpile_only(mode)
        .expect("transpilation");

    println!(
        "-- {} table expressions generated",
        transpiled.container.len()
    );
    println!("{}", transpiled.script(mode, view_mode));
}
