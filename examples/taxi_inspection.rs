//! The §6.6 experiment in miniature: inspect an increasing number of
//! sensitive columns over the taxi workload and watch how each target's
//! runtime scales (Figure 11's shape).
//!
//! ```sh
//! cargo run --release --example taxi_inspection
//! ```

use blue_elephants::datagen::{self, taxi::INSPECTED_COLUMNS};
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};
use std::time::Instant;

fn main() {
    let rows = 50_000;
    let taxi = datagen::taxi_csv(rows, 2019);
    println!("taxi rows: {rows}");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "#columns", "pandas", "pg-cte", "umbra-cte"
    );

    for k in 1..=INSPECTED_COLUMNS.len() {
        let columns: Vec<&str> = INSPECTED_COLUMNS[..k].to_vec();

        let t0 = Instant::now();
        PipelineInspector::on_pipeline(pipelines::TAXI)
            .with_file("taxi.csv", taxi.clone())
            .no_bias_introduced_for(&columns, 0.25)
            .execute()
            .expect("pandas");
        let t_pandas = t0.elapsed();

        let mut pg = Engine::new(EngineProfile::disk_based());
        let t0 = Instant::now();
        PipelineInspector::on_pipeline(pipelines::TAXI)
            .with_file("taxi.csv", taxi.clone())
            .no_bias_introduced_for(&columns, 0.25)
            .execute_in_sql(&mut pg, SqlMode::Cte, false)
            .expect("pg");
        let t_pg = t0.elapsed();

        let mut umbra = Engine::new(EngineProfile::in_memory());
        let t0 = Instant::now();
        PipelineInspector::on_pipeline(pipelines::TAXI)
            .with_file("taxi.csv", taxi.clone())
            .no_bias_introduced_for(&columns, 0.25)
            .execute_in_sql(&mut umbra, SqlMode::Cte, false)
            .expect("umbra");
        let t_umbra = t0.elapsed();

        println!("{k:<10} {:>14?} {:>14?} {:>14?}", t_pandas, t_pg, t_umbra);
    }
}
