//! The compas pipeline end-to-end: preprocessing in SQL, logistic-regression
//! training, accuracy comparison across execution targets (paper §6.4).
//!
//! ```sh
//! cargo run --release --example compas_end_to_end
//! ```

use blue_elephants::datagen;
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};
use std::time::Instant;

fn inspector() -> PipelineInspector {
    PipelineInspector::on_pipeline(pipelines::COMPAS)
        .with_file("compas_train.csv", datagen::compas_csv(2167, 7))
        .with_file("compas_test.csv", datagen::compas_csv(700, 8))
        .no_bias_introduced_for(&["race"], 0.3)
}

fn main() {
    let t0 = Instant::now();
    let baseline = inspector().execute().expect("baseline");
    let t_pandas = t0.elapsed();

    let mut pg = Engine::new(EngineProfile::disk_based());
    let t0 = Instant::now();
    let on_pg = inspector()
        .execute_in_sql(&mut pg, SqlMode::View, true)
        .expect("postgres");
    let t_pg = t0.elapsed();

    let mut umbra = Engine::new(EngineProfile::in_memory());
    let t0 = Instant::now();
    let on_umbra = inspector()
        .execute_in_sql(&mut umbra, SqlMode::Cte, false)
        .expect("umbra");
    let t_umbra = t0.elapsed();

    println!("target                      accuracy   runtime");
    println!(
        "pandas baseline             {:.4}     {t_pandas:?}",
        baseline.accuracy().unwrap()
    );
    println!(
        "postgres VIEW+materialized  {:.4}     {t_pg:?}",
        on_pg.accuracy().unwrap()
    );
    println!(
        "umbra CTE                   {:.4}     {t_umbra:?}",
        on_umbra.accuracy().unwrap()
    );

    // The preprocessing is equivalent, so accuracies agree closely (the
    // remaining wiggle is SGD row-order sensitivity).
    let a = baseline.accuracy().unwrap();
    let b = on_pg.accuracy().unwrap();
    let c = on_umbra.accuracy().unwrap();
    assert!((a - b).abs() < 0.1, "pandas {a} vs postgres {b}");
    assert!((b - c).abs() < f64::EPSILON, "postgres {b} vs umbra {c}");

    println!("\nper-operation breakdown (umbra):");
    for (node, label, took) in &on_umbra.op_timings {
        println!("  #{node:<3} {label:<18} {took:?}");
    }
}
