//! Both adult pipelines (Table 1's *adult simple* and *adult complex*),
//! executed on the SQL backend with inspection, printing the generated
//! operator DAGs and the per-operator histograms of `race`.
//!
//! ```sh
//! cargo run --release --example adult_pipelines
//! ```

use blue_elephants::datagen;
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};

fn main() {
    let train = datagen::adult_csv(3000, 11);
    let test = datagen::adult_csv(1000, 12);

    for (name, src) in [
        ("adult simple", pipelines::ADULT_SIMPLE),
        ("adult complex", pipelines::ADULT_COMPLEX),
    ] {
        let mut engine = Engine::new(EngineProfile::disk_based());
        let result = PipelineInspector::on_pipeline(src)
            .with_file("adult_train.csv", train.clone())
            .with_file("adult_test.csv", test.clone())
            .no_bias_introduced_for(&["race", "sex"], 0.25)
            .execute_in_sql(&mut engine, SqlMode::View, true)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        println!("== {name} ==");
        println!("{}", result.dag.describe());
        println!("accuracy: {:.4}", result.accuracy().unwrap());

        // Show how the race ratios move through the pipeline.
        println!("race ratios per operator:");
        for node in &result.dag.nodes {
            if let Some(h) = result.inspections.histogram(node.id, "race") {
                let ratios: Vec<String> = h
                    .ratios()
                    .iter()
                    .map(|(v, r)| format!("{v}={r:.3}"))
                    .collect();
                println!(
                    "  #{:<3} {:<16} {}",
                    node.id,
                    node.kind.label(),
                    ratios.join("  ")
                );
            }
        }
        println!();
    }
}
