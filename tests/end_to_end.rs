//! End-to-end runs over all pipelines, engine profiles, SQL modes and
//! seeds — the full §6.4 matrix at test scale.

use blue_elephants::datagen;
use blue_elephants::mlinspect::{pipelines, InspectorResult, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};

fn inspector(src: &str, seed: u64) -> PipelineInspector {
    PipelineInspector::on_pipeline(src)
        .with_file("patients.csv", datagen::patients_csv(300, 31))
        .with_file("histories.csv", datagen::histories_csv(300, 31))
        .with_file("compas_train.csv", datagen::compas_csv(400, 32))
        .with_file("compas_test.csv", datagen::compas_csv(160, 33))
        .with_file("adult_train.csv", datagen::adult_csv(500, 34))
        .with_file("adult_test.csv", datagen::adult_csv(200, 35))
        .with_seed(seed)
        .no_bias_introduced_for(&["race"], 0.3)
}

fn assert_sane(name: &str, result: &InspectorResult) {
    let acc = result
        .accuracy()
        .unwrap_or_else(|| panic!("{name}: no accuracy"));
    assert!((0.0..=1.0).contains(&acc), "{name}: accuracy {acc}");
    // Better than random guessing on these datasets.
    assert!(acc > 0.55, "{name}: accuracy only {acc}");
    assert!(!result.op_timings.is_empty());
}

#[test]
fn full_matrix_of_modes_and_profiles() {
    for (name, src) in pipelines::all() {
        // Baseline.
        let baseline = inspector(src, 0).execute().unwrap();
        assert_sane(&format!("{name} pandas"), &baseline);
        // SQL: two profiles x two modes x materialization.
        for profile in [
            EngineProfile::disk_based_no_latency(),
            EngineProfile::in_memory(),
        ] {
            for (mode, materialize) in [
                (SqlMode::Cte, false),
                (SqlMode::View, false),
                (SqlMode::View, true),
            ] {
                let mut engine = Engine::new(profile.clone());
                let result = inspector(src, 0)
                    .execute_in_sql(&mut engine, mode, materialize)
                    .unwrap_or_else(|e| {
                        panic!("{name} {} {mode:?} mat={materialize}: {e}", profile.name)
                    });
                assert_sane(&format!("{name} {} {mode:?}", profile.name), &result);
            }
        }
    }
}

#[test]
fn accuracy_varies_with_seed_like_table5() {
    // Table 5's healthcare row has min 0.8767, max 0.9589 over 5 runs; the
    // stochastic split/init must produce run-to-run variance here too.
    let accs: Vec<f64> = (0..5)
        .map(|seed| {
            inspector(pipelines::HEALTHCARE, seed)
                .execute()
                .unwrap()
                .accuracy()
                .unwrap()
        })
        .collect();
    let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = accs.iter().cloned().fold(0.0, f64::max);
    assert!(max > min, "no variance across seeds: {accs:?}");
    assert!(max - min < 0.2, "variance implausibly large: {accs:?}");
}

#[test]
fn same_seed_is_reproducible() {
    let a = inspector(pipelines::ADULT_SIMPLE, 7).execute().unwrap();
    let b = inspector(pipelines::ADULT_SIMPLE, 7).execute().unwrap();
    assert_eq!(a.accuracies, b.accuracies);
}

#[test]
fn engine_statistics_reflect_profile_semantics() {
    // CTE mode on the disk profile materializes CTEs; the in-memory profile
    // never does.
    let mut pg = Engine::new(EngineProfile::disk_based_no_latency());
    inspector(pipelines::ADULT_SIMPLE, 0)
        .execute_in_sql(&mut pg, SqlMode::Cte, false)
        .unwrap();
    assert!(pg.stats().ctes_materialized > 0);

    let mut umbra = Engine::new(EngineProfile::in_memory());
    inspector(pipelines::ADULT_SIMPLE, 0)
        .execute_in_sql(&mut umbra, SqlMode::Cte, false)
        .unwrap();
    assert_eq!(umbra.stats().ctes_materialized, 0);
    // The featurisation references its fit tables repeatedly; Umbra's
    // DAG-shaped plans share those subtrees instead of re-executing them.
    assert!(umbra.stats().shared_scans > 0);
}

#[test]
fn healthcare_score_in_paper_range() {
    // Table 5: healthcare avg 0.9068 (min 0.8767, max 0.9589). Allow a wide
    // band — the data is synthetic.
    let result = inspector(pipelines::HEALTHCARE, 1).execute().unwrap();
    let acc = result.accuracy().unwrap();
    assert!((0.8..=1.0).contains(&acc), "healthcare accuracy {acc}");
}

#[test]
fn compas_score_in_paper_range() {
    // Table 5: compas 0.8079.
    let result = inspector(pipelines::COMPAS, 1).execute().unwrap();
    let acc = result.accuracy().unwrap();
    assert!((0.7..=0.95).contains(&acc), "compas accuracy {acc}");
}
