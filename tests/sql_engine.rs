//! Wider SQL-engine coverage: the dialect corners the generated queries rely
//! on, exercised through the public `Engine` API from outside the crate.

use blue_elephants::sqlengine::{Engine, EngineProfile};
use etypes::Value;

fn engine() -> Engine {
    Engine::new(EngineProfile::in_memory())
}

#[test]
fn copy_from_a_real_file() {
    let dir = std::env::temp_dir().join("be_engine_copy_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.csv");
    std::fs::write(&path, "a,b\n1,x\n?,y\n3,z\n").unwrap();

    let mut e = engine();
    e.execute("CREATE TABLE t (a int, b text)").unwrap();
    let out = e
        .execute(&format!(
            "COPY t (\"a\", \"b\") FROM '{}' WITH (DELIMITER ',', NULL '?', FORMAT CSV, HEADER TRUE)",
            path.display()
        ))
        .unwrap();
    assert_eq!(out.rows_affected, 3);
    let r = e
        .query("SELECT count(*) AS n FROM t WHERE a IS NULL")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_outer_join() {
    let mut e = engine();
    e.execute_script(
        "CREATE TABLE a (k int, va text); INSERT INTO a VALUES (1, 'l1'), (2, 'l2');
         CREATE TABLE b (k int, vb text); INSERT INTO b VALUES (2, 'r2'), (3, 'r3');",
    )
    .unwrap();
    let r = e
        .query("SELECT a.k, va, vb FROM a FULL OUTER JOIN b ON a.k = b.k")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert!(r
        .rows
        .iter()
        .any(|row| row[1].is_null() || row[2].is_null()));
}

#[test]
fn nested_cte_scopes() {
    let mut e = engine();
    e.execute_script("CREATE TABLE t (v int); INSERT INTO t VALUES (1), (2);")
        .unwrap();
    // Inner WITH shadows nothing but must resolve before the outer one.
    let r = e
        .query(
            "WITH outer_cte AS (
               WITH inner_cte AS (SELECT v * 10 AS w FROM t)
               SELECT w FROM inner_cte
             )
             SELECT sum(w) AS s FROM outer_cte",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(30));
}

#[test]
fn cte_referencing_earlier_cte() {
    let mut pg = Engine::new(EngineProfile::disk_based_no_latency());
    pg.execute_script("CREATE TABLE t (v int); INSERT INTO t VALUES (1), (2), (3);")
        .unwrap();
    let r = pg
        .query(
            "WITH a AS (SELECT v FROM t WHERE v > 1),
                  b AS (SELECT v * 2 AS d FROM a)
             SELECT sum(d) AS s FROM b",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(10));
    // Both referenced CTEs were materialized exactly once each.
    assert_eq!(pg.stats().ctes_materialized, 2);
}

#[test]
fn distinct_and_count_distinct() {
    let mut e = engine();
    e.execute_script("CREATE TABLE t (v int); INSERT INTO t VALUES (1), (1), (2), (NULL);")
        .unwrap();
    let r = e.query("SELECT DISTINCT v FROM t ORDER BY v").unwrap();
    assert_eq!(r.rows.len(), 3); // 1, 2, NULL
    let r = e.query("SELECT count(DISTINCT v) AS n FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2)); // NULL not counted
}

#[test]
fn division_by_zero_is_a_runtime_error() {
    let mut e = engine();
    e.execute_script("CREATE TABLE t (v int); INSERT INTO t VALUES (0);")
        .unwrap();
    assert!(e.query("SELECT 1 / v FROM t").is_err());
}

#[test]
fn cast_failures_surface() {
    let mut e = engine();
    e.execute_script("CREATE TABLE t (s text); INSERT INTO t VALUES ('abc');")
        .unwrap();
    assert!(e.query("SELECT s::int FROM t").is_err());
    let mut e2 = engine();
    e2.execute_script("CREATE TABLE t (s text); INSERT INTO t VALUES ('42');")
        .unwrap();
    assert_eq!(
        e2.query("SELECT s::int AS n FROM t").unwrap().rows[0][0],
        Value::Int(42)
    );
}

#[test]
fn order_by_output_alias() {
    let mut e = engine();
    e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (3), (1), (2);")
        .unwrap();
    let r = e
        .query("SELECT a * 10 AS d FROM t ORDER BY d DESC")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Int(30)],
            vec![Value::Int(20)],
            vec![Value::Int(10)]
        ]
    );
}

#[test]
fn aggregates_over_empty_input() {
    let mut e = engine();
    e.execute("CREATE TABLE t (v int)").unwrap();
    let r = e
        .query("SELECT count(*) AS n, sum(v) AS s, avg(v) AS a, array_agg(v) AS arr FROM t")
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![Value::Int(0), Value::Null, Value::Null, Value::Null]
    );
    // With GROUP BY: zero groups.
    let r = e.query("SELECT v, count(*) FROM t GROUP BY v").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn explain_is_available_from_the_public_api() {
    let mut e = engine();
    e.execute("CREATE TABLE t (a int, b int)").unwrap();
    let plan = e.explain("SELECT a FROM t WHERE b > 1").unwrap();
    assert!(plan.contains("Scan Table t"));
    assert!(plan.contains("Filter"));
    assert!(e.explain("CREATE TABLE x (a int)").is_err());
}

#[test]
fn optimizer_toggle_does_not_change_results() {
    let sql = "WITH c AS (SELECT a, b FROM t) SELECT a FROM c WHERE b > 5 ORDER BY a";
    let setup = "CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1, 10), (2, 3), (3, 7);";

    let mut on = Engine::new(EngineProfile::in_memory());
    on.execute_script(setup).unwrap();
    let mut off_profile = EngineProfile::in_memory();
    off_profile.enable_optimizer = false;
    let mut off = Engine::new(off_profile);
    off.execute_script(setup).unwrap();

    assert_eq!(on.query(sql).unwrap().rows, off.query(sql).unwrap().rows);
}

#[test]
fn deep_view_chains_resolve() {
    // The VIEW-mode transpilation stacks dozens of views; make sure long
    // chains bind and execute.
    let mut e = engine();
    e.execute_script("CREATE TABLE t (v int); INSERT INTO t VALUES (1);")
        .unwrap();
    let mut prev = "t".to_string();
    for i in 0..40 {
        let name = format!("v{i}");
        e.execute(&format!(
            "CREATE VIEW {name} AS SELECT v + 1 AS v FROM {prev}"
        ))
        .unwrap();
        prev = name;
    }
    let r = e.query(&format!("SELECT v FROM {prev}")).unwrap();
    assert_eq!(r.rows[0][0], Value::Int(41));
}

#[test]
fn self_referencing_cte_is_rejected_not_hung() {
    let mut e = engine();
    e.execute_script("CREATE TABLE c (v int); INSERT INTO c VALUES (1);")
        .unwrap();
    // `c` in scope refers to the CTE itself -> cycle -> bind error.
    let result = e.query("WITH c AS (SELECT v FROM c) SELECT v FROM c");
    assert!(result.is_err());
}

#[test]
fn median_and_stddev_in_group_context() {
    let mut e = engine();
    e.execute_script(
        "CREATE TABLE t (g text, v int);
         INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 10), ('b', 10);",
    )
    .unwrap();
    let r = e
        .query("SELECT g, median(v) AS m, stddev_pop(v) AS s FROM t GROUP BY g ORDER BY g")
        .unwrap();
    assert_eq!(r.rows[0][1], Value::Float(2.0));
    assert_eq!(r.rows[0][2], Value::Float(1.0));
    assert_eq!(r.rows[1][2], Value::Float(0.0));
}

#[test]
fn right_join_matches_listing_one() {
    let mut e = engine();
    e.execute_script(
        "CREATE TABLE cur (s int, ratio double precision); INSERT INTO cur VALUES (2, 1.0);
         CREATE TABLE orig (s int, ratio double precision);
         INSERT INTO orig VALUES (1, 0.5), (2, 0.5);",
    )
    .unwrap();
    let r = e
        .query(
            "SELECT o.s, o.ratio - COALESCE(c.ratio, 0) AS bias_change
             FROM cur c RIGHT OUTER JOIN orig o ON o.s = c.s",
        )
        .unwrap();
    let mut rows = r.sorted_rows();
    rows.sort();
    assert_eq!(rows[0], vec![Value::Int(1), Value::Float(0.5)]);
    assert_eq!(rows[1], vec![Value::Int(2), Value::Float(-0.5)]);
}
