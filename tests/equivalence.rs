//! Backend equivalence: the SQL translation must produce the same relations
//! as the pandas baseline for every pipeline operator (the paper verifies
//! correctness "by comparing the equality of the intermediate results").

use blue_elephants::datagen;
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};
use etypes::Value;

fn inspector(src: &str) -> PipelineInspector {
    PipelineInspector::on_pipeline(src)
        .with_file("patients.csv", datagen::patients_csv(250, 21))
        .with_file("histories.csv", datagen::histories_csv(250, 21))
        .with_file("compas_train.csv", datagen::compas_csv(400, 22))
        .with_file("compas_test.csv", datagen::compas_csv(150, 23))
        .with_file("adult_train.csv", datagen::adult_csv(500, 24))
        .with_file("adult_test.csv", datagen::adult_csv(200, 25))
        .keep_relations(true)
        .no_bias_introduced_for(&["race", "age_group"], 0.25)
}

/// Booleans in SQL vs 0/1 in sklearn-style outputs compare equal.
fn normalize(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|v| match v {
                    Value::Bool(b) => Value::Int(b as i64),
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 1e15 => Value::Int(f as i64),
                    other => other,
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn assert_equivalent(name: &str, mode: SqlMode, materialize: bool) {
    let src = pipelines::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap()
        .1;
    let baseline = inspector(src).execute().unwrap();
    let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
    let sql = inspector(src)
        .execute_in_sql(&mut engine, mode, materialize)
        .unwrap();

    for (node, pandas_rel) in &baseline.relations {
        let Some(sql_rel) = sql.relations.get(node) else {
            continue;
        };
        assert_eq!(
            pandas_rel.columns, sql_rel.columns,
            "{name} node {node}: column mismatch"
        );
        let (p, s) = (
            normalize(pandas_rel.rows.clone()),
            normalize(sql_rel.rows.clone()),
        );
        assert_eq!(
            p.len(),
            s.len(),
            "{name} node {node} ({}): row count {} vs {}",
            baseline.dag.node(*node).kind.label(),
            p.len(),
            s.len()
        );
        for (i, (pr, sr)) in p.iter().zip(&s).enumerate() {
            assert!(
                rows_close(pr, sr),
                "{name} node {node} row {i}: {pr:?} vs {sr:?}"
            );
        }
    }
}

fn rows_close(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::Float(p), Value::Float(q)) => (p - q).abs() < 1e-9,
            (Value::Float(p), Value::Int(q)) | (Value::Int(q), Value::Float(p)) => {
                (p - *q as f64).abs() < 1e-9
            }
            _ => x == y,
        })
}

#[test]
fn healthcare_relations_match_in_cte_mode() {
    assert_equivalent("healthcare", SqlMode::Cte, false);
}

#[test]
fn healthcare_relations_match_in_view_mode_materialized() {
    assert_equivalent("healthcare", SqlMode::View, true);
}

#[test]
fn compas_relations_match() {
    assert_equivalent("compas", SqlMode::Cte, false);
}

#[test]
fn adult_simple_relations_match() {
    assert_equivalent("adult simple", SqlMode::View, false);
}

#[test]
fn adult_complex_relations_match() {
    assert_equivalent("adult complex", SqlMode::Cte, false);
}

#[test]
fn histograms_match_between_backends() {
    let baseline = inspector(pipelines::HEALTHCARE).execute().unwrap();
    let mut engine = Engine::new(EngineProfile::in_memory());
    let sql = inspector(pipelines::HEALTHCARE)
        .execute_in_sql(&mut engine, SqlMode::Cte, false)
        .unwrap();
    let mut compared = 0;
    for (node, hists) in &baseline.inspections.histograms {
        for h in hists {
            let Some(sh) = sql.inspections.histogram(*node, &h.column) else {
                continue;
            };
            assert_eq!(h.counts, sh.counts, "node {node} column {}", h.column);
            compared += 1;
        }
    }
    assert!(compared >= 10, "only {compared} histograms compared");
}

#[test]
fn accuracies_agree_across_backends() {
    // Preprocessing is identical and the split is shared, so accuracy
    // differences can only come from SGD row-order sensitivity.
    let baseline = inspector(pipelines::ADULT_SIMPLE).execute().unwrap();
    let mut engine = Engine::new(EngineProfile::in_memory());
    let sql = inspector(pipelines::ADULT_SIMPLE)
        .execute_in_sql(&mut engine, SqlMode::Cte, false)
        .unwrap();
    let (a, b) = (baseline.accuracy().unwrap(), sql.accuracy().unwrap());
    assert!((a - b).abs() < 0.05, "baseline {a} vs sql {b}");
}

#[test]
fn profiles_produce_identical_results() {
    // The two engine profiles may differ in speed, never in answers.
    let mut pg = Engine::new(EngineProfile::disk_based_no_latency());
    let mut umbra = Engine::new(EngineProfile::in_memory());
    let on_pg = inspector(pipelines::COMPAS)
        .execute_in_sql(&mut pg, SqlMode::Cte, false)
        .unwrap();
    let on_umbra = inspector(pipelines::COMPAS)
        .execute_in_sql(&mut umbra, SqlMode::Cte, false)
        .unwrap();
    assert_eq!(on_pg.accuracies, on_umbra.accuracies);
    for (node, hists) in &on_pg.inspections.histograms {
        for h in hists {
            assert_eq!(
                Some(&h.counts),
                on_umbra
                    .inspections
                    .histogram(*node, &h.column)
                    .map(|x| &x.counts)
            );
        }
    }
}
