//! Property-based tests over the system's core invariants.

use blue_elephants::dataframe::{DataFrame, Series};
use blue_elephants::mlinspect::backends::split_hash;
use blue_elephants::sqlengine::{Engine, EngineProfile};
use etypes::{read_csv_str, write_csv, CsvOptions, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 8.0)),
        "[a-z]{0,6}".prop_map(Value::text),
    ]
}

proptest! {
    /// Value's total order is antisymmetric and transitive (sort safety).
    #[test]
    fn value_ordering_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Equal values hash equally (group-by key safety).
    #[test]
    fn value_hash_consistent_with_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        if a == b {
            prop_assert_eq!(hash(&a), hash(&b));
        }
    }

    /// CSV write → read round-trips rows (modulo numeric re-typing).
    #[test]
    fn csv_round_trip(rows in proptest::collection::vec(
        (0i64..100, "[a-z]{1,5}", proptest::option::of("[a-z ,]{0,8}")),
        1..20,
    )) {
        let columns = vec!["n".to_string(), "w".to_string(), "t".to_string()];
        let data: Vec<Vec<Value>> = rows
            .iter()
            .map(|(n, w, t)| {
                vec![
                    Value::Int(*n),
                    Value::text(w.clone()),
                    t.as_ref()
                        .filter(|s| !s.is_empty())
                        .map(|s| Value::text(s.clone()))
                        .unwrap_or(Value::Null),
                ]
            })
            .collect();
        let text = write_csv(&columns, &data, ',');
        let parsed = read_csv_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(parsed.rows, data);
    }

    /// The shared split hash partitions any ctid set: every row lands in
    /// exactly one side, and both backends use the same rule.
    #[test]
    fn split_is_a_partition(ctids in proptest::collection::vec(0i64..1_000_000, 1..200), seed in 0u64..1000) {
        for &c in &ctids {
            let h = split_hash(c, seed);
            prop_assert!((0..100).contains(&h));
            let in_test = h < 25;
            let in_train = h >= 25;
            prop_assert!(in_test != in_train);
        }
    }

    /// SQL GROUP BY count equals the dataframe groupby count on the same
    /// data — a cross-substrate metamorphic test.
    #[test]
    fn sql_and_dataframe_group_counts_agree(
        values in proptest::collection::vec(0i64..5, 1..60),
    ) {
        // Dataframe side.
        let df = DataFrame::from_columns(vec![Series::new(
            "g",
            values.iter().map(|v| Value::Int(*v)).collect(),
        )])
        .unwrap();
        let agg = df
            .groupby(&["g"])
            .unwrap()
            .agg(&[blue_elephants::dataframe::AggSpec {
                output: "n".into(),
                input: "g".into(),
                func: blue_elephants::dataframe::AggFunc::Count,
            }])
            .unwrap();
        let mut df_counts: Vec<(i64, i64)> = (0..agg.len())
            .map(|i| {
                (
                    agg.column("g").unwrap().values()[i].as_i64().unwrap(),
                    agg.column("n").unwrap().values()[i].as_i64().unwrap(),
                )
            })
            .collect();
        df_counts.sort_unstable();

        // SQL side.
        let mut engine = Engine::new(EngineProfile::in_memory());
        engine.execute("CREATE TABLE t (g int)").unwrap();
        let inserts: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
        engine
            .execute(&format!("INSERT INTO t VALUES {}", inserts.join(", ")))
            .unwrap();
        let rel = engine
            .query("SELECT g, count(*) AS n FROM t GROUP BY g ORDER BY g")
            .unwrap();
        let sql_counts: Vec<(i64, i64)> = rel
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        prop_assert_eq!(df_counts, sql_counts);
    }

    /// Filters commute with ratio measurement: a WHERE TRUE filter never
    /// changes histogram ratios (operators that keep all rows introduce no
    /// bias — the paper's §3.2 claim, as a property).
    #[test]
    fn row_preserving_filter_conserves_ratios(
        values in proptest::collection::vec(0i64..4, 1..50),
    ) {
        let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
        engine.execute("CREATE TABLE t (s int)").unwrap();
        let inserts: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
        engine
            .execute(&format!("INSERT INTO t VALUES {}", inserts.join(", ")))
            .unwrap();
        let before = engine
            .query("SELECT s, count(*) FROM t GROUP BY s")
            .unwrap();
        let after = engine
            .query(
                "WITH kept AS (SELECT s, ctid FROM t WHERE 1 = 1)
                 SELECT s, count(*) FROM kept GROUP BY s",
            )
            .unwrap();
        prop_assert_eq!(before.sorted_rows(), after.sorted_rows());
    }

    /// Selections never invent tuples: every (value, count) after a filter
    /// is bounded by its count before — the monotonicity the bias check's
    /// join-back relies on.
    #[test]
    fn selection_counts_are_monotone(
        values in proptest::collection::vec((0i64..4, 0i64..10), 1..50),
        threshold in 0i64..10,
    ) {
        let mut engine = Engine::new(EngineProfile::in_memory());
        engine.execute("CREATE TABLE t (s int, v int)").unwrap();
        let inserts: Vec<String> = values.iter().map(|(s, v)| format!("({s}, {v})")).collect();
        engine
            .execute(&format!("INSERT INTO t VALUES {}", inserts.join(", ")))
            .unwrap();
        let before = engine
            .query("SELECT s, count(*) FROM t GROUP BY s")
            .unwrap();
        let after = engine
            .query(&format!(
                "SELECT s, count(*) FROM t WHERE v > {threshold} GROUP BY s"
            ))
            .unwrap();
        for row in &after.rows {
            let b = before
                .rows
                .iter()
                .find(|r| r[0] == row[0])
                .expect("group existed before");
            prop_assert!(row[1].as_i64().unwrap() <= b[1].as_i64().unwrap());
        }
    }
}
