//! Property-style tests over the system's core invariants.
//!
//! Previously driven by `proptest`; now driven by the workspace's own
//! deterministic [`Prng`] so the whole test suite runs offline. Each
//! property draws a few hundred random cases from a fixed seed, which keeps
//! failures reproducible without an external shrinking framework (the
//! drawn inputs are small enough to debug directly).

use blue_elephants::dataframe::{DataFrame, Series};
use blue_elephants::mlinspect::backends::split_hash;
use blue_elephants::sqlengine::{Engine, EngineProfile};
use etypes::{read_csv_str, write_csv, CsvOptions, Prng, Value};

const CASES: usize = 300;

fn arb_value(rng: &mut Prng) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Int(rng.range_i64(-1000, 1000)),
        3 => Value::Float(rng.range_i64(-1000, 1000) as f64 / 8.0),
        _ => Value::text(arb_lowercase(rng, 0, 6)),
    }
}

fn arb_lowercase(rng: &mut Prng, min: usize, max: usize) -> String {
    let len = min + rng.below(max - min + 1);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

/// Value's total order is antisymmetric and transitive (sort safety).
#[test]
fn value_ordering_is_total() {
    use std::cmp::Ordering;
    let mut rng = Prng::new(101);
    for _ in 0..CASES * 3 {
        let (a, b, c) = (
            arb_value(&mut rng),
            arb_value(&mut rng),
            arb_value(&mut rng),
        );
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse(), "{a:?} vs {b:?}");
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            assert_ne!(a.cmp(&c), Ordering::Greater, "{a:?} {b:?} {c:?}");
        }
    }
}

/// Equal values hash equally (group-by key safety).
#[test]
fn value_hash_consistent_with_eq() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let hash = |v: &Value| {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    };
    let mut rng = Prng::new(102);
    for _ in 0..CASES * 3 {
        let (a, b) = (arb_value(&mut rng), arb_value(&mut rng));
        if a == b {
            assert_eq!(hash(&a), hash(&b), "{a:?} vs {b:?}");
        }
    }
}

/// CSV write → read round-trips rows (modulo numeric re-typing).
#[test]
fn csv_round_trip() {
    let mut rng = Prng::new(103);
    for _ in 0..CASES {
        let nrows = 1 + rng.below(19);
        let columns = vec!["n".to_string(), "w".to_string(), "t".to_string()];
        let data: Vec<Vec<Value>> = (0..nrows)
            .map(|_| {
                // Optional third field from a wider alphabet (incl. ',' and
                // spaces) exercising quoting; empty ⇒ NULL.
                let t = if rng.chance(0.5) {
                    let len = rng.below(9);
                    let s: String = (0..len)
                        .map(|_| match rng.below(28) {
                            26 => ',',
                            27 => ' ',
                            k => (b'a' + k as u8) as char,
                        })
                        .collect();
                    if s.is_empty() {
                        Value::Null
                    } else {
                        Value::text(s)
                    }
                } else {
                    Value::Null
                };
                vec![
                    Value::Int(rng.range_i64(0, 100)),
                    Value::text(arb_lowercase(&mut rng, 1, 5)),
                    t,
                ]
            })
            .collect();
        let text = write_csv(&columns, &data, ',');
        let parsed = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(parsed.rows, data, "csv:\n{text}");
    }
}

/// The shared split hash partitions any ctid set: every row lands in
/// exactly one side, and both backends use the same rule.
#[test]
fn split_is_a_partition() {
    let mut rng = Prng::new(104);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 1000;
        let n = 1 + rng.below(199);
        for _ in 0..n {
            let c = rng.range_i64(0, 1_000_000);
            let h = split_hash(c, seed);
            assert!((0..100).contains(&h));
            let in_test = h < 25;
            let in_train = h >= 25;
            assert!(in_test != in_train);
        }
    }
}

/// SQL GROUP BY count equals the dataframe groupby count on the same
/// data — a cross-substrate metamorphic test.
#[test]
fn sql_and_dataframe_group_counts_agree() {
    let mut rng = Prng::new(105);
    for _ in 0..40 {
        let values: Vec<i64> = (0..1 + rng.below(59))
            .map(|_| rng.range_i64(0, 5))
            .collect();

        // Dataframe side.
        let df = DataFrame::from_columns(vec![Series::new(
            "g",
            values.iter().map(|v| Value::Int(*v)).collect(),
        )])
        .unwrap();
        let agg = df
            .groupby(&["g"])
            .unwrap()
            .agg(&[blue_elephants::dataframe::AggSpec {
                output: "n".into(),
                input: "g".into(),
                func: blue_elephants::dataframe::AggFunc::Count,
            }])
            .unwrap();
        let mut df_counts: Vec<(i64, i64)> = (0..agg.len())
            .map(|i| {
                (
                    agg.column("g").unwrap().values()[i].as_i64().unwrap(),
                    agg.column("n").unwrap().values()[i].as_i64().unwrap(),
                )
            })
            .collect();
        df_counts.sort_unstable();

        // SQL side.
        let mut engine = Engine::new(EngineProfile::in_memory());
        engine.execute("CREATE TABLE t (g int)").unwrap();
        let inserts: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
        engine
            .execute(&format!("INSERT INTO t VALUES {}", inserts.join(", ")))
            .unwrap();
        let rel = engine
            .query("SELECT g, count(*) AS n FROM t GROUP BY g ORDER BY g")
            .unwrap();
        let sql_counts: Vec<(i64, i64)> = rel
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(df_counts, sql_counts);
    }
}

/// Filters commute with ratio measurement: a WHERE TRUE filter never
/// changes histogram ratios (operators that keep all rows introduce no
/// bias — the paper's §3.2 claim, as a property).
#[test]
fn row_preserving_filter_conserves_ratios() {
    let mut rng = Prng::new(106);
    for _ in 0..40 {
        let values: Vec<i64> = (0..1 + rng.below(49))
            .map(|_| rng.range_i64(0, 4))
            .collect();
        let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
        engine.execute("CREATE TABLE t (s int)").unwrap();
        let inserts: Vec<String> = values.iter().map(|v| format!("({v})")).collect();
        engine
            .execute(&format!("INSERT INTO t VALUES {}", inserts.join(", ")))
            .unwrap();
        let before = engine
            .query("SELECT s, count(*) FROM t GROUP BY s")
            .unwrap();
        let after = engine
            .query(
                "WITH kept AS (SELECT s, ctid FROM t WHERE 1 = 1)
                 SELECT s, count(*) FROM kept GROUP BY s",
            )
            .unwrap();
        assert_eq!(before.sorted_rows(), after.sorted_rows());
    }
}

/// Selections never invent tuples: every (value, count) after a filter
/// is bounded by its count before — the monotonicity the bias check's
/// join-back relies on.
#[test]
fn selection_counts_are_monotone() {
    let mut rng = Prng::new(107);
    for _ in 0..40 {
        let values: Vec<(i64, i64)> = (0..1 + rng.below(49))
            .map(|_| (rng.range_i64(0, 4), rng.range_i64(0, 10)))
            .collect();
        let threshold = rng.range_i64(0, 10);
        let mut engine = Engine::new(EngineProfile::in_memory());
        engine.execute("CREATE TABLE t (s int, v int)").unwrap();
        let inserts: Vec<String> = values.iter().map(|(s, v)| format!("({s}, {v})")).collect();
        engine
            .execute(&format!("INSERT INTO t VALUES {}", inserts.join(", ")))
            .unwrap();
        let before = engine
            .query("SELECT s, count(*) FROM t GROUP BY s")
            .unwrap();
        let after = engine
            .query(&format!(
                "SELECT s, count(*) FROM t WHERE v > {threshold} GROUP BY s"
            ))
            .unwrap();
        for row in &after.rows {
            let b = before
                .rows
                .iter()
                .find(|r| r[0] == row[0])
                .expect("group existed before");
            assert!(row[1].as_i64().unwrap() <= b[1].as_i64().unwrap());
        }
    }
}
