//! Inspection semantics: the paper's §3 scenarios — bias introduced for a
//! column the pipeline projected away, thresholds, and ratio bookkeeping.

use blue_elephants::datagen;
use blue_elephants::mlinspect::checks::CheckOutcome;
use blue_elephants::mlinspect::inspection::Inspection;
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};
use etypes::Value;

/// The paper's Figure 3/4 example data: county_2/county_3 selection flips
/// the age_group ratios by exactly ±0.25 although age_group was projected
/// away, while race stays under threshold.
const FIGURE3_PIPELINE: &str = r#"
data = pd.read_csv('example.csv', na_values='?')
data = data[['county']]
data = data[data['county'].isin(['county_2', 'county_3'])]
"#;

/// Six tuples arranged to reproduce Figure 4 exactly: the county selection
/// keeps four rows, moving age_group by ±0.25 and race by at most ±0.084.
const FIGURE3_CSV: &str = "\
county,race,age_group
county_1,race_1,age_group_1
county_1,race_2,age_group_1
county_2,race_3,age_group_2
county_2,race_2,age_group_2
county_3,race_2,age_group_2
county_3,race_1,age_group_1
";

fn run_fig3(threshold: f64) -> blue_elephants::mlinspect::InspectorResult {
    let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
    PipelineInspector::on_pipeline(FIGURE3_PIPELINE)
        .with_file("example.csv", FIGURE3_CSV)
        .no_bias_introduced_for(&["race", "age_group"], threshold)
        .execute_in_sql(&mut engine, SqlMode::Cte, false)
        .unwrap()
}

#[test]
fn bias_detected_for_projected_away_column() {
    let result = run_fig3(0.25);
    let check = &result.check_results[0];
    assert_eq!(check.outcome, CheckOutcome::Failed);
    // The violation is on age_group (changed by exactly 25%), at the
    // selection node, not on race (max change 8.4%).
    assert!(check
        .bias_violations
        .iter()
        .all(|v| v.column == "age_group"));
    let violation = &check.bias_violations[0];
    assert_eq!(result.dag.node(violation.node).kind.label(), "selection");
    assert!((violation.max_abs_change - 0.25).abs() < 1e-9);
}

#[test]
fn figure4_ratios_reproduced() {
    // Before: age_group_1 0.5, age_group_2 0.5; after: 0.25 / 0.75.
    let result = run_fig3(0.25);
    let violation = &result.check_results[0].bias_violations[0];
    let before = &violation.change.before;
    let after = &violation.change.after;
    assert_eq!(before.ratio(&Value::text("age_group_1")), 0.5);
    assert_eq!(before.ratio(&Value::text("age_group_2")), 0.5);
    assert_eq!(after.ratio(&Value::text("age_group_1")), 0.25);
    assert_eq!(after.ratio(&Value::text("age_group_2")), 0.75);
}

#[test]
fn race_change_stays_under_threshold() {
    // Figure 4's right table: race moves by at most +0.084, under the 25%
    // threshold, so the only violations concern age_group (checked above).
    let result = run_fig3(2.0); // threshold high: nothing flagged
    assert!(result.check_results[0].passed());
    let selection = result
        .dag
        .nodes
        .iter()
        .find(|n| n.kind.label() == "selection")
        .unwrap();
    let h = result.inspections.histogram(selection.id, "race").unwrap();
    assert_eq!(h.total(), 4);
    assert_eq!(h.ratio(&Value::text("race_2")), 0.5);
    assert_eq!(h.ratio(&Value::text("race_3")), 0.25);
}

#[test]
fn threshold_boundary_is_inclusive() {
    // Change of exactly 25% fails a 25% threshold ("changed by more than or
    // equal to 25%", §3.2).
    let result = run_fig3(0.25);
    assert!(!result.check_results[0].passed());
    let relaxed = run_fig3(0.2501);
    assert!(relaxed.check_results[0].passed());
}

#[test]
fn lineage_and_first_rows_inspections_work_in_sql() {
    let mut engine = Engine::new(EngineProfile::in_memory());
    let result = PipelineInspector::on_pipeline(FIGURE3_PIPELINE)
        .with_file("example.csv", FIGURE3_CSV)
        .add_inspection(Inspection::RowLineage(2))
        .add_inspection(Inspection::MaterializeFirstOutputRows(2))
        .execute_in_sql(&mut engine, SqlMode::View, false)
        .unwrap();
    // Row lineage for the selection: ctids referencing the base table.
    let selection = result
        .dag
        .nodes
        .iter()
        .find(|n| n.kind.label() == "selection")
        .unwrap();
    let lineage = &result.inspections.lineage[&selection.id];
    assert_eq!(lineage.ctid_columns.len(), 1);
    assert!(lineage.rows.len() <= 2);
    let sample = &result.inspections.first_rows[&selection.id];
    assert_eq!(sample.columns, vec!["county"]);
    assert!(!sample.to_table_string().is_empty());
}

#[test]
fn healthcare_join_back_after_aggregation_uses_unnest() {
    // The groupby node's histogram for race requires unnesting the
    // aggregated tuple identifiers (paper Listing 3).
    let mut engine = Engine::new(EngineProfile::in_memory());
    let result = PipelineInspector::on_pipeline(pipelines::HEALTHCARE)
        .with_file("patients.csv", datagen::patients_csv(120, 3))
        .with_file("histories.csv", datagen::histories_csv(120, 3))
        .no_bias_introduced_for(&["race"], 0.9)
        .execute_in_sql(&mut engine, SqlMode::Cte, false)
        .unwrap();
    let agg = result
        .dag
        .nodes
        .iter()
        .find(|n| n.kind.label() == "groupby_agg")
        .unwrap();
    let h = result
        .inspections
        .histogram(agg.id, "race")
        .expect("race restored through aggregated ctids");
    // Aggregation does not drop tuples: the unnested count equals the
    // pre-aggregation row count.
    let input = agg.kind.inputs()[0];
    let before = result.inspections.histogram(input, "race").unwrap();
    assert_eq!(h.total(), before.total());
}

#[test]
fn no_bias_for_row_preserving_operations() {
    // A projection and a set_item do not change ratios: any measured
    // operator-level change is exactly zero.
    let pipeline = r#"
data = pd.read_csv('example.csv', na_values='?')
data['flag'] = data['county'] == 'county_1'
data = data[['county', 'flag']]
"#;
    let mut engine = Engine::new(EngineProfile::in_memory());
    let result = PipelineInspector::on_pipeline(pipeline)
        .with_file("example.csv", FIGURE3_CSV)
        .no_bias_introduced_for(&["race", "age_group"], 1e-12)
        .execute_in_sql(&mut engine, SqlMode::Cte, false)
        .unwrap();
    assert!(
        result.check_results[0].passed(),
        "{:?}",
        result.check_results[0].bias_violations
    );
}

#[test]
fn pandas_baseline_detects_the_same_violation() {
    let baseline = PipelineInspector::on_pipeline(FIGURE3_PIPELINE)
        .with_file("example.csv", FIGURE3_CSV)
        .no_bias_introduced_for(&["race", "age_group"], 0.25)
        .execute()
        .unwrap();
    assert!(!baseline.check_results[0].passed());
    assert_eq!(
        baseline.check_results[0].bias_violations[0].column,
        "age_group"
    );
}
