//! Façade-level smoke test: the serving layer is reachable through the
//! top-level crate and agrees with the embedded engine it wraps.

use blue_elephants::elephant_server::{start, ElephantClient, ServerConfig};
use blue_elephants::sqlengine::{Engine, EngineProfile};

#[test]
fn served_results_match_embedded_engine() {
    let sql_setup = "CREATE TABLE v (x int); INSERT INTO v VALUES (3), (1), (2);";
    let sql_query = "SELECT x FROM v ORDER BY x";

    let mut embedded = Engine::new(EngineProfile::in_memory());
    embedded.execute_script(sql_setup).unwrap();
    let rel = embedded.query(sql_query).unwrap();
    let expected = blue_elephants::etypes::csv::write_csv(&rel.columns, &rel.rows, ',');

    let handle = start(ServerConfig::default()).unwrap();
    let mut client = ElephantClient::connect(handle.local_addr()).unwrap();
    client.query_raw("CREATE TABLE v (x int)").unwrap();
    client
        .query_raw("INSERT INTO v VALUES (3), (1), (2)")
        .unwrap();
    assert_eq!(client.query_raw(sql_query).unwrap(), expected);

    client.prepare("q", sql_query).unwrap();
    assert_eq!(client.execute("q").unwrap(), expected);
    assert_eq!(client.execute("q").unwrap(), expected);
    let stats = client.stats().unwrap();
    assert!(stats.contains("plan_cache_hits"), "{stats}");

    client.shutdown().unwrap();
    drop(client);
    handle.join();
}
