//! The §7-outlook extension operators (`fillna`, `head`, `sort_values`,
//! `drop`): captured, executed on both backends, and equivalent.

use blue_elephants::mlinspect::{PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};
use etypes::Value;

const PIPELINE: &str = r#"
data = pd.read_csv('people.csv', na_values='?')
data = data.fillna('unknown')
data = data.sort_values(by=['age'], ascending=False)
data = data.drop(columns=['ssn'])
top = data.head(3)
print(top)
"#;

const CSV: &str = "\
age,city,ssn
31,?,s1
54,berlin,s2
22,munich,s3
47,?,s4
39,paris,s5
";

fn run_pandas() -> blue_elephants::mlinspect::InspectorResult {
    PipelineInspector::on_pipeline(PIPELINE)
        .with_file("people.csv", CSV)
        .keep_relations(true)
        .execute()
        .unwrap()
}

fn run_sql(mode: SqlMode) -> blue_elephants::mlinspect::InspectorResult {
    let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
    PipelineInspector::on_pipeline(PIPELINE)
        .with_file("people.csv", CSV)
        .keep_relations(true)
        .execute_in_sql(&mut engine, mode, false)
        .unwrap()
}

#[test]
fn extended_ops_are_captured() {
    let result = run_pandas();
    let labels: Vec<&str> = result.dag.nodes.iter().map(|n| n.kind.label()).collect();
    assert_eq!(
        labels,
        vec!["read_csv", "fillna", "sort_values", "drop_columns", "head"]
    );
}

#[test]
fn backends_agree_on_extended_ops() {
    let pandas = run_pandas();
    for mode in [SqlMode::Cte, SqlMode::View] {
        let sql = run_sql(mode);
        for node in &pandas.dag.nodes {
            let (Some(p), Some(s)) = (pandas.relations.get(&node.id), sql.relations.get(&node.id))
            else {
                continue;
            };
            assert_eq!(p.columns, s.columns, "{mode:?} node {}", node.id);
            // head/sort are order-sensitive: compare rows in order.
            assert_eq!(p.rows, s.rows, "{mode:?} node {}", node.id);
        }
    }
}

#[test]
fn fillna_replaces_only_compatible_nulls() {
    let result = run_pandas();
    let fillna = result
        .dag
        .nodes
        .iter()
        .find(|n| n.kind.label() == "fillna")
        .unwrap();
    let rel = &result.relations[&fillna.id];
    let city = rel.columns.iter().position(|c| c == "city").unwrap();
    assert!(rel.rows.iter().all(|r| !r[city].is_null()));
    assert!(rel.rows.iter().any(|r| r[city] == Value::text("unknown")));
}

#[test]
fn head_respects_sorted_order() {
    let result = run_pandas();
    let head = result
        .dag
        .nodes
        .iter()
        .find(|n| n.kind.label() == "head")
        .unwrap();
    let rel = &result.relations[&head.id];
    assert_eq!(rel.rows.len(), 3);
    let ages: Vec<i64> = rel
        .rows
        .iter()
        .map(|r| {
            r[rel.columns.iter().position(|c| c == "age").unwrap()]
                .as_i64()
                .unwrap()
        })
        .collect();
    assert_eq!(ages, vec![54, 47, 39]);
}

#[test]
fn dropped_column_is_gone_but_still_inspectable() {
    // `ssn` is dropped; sensitive inspection on it must still work through
    // the tuple identifiers.
    let mut engine = Engine::new(EngineProfile::in_memory());
    let result = PipelineInspector::on_pipeline(PIPELINE)
        .with_file("people.csv", CSV)
        .no_bias_introduced_for(&["city"], 0.9)
        .execute_in_sql(&mut engine, SqlMode::Cte, false)
        .unwrap();
    let drop_node = result
        .dag
        .nodes
        .iter()
        .find(|n| n.kind.label() == "drop_columns")
        .unwrap();
    // city is still present after drop (only ssn was dropped) — and the
    // histogram at the head node (3 rows) reflects the sorted prefix.
    let head = result
        .dag
        .nodes
        .iter()
        .find(|n| n.kind.label() == "head")
        .unwrap();
    let h = result.inspections.histogram(head.id, "city").unwrap();
    assert_eq!(h.total(), 3);
    let before = result.inspections.histogram(drop_node.id, "city").unwrap();
    assert_eq!(before.total(), 5);
}
