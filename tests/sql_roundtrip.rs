//! The generated SQL must stand on its own: every transpiled script parses
//! and executes on a fresh engine, outside the backend that produced it —
//! the paper's claim that the query "is always in an executable state".

use blue_elephants::datagen;
use blue_elephants::mlinspect::{pipelines, PipelineInspector, SqlMode};
use blue_elephants::sqlengine::{Engine, EngineProfile};
use etypes::CsvOptions;

struct Fixture {
    files: Vec<(&'static str, String)>,
}

fn fixture() -> Fixture {
    Fixture {
        files: vec![
            ("patients.csv", datagen::patients_csv(120, 5)),
            ("histories.csv", datagen::histories_csv(120, 5)),
            ("compas_train.csv", datagen::compas_csv(200, 6)),
            ("compas_test.csv", datagen::compas_csv(80, 7)),
            ("adult_train.csv", datagen::adult_csv(250, 8)),
            ("adult_test.csv", datagen::adult_csv(100, 9)),
        ],
    }
}

fn transpile(src: &str, mode: SqlMode) -> blue_elephants::mlinspect::backends::sql::TranspiledSql {
    let mut inspector = PipelineInspector::on_pipeline(src);
    for (name, content) in fixture().files {
        inspector = inspector.with_file(name, content);
    }
    inspector.transpile_only(mode).unwrap()
}

/// Load the fixture data into a fresh engine using the generated DDL
/// (executing the CREATE TABLE statements, then bulk-loading the CSV the
/// COPY statement refers to).
fn load_setup(engine: &mut Engine, t: &blue_elephants::mlinspect::backends::sql::TranspiledSql) {
    let f = fixture();
    for setup in &t.setup {
        engine.execute_script(&setup.create).unwrap();
        // The COPY statement names the original file; find its content.
        let file = f
            .files
            .iter()
            .find(|(name, _)| setup.copy.contains(name))
            .map(|(_, content)| content.clone())
            .expect("fixture file for COPY");
        let na = setup.copy.contains("NULL '?'");
        let mut opts = CsvOptions::default();
        if na {
            opts = opts.with_na("?");
        }
        engine
            .copy_from_str(&setup.table, None, &file, &opts)
            .unwrap();
    }
}

#[test]
fn cte_script_executes_on_a_fresh_engine() {
    for (name, src) in pipelines::all() {
        let t = transpile(src, SqlMode::Cte);
        let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
        load_setup(&mut engine, &t);
        // Every prefix of the container is an executable query (paper §4).
        for entry in t.container.entries() {
            let q = t.container.query(
                SqlMode::Cte,
                &format!("SELECT count(*) AS n FROM {}", entry.name),
            );
            let rel = engine
                .query(&q)
                .unwrap_or_else(|e| panic!("{name} / {}: {e}", entry.name));
            assert_eq!(rel.columns, vec!["n"]);
        }
    }
}

#[test]
fn view_script_executes_on_a_fresh_engine() {
    for (name, src) in pipelines::all() {
        let t = transpile(src, SqlMode::View);
        let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
        load_setup(&mut engine, &t);
        for entry in t.container.entries() {
            let ddl = blue_elephants::mlinspect::sqlgen::SqlQueryContainer::view_ddl(
                entry,
                entry.materialize_candidate,
            );
            engine
                .execute(&ddl)
                .unwrap_or_else(|e| panic!("{name} / {}: {e}", entry.name));
        }
        // All views are queryable afterwards.
        let last = t.container.entries().last().unwrap();
        let rel = engine
            .query(&format!("SELECT count(*) AS n FROM {}", last.name))
            .unwrap();
        assert!(!rel.rows.is_empty());
    }
}

#[test]
fn generated_sql_follows_paper_naming_conventions() {
    let t = transpile(pipelines::HEALTHCARE, SqlMode::Cte);
    // Listing 5's conventions: <stem>_<line>_mlinid<n> tables, ctid-CTEs,
    // block_mlinid<n>_<line> operators, fit_ tables for sklearn parameters.
    assert!(t.setup.iter().any(|s| s.table.starts_with("patients_")));
    assert!(t.setup.iter().any(|s| s.table.contains("_mlinid")));
    let names: Vec<&str> = t
        .container
        .entries()
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    assert!(names.iter().any(|n| n.ends_with("_ctid")));
    assert!(names.iter().any(|n| n.starts_with("block_mlinid")));
    assert!(names.iter().any(|n| n.starts_with("fit_mlinid")));
}

#[test]
fn transpilation_emits_one_table_expression_per_pipeline_operator() {
    // "one CTE/view represents one line of the original Python source code".
    let t = transpile(pipelines::HEALTHCARE, SqlMode::Cte);
    let frame_ops = 11; // reads(2) + merges(2) + agg + setitem + project + filter + splits(2) + featurisations(2)
    let fit_tables = 7; // (impute+onehot) x3 columns + scaler x2 columns... counted: 3*2 + 2 = 8
    let total = t.container.len();
    assert!(
        total >= frame_ops + fit_tables,
        "only {total} table expressions generated"
    );
}

#[test]
fn copy_statements_reference_original_files() {
    let t = transpile(pipelines::COMPAS, SqlMode::Cte);
    assert!(t.setup[0].copy.contains("compas_train.csv"));
    assert!(t.setup[0].copy.contains("FORMAT CSV"));
    assert!(t.setup[0].copy.contains("NULL '?'"));
}
