//! The operator DAG extracted from a pipeline.
//!
//! Running mlinspect "returns a dataflow directed acyclic graph (DAG)
//! representing the pipeline" (paper §4). Capture produces this DAG once;
//! both backends execute it, and inspections/checks attach their results to
//! its nodes.

use etypes::Value;
use pyparser::{BinOp, UnaryOp};

/// Identifier of a data-producing DAG node (also used as the id of the
/// dataframe-like object the node produces — the paper's "dummy object").
pub type NodeId = usize;

/// A column-level expression over a single frame (the paper's
/// "execution tree" inside the SQL mapping, §5.1.3/§5.1.4).
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Column of the frame.
    Col(String),
    /// Literal scalar.
    Lit(Value),
    /// Element-wise binary operation.
    Binary {
        /// Operator (pandas spelling).
        op: BinOp,
        /// Left operand.
        left: Box<SExpr>,
        /// Right operand.
        right: Box<SExpr>,
    },
    /// Element-wise unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<SExpr>,
    },
    /// `series.isin([...])`.
    IsIn {
        /// Tested expression.
        expr: Box<SExpr>,
        /// Candidate values.
        list: Vec<Value>,
    },
}

impl SExpr {
    /// Columns this expression reads.
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            SExpr::Col(c) => out.push(c.clone()),
            SExpr::Lit(_) => {}
            SExpr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            SExpr::Unary { operand, .. } => operand.columns(out),
            SExpr::IsIn { expr, .. } => expr.columns(out),
        }
    }
}

/// A preprocessing transformer step (paper §5.2).
#[derive(Debug, Clone, PartialEq)]
pub enum TransformerKind {
    /// `SimpleImputer(strategy=...)`.
    SimpleImputer(ImputeKind),
    /// `OneHotEncoder(...)`.
    OneHotEncoder,
    /// `StandardScaler()`.
    StandardScaler,
    /// `KBinsDiscretizer(n_bins=k, strategy='uniform')`.
    KBinsDiscretizer(usize),
    /// `Binarizer(threshold=t)`.
    Binarizer(f64),
}

/// Imputation strategies (mirrors `sklearn::ImputeStrategy`, kept separate so
/// the DAG stays serializable without carrying `Value` defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeKind {
    /// Fill with the column mean.
    Mean,
    /// Fill with the column median.
    Median,
    /// Fill with the most frequent value.
    MostFrequent,
}

/// One `(name, pipeline-of-transformers, columns)` entry of a
/// ColumnTransformer.
#[derive(Debug, Clone, PartialEq)]
pub struct CtStep {
    /// Step name from the pipeline source.
    pub name: String,
    /// Transformer chain applied to each listed column.
    pub steps: Vec<TransformerKind>,
    /// Input columns.
    pub columns: Vec<String>,
}

/// Trainable estimators at the end of the pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// `LogisticRegression()`.
    LogisticRegression,
    /// The Keras neural network of the healthcare / adult-complex pipelines.
    NeuralNetwork {
        /// Hidden layer width.
        hidden: usize,
        /// Training epochs.
        epochs: usize,
    },
}

/// Which half a Split node produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPart {
    /// The training partition.
    Train,
    /// The held-out test partition.
    Test,
}

/// The operators the capture layer emits. Each variant names its inputs by
/// [`NodeId`]; the DAG is topologically ordered by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// `pd.read_csv(file, na_values=...)`.
    ReadCsv {
        /// File name as resolved from the pipeline source.
        file: String,
        /// `na_values=` marker.
        na_values: Option<String>,
    },
    /// `left.merge(right, on=[keys])` (inner).
    Join {
        /// Left frame.
        left: NodeId,
        /// Right frame.
        right: NodeId,
        /// Join key columns.
        on: Vec<String>,
    },
    /// `frame.groupby(keys).agg(...)`.
    GroupByAgg {
        /// Input frame.
        input: NodeId,
        /// Grouping columns.
        keys: Vec<String>,
        /// Named aggregations.
        aggs: Vec<dataframe::AggSpec>,
    },
    /// `frame[col] = <expr>` (paper §5.1.4: the condensed copy-previous
    /// translation).
    SetItem {
        /// Input frame.
        input: NodeId,
        /// Target column (new or overwritten).
        column: String,
        /// Value expression.
        expr: SExpr,
    },
    /// `frame[['a', 'b', ...]]`.
    Project {
        /// Input frame.
        input: NodeId,
        /// Kept columns.
        columns: Vec<String>,
    },
    /// `frame[<boolean expr>]`.
    Filter {
        /// Input frame.
        input: NodeId,
        /// Row-keeping condition.
        condition: SExpr,
    },
    /// `frame.dropna()`.
    DropNa {
        /// Input frame.
        input: NodeId,
    },
    /// `frame.replace(from, to)`.
    Replace {
        /// Input frame.
        input: NodeId,
        /// Replaced value.
        from: Value,
        /// Replacement.
        to: Value,
    },
    /// `frame.fillna(value)` — replace NULLs in every compatible column.
    FillNa {
        /// Input frame.
        input: NodeId,
        /// Fill value.
        value: Value,
    },
    /// `frame.head(n)`.
    Head {
        /// Input frame.
        input: NodeId,
        /// Row limit.
        n: u64,
    },
    /// `frame.sort_values(by=..., ascending=...)`.
    SortValues {
        /// Input frame.
        input: NodeId,
        /// Sort key columns.
        by: Vec<String>,
        /// Ascending order.
        ascending: bool,
    },
    /// `frame.drop(columns=[...])` — projection to the complement.
    DropColumns {
        /// Input frame.
        input: NodeId,
        /// Columns to remove.
        columns: Vec<String>,
    },
    /// `label_binarize(frame[col], classes=[a, b])` — produces a one-column
    /// frame named `label`, row-aligned with the input.
    LabelBinarize {
        /// Input frame.
        input: NodeId,
        /// Source column.
        column: String,
        /// The two classes; `classes[1]` is the positive one.
        classes: [Value; 2],
    },
    /// One half of `train_test_split(frame)`. Both halves share the seed, so
    /// they partition the input deterministically (hash of the frame's first
    /// tuple identifier — identical in both backends).
    Split {
        /// Input frame.
        input: NodeId,
        /// Which half.
        part: SplitPart,
        /// Test fraction in percent (sklearn default 25).
        test_percent: u8,
        /// Split seed.
        seed: u64,
    },
    /// ColumnTransformer fit+transform (when `fit_node` is `None`) or
    /// transform-only reusing fitting parameters learned at `fit_node`.
    FeatureTransform {
        /// Frame to transform.
        input: NodeId,
        /// Featurisation steps.
        steps: Vec<CtStep>,
        /// Node whose fit parameters to reuse (a prior FeatureTransform).
        fit_node: Option<NodeId>,
    },
    /// Model training.
    ModelFit {
        /// Features node (a FeatureTransform).
        features: NodeId,
        /// Label source: frame + column.
        labels: (NodeId, String),
        /// Estimator.
        model: ModelKind,
        /// Training seed.
        seed: u64,
    },
    /// Model scoring; produces a scalar accuracy.
    ModelScore {
        /// The fitted model node (a ModelFit).
        model: NodeId,
        /// Features node for the evaluation set.
        features: NodeId,
        /// Label source: frame + column.
        labels: (NodeId, String),
    },
}

impl OpKind {
    /// The node ids this operator consumes.
    pub fn inputs(&self) -> Vec<NodeId> {
        match self {
            OpKind::ReadCsv { .. } => vec![],
            OpKind::Join { left, right, .. } => vec![*left, *right],
            OpKind::GroupByAgg { input, .. }
            | OpKind::SetItem { input, .. }
            | OpKind::Project { input, .. }
            | OpKind::Filter { input, .. }
            | OpKind::DropNa { input }
            | OpKind::Replace { input, .. }
            | OpKind::FillNa { input, .. }
            | OpKind::Head { input, .. }
            | OpKind::SortValues { input, .. }
            | OpKind::DropColumns { input, .. }
            | OpKind::LabelBinarize { input, .. }
            | OpKind::Split { input, .. } => vec![*input],
            OpKind::FeatureTransform {
                input, fit_node, ..
            } => {
                let mut v = vec![*input];
                if let Some(f) = fit_node {
                    v.push(*f);
                }
                v
            }
            OpKind::ModelFit {
                features, labels, ..
            } => vec![*features, labels.0],
            OpKind::ModelScore {
                model,
                features,
                labels,
            } => vec![*model, *features, labels.0],
        }
    }

    /// True when the operator can change the number or multiplicity of rows
    /// and therefore can introduce a technical bias (paper §3.2: "not all
    /// operations can introduce a bias").
    pub fn can_change_distribution(&self) -> bool {
        matches!(
            self,
            OpKind::Join { .. }
                | OpKind::Filter { .. }
                | OpKind::DropNa { .. }
                | OpKind::GroupByAgg { .. }
                | OpKind::Head { .. }
                | OpKind::Split { .. }
        )
    }

    /// True when the node produces a relational (frame-like) output.
    pub fn produces_frame(&self) -> bool {
        !matches!(self, OpKind::ModelFit { .. } | OpKind::ModelScore { .. })
    }

    /// Short operator name for reports (Figure 10's per-operation labels).
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::ReadCsv { .. } => "read_csv",
            OpKind::Join { .. } => "merge",
            OpKind::GroupByAgg { .. } => "groupby_agg",
            OpKind::SetItem { .. } => "set_item",
            OpKind::Project { .. } => "projection",
            OpKind::Filter { .. } => "selection",
            OpKind::DropNa { .. } => "dropna",
            OpKind::Replace { .. } => "replace",
            OpKind::FillNa { .. } => "fillna",
            OpKind::Head { .. } => "head",
            OpKind::SortValues { .. } => "sort_values",
            OpKind::DropColumns { .. } => "drop_columns",
            OpKind::LabelBinarize { .. } => "label_binarize",
            OpKind::Split { .. } => "train_test_split",
            OpKind::FeatureTransform { .. } => "featurisation",
            OpKind::ModelFit { .. } => "model_fit",
            OpKind::ModelScore { .. } => "model_score",
        }
    }
}

/// One DAG node.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// Node id (== position in [`Dag::nodes`]).
    pub id: NodeId,
    /// 1-based pipeline source line this node came from (the paper maps one
    /// source line to one CTE/view).
    pub line: usize,
    /// The operator.
    pub kind: OpKind,
}

/// The captured pipeline DAG, topologically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dag {
    /// Nodes in execution order.
    pub nodes: Vec<DagNode>,
}

impl Dag {
    /// Append a node, returning its id.
    pub fn push(&mut self, line: usize, kind: OpKind) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(DagNode { id, line, kind });
        id
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &DagNode {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Render a compact human-readable summary (one line per node).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&format!(
                "#{:<3} L{:<4} {:<16} inputs={:?}\n",
                n.id,
                n.line,
                n.kind.label(),
                n.kind.inputs()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_is_topological_by_construction() {
        let mut dag = Dag::default();
        let a = dag.push(
            1,
            OpKind::ReadCsv {
                file: "x.csv".into(),
                na_values: None,
            },
        );
        let b = dag.push(2, OpKind::DropNa { input: a });
        assert!(dag.node(b).kind.inputs().iter().all(|i| *i < b));
    }

    #[test]
    fn distribution_changing_ops() {
        assert!(OpKind::Filter {
            input: 0,
            condition: SExpr::Lit(Value::Bool(true))
        }
        .can_change_distribution());
        assert!(!OpKind::Project {
            input: 0,
            columns: vec![]
        }
        .can_change_distribution());
    }

    #[test]
    fn sexpr_columns() {
        let e = SExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(SExpr::Col("complications".into())),
            right: Box::new(SExpr::Binary {
                op: BinOp::Mul,
                left: Box::new(SExpr::Lit(Value::Float(1.2))),
                right: Box::new(SExpr::Col("mean_complications".into())),
            }),
        };
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["complications", "mean_complications"]);
    }

    #[test]
    fn describe_mentions_labels() {
        let mut dag = Dag::default();
        dag.push(
            1,
            OpKind::ReadCsv {
                file: "a".into(),
                na_values: None,
            },
        );
        assert!(dag.describe().contains("read_csv"));
    }
}
