//! Checks: pass/fail verdicts computed from inspection results.

pub mod bias;
pub mod illegal_features;

pub use bias::{evaluate_bias, BiasViolation};
pub use illegal_features::evaluate_illegal_features;

use crate::dag::NodeId;

/// The checks mlinspect provides (paper §3).
#[derive(Debug, Clone, PartialEq)]
pub enum Check {
    /// Fail when any operator changes a sensitive column's value ratios by
    /// at least `threshold` (absolute).
    NoBiasIntroducedFor {
        /// Sensitive columns.
        columns: Vec<String>,
        /// Unacceptable absolute ratio change (the paper's example: 25%).
        threshold: f64,
    },
    /// Fail when a blacklisted column is used as a model feature.
    NoIllegalFeatures {
        /// Forbidden feature names.
        blacklist: Vec<String>,
    },
}

/// Verdict of one check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// No violation found.
    Passed,
    /// At least one violation found.
    Failed,
}

/// One check plus its verdict and details.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// The evaluated check.
    pub check: Check,
    /// Verdict.
    pub outcome: CheckOutcome,
    /// Bias violations (for `NoBiasIntroducedFor`).
    pub bias_violations: Vec<BiasViolation>,
    /// Offending feature names (for `NoIllegalFeatures`).
    pub illegal_features: Vec<String>,
}

impl CheckResult {
    /// True when the check passed.
    pub fn passed(&self) -> bool {
        self.outcome == CheckOutcome::Passed
    }

    /// Nodes implicated by this result.
    pub fn offending_nodes(&self) -> Vec<NodeId> {
        self.bias_violations.iter().map(|v| v.node).collect()
    }
}
