//! `NoIllegalFeatures`: blacklist check over model feature columns.

use super::{Check, CheckOutcome, CheckResult};
use crate::dag::{Dag, OpKind};

/// Evaluate `NoIllegalFeatures`: collect every column fed into a
/// FeatureTransform and intersect with the blacklist (paper §3: "verifies
/// that none of the used features ... are contained in a blacklist").
/// Matching is case-insensitive, like mlinspect's.
pub fn evaluate_illegal_features(dag: &Dag, blacklist: &[String]) -> CheckResult {
    let mut used: Vec<String> = Vec::new();
    for node in &dag.nodes {
        if let OpKind::FeatureTransform { steps, .. } = &node.kind {
            for step in steps {
                for col in &step.columns {
                    if !used.contains(col) {
                        used.push(col.clone());
                    }
                }
            }
        }
    }
    let mut illegal: Vec<String> = used
        .into_iter()
        .filter(|c| blacklist.iter().any(|b| b.eq_ignore_ascii_case(c.as_str())))
        .collect();
    illegal.sort();
    CheckResult {
        check: Check::NoIllegalFeatures {
            blacklist: blacklist.to_vec(),
        },
        outcome: if illegal.is_empty() {
            CheckOutcome::Passed
        } else {
            CheckOutcome::Failed
        },
        bias_violations: Vec::new(),
        illegal_features: illegal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture;
    use crate::pipelines;

    #[test]
    fn healthcare_uses_race_as_feature() {
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let r = evaluate_illegal_features(&cap.dag, &["race".into()]);
        assert!(!r.passed());
        assert_eq!(r.illegal_features, vec!["race"]);
    }

    #[test]
    fn passes_when_feature_not_used() {
        let cap = capture(pipelines::ADULT_SIMPLE).unwrap();
        let r = evaluate_illegal_features(&cap.dag, &["race".into()]);
        assert!(r.passed());
    }

    #[test]
    fn match_is_case_insensitive() {
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let r = evaluate_illegal_features(&cap.dag, &["RACE".into()]);
        assert!(!r.passed());
    }
}
