//! `NoBiasIntroducedFor`: compare per-operator ratios against a threshold.

use super::{Check, CheckOutcome, CheckResult};
use crate::dag::{Dag, NodeId};
use crate::inspection::{ColumnHistogram, HistogramChange, InspectionResults};

/// One threshold exceedance: operator `node` changed `column`'s ratios by
/// `max_abs_change`.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasViolation {
    /// The bias-introducing operator.
    pub node: NodeId,
    /// The affected sensitive column.
    pub column: String,
    /// Largest absolute ratio change at this operator (vs. its input).
    pub max_abs_change: f64,
    /// Full before/after detail.
    pub change: HistogramChange,
}

/// Evaluate `NoBiasIntroducedFor` over measured histograms.
///
/// The ratio change is computed **per operator against its input** (the
/// paper's Figure 4 compares "before" and "after" one operation): for each
/// distribution-changing node we diff its histogram with the histogram of
/// its first frame input.
pub fn evaluate_bias(
    dag: &Dag,
    results: &InspectionResults,
    columns: &[String],
    threshold: f64,
) -> CheckResult {
    let mut violations = Vec::new();
    for node in &dag.nodes {
        if !node.kind.can_change_distribution() {
            continue;
        }
        let Some(input) = node.kind.inputs().first().copied() else {
            continue;
        };
        for column in columns {
            let (Some(before), Some(after)) = (
                results.histogram(input, column),
                results.histogram(node.id, column),
            ) else {
                continue;
            };
            let change = HistogramChange {
                column: column.clone(),
                before: before.clone(),
                after: after.clone(),
            };
            let max = change.max_abs_change();
            if max >= threshold {
                violations.push(BiasViolation {
                    node: node.id,
                    column: column.clone(),
                    max_abs_change: max,
                    change,
                });
            }
        }
    }
    CheckResult {
        check: Check::NoBiasIntroducedFor {
            columns: columns.to_vec(),
            threshold,
        },
        outcome: if violations.is_empty() {
            CheckOutcome::Passed
        } else {
            CheckOutcome::Failed
        },
        bias_violations: violations,
        illegal_features: Vec::new(),
    }
}

/// Compute the overall before/after change between the *original* data (the
/// first node whose histogram includes `column`) and the final operator —
/// what Table 4 reports.
pub fn overall_change(
    dag: &Dag,
    results: &InspectionResults,
    column: &str,
) -> Option<HistogramChange> {
    let mut first: Option<&ColumnHistogram> = None;
    let mut last: Option<&ColumnHistogram> = None;
    for node in &dag.nodes {
        if let Some(h) = results.histogram(node.id, column) {
            if first.is_none() {
                first = Some(h);
            }
            last = Some(h);
        }
    }
    Some(HistogramChange {
        column: column.to_string(),
        before: first?.clone(),
        after: last?.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{OpKind, SExpr};
    use etypes::Value;

    fn fixture() -> (Dag, InspectionResults) {
        let mut dag = Dag::default();
        let read = dag.push(
            1,
            OpKind::ReadCsv {
                file: "x.csv".into(),
                na_values: None,
            },
        );
        let filter = dag.push(
            2,
            OpKind::Filter {
                input: read,
                condition: SExpr::Lit(Value::Bool(true)),
            },
        );
        let mut results = InspectionResults::default();
        results.histograms.insert(
            read,
            vec![ColumnHistogram::new(
                "age_group",
                vec![(Value::text("g1"), 2), (Value::text("g2"), 2)],
            )],
        );
        results.histograms.insert(
            filter,
            vec![ColumnHistogram::new(
                "age_group",
                vec![(Value::text("g1"), 1), (Value::text("g2"), 3)],
            )],
        );
        (dag, results)
    }

    #[test]
    fn flags_threshold_exceedance() {
        let (dag, results) = fixture();
        let r = evaluate_bias(&dag, &results, &["age_group".into()], 0.25);
        assert!(!r.passed());
        assert_eq!(r.bias_violations.len(), 1);
        assert_eq!(r.bias_violations[0].node, 1);
        assert!((r.bias_violations[0].max_abs_change - 0.25).abs() < 1e-12);
    }

    #[test]
    fn passes_below_threshold() {
        let (dag, results) = fixture();
        let r = evaluate_bias(&dag, &results, &["age_group".into()], 0.3);
        assert!(r.passed());
    }

    #[test]
    fn missing_histograms_are_skipped_not_failed() {
        let (dag, results) = fixture();
        let r = evaluate_bias(&dag, &results, &["unmeasured".into()], 0.01);
        assert!(r.passed());
    }

    #[test]
    fn overall_change_spans_first_to_last() {
        let (dag, results) = fixture();
        let c = overall_change(&dag, &results, "age_group").unwrap();
        assert_eq!(c.before.total(), 4);
        assert_eq!(c.after.ratio(&Value::text("g2")), 0.75);
    }
}
