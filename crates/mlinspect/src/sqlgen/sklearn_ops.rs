//! SQL translation of the scikit-learn preprocessing operators (paper §5.2).
//!
//! Each transformer splits into a **fit** table expression (computed once on
//! the training data, the prime materialization candidate) and a
//! **transform** expression referencing it, so train and test apply identical
//! substitutions (Figure 6).

use super::exprs::{quote_ident, sanitize};
use super::{CtidCol, TableExpr};
use crate::dag::{CtStep, ImputeKind, NodeId, TransformerKind};
use crate::error::{MlError, Result};
use etypes::DataType;

/// `(fit tables, transform body, output table expression)`.
pub type FeaturisationSql = (Vec<(String, String)>, String, TableExpr);

/// Build the fit tables and the transform body for one featurisation node.
///
/// * `name` — the output table expression name.
/// * `input` — the frame being transformed.
/// * `fit_owner` — the node id that owns the fit tables (the training-time
///   featurisation; names are keyed by it so a transform-only node reuses
///   them).
/// * `fit_input` — `Some(src)` to *generate* fit tables over `src`
///   (fit+transform), `None` to reuse existing ones (transform-only).
///
/// Returns `(fit entries, transform body, output table expression)`.
pub fn featurisation_sql(
    name: &str,
    input: &TableExpr,
    steps: &[CtStep],
    fit_owner: NodeId,
    fit_input: Option<&str>,
) -> Result<FeaturisationSql> {
    let mut fits: Vec<(String, String)> = Vec::new();
    let mut select: Vec<String> = Vec::new();
    let mut joins: Vec<String> = Vec::new();
    let mut out_columns: Vec<String> = Vec::new();
    let mut out_types: Vec<DataType> = Vec::new();
    let mut join_counter = 0usize;

    for (si, step) in steps.iter().enumerate() {
        for col in &step.columns {
            // Parallel expression builds: qualified for the transform body,
            // bare for the fit bodies.
            let mut expr_t = format!("tb.{}", quote_ident(col));
            let mut expr_f = quote_ident(col);
            let mut onehot: Option<String> = None;

            for (ti, t) in step.steps.iter().enumerate() {
                if onehot.is_some() {
                    return Err(MlError::Internal(format!(
                        "one-hot encoding must be the last step of '{}'",
                        step.name
                    )));
                }
                let fit_name = format!("fit_mlinid{fit_owner}_s{si}_{}_t{ti}", sanitize(col));
                match t {
                    TransformerKind::SimpleImputer(kind) => {
                        if let Some(src) = fit_input {
                            let body = match kind {
                                ImputeKind::MostFrequent => format!(
                                    "SELECT {expr_f} AS fill FROM {src} WHERE ({expr_f}) IS NOT NULL \
                                     GROUP BY {expr_f} ORDER BY count(*) DESC, {expr_f} LIMIT 1"
                                ),
                                ImputeKind::Mean => {
                                    format!("SELECT avg({expr_f}) AS fill FROM {src}")
                                }
                                ImputeKind::Median => {
                                    format!("SELECT median({expr_f}) AS fill FROM {src}")
                                }
                            };
                            fits.push((fit_name.clone(), body));
                        }
                        expr_t = format!("COALESCE({expr_t}, (SELECT fill FROM {fit_name}))");
                        expr_f = format!("COALESCE({expr_f}, (SELECT fill FROM {fit_name}))");
                    }
                    TransformerKind::StandardScaler => {
                        if let Some(src) = fit_input {
                            let body = format!(
                                "SELECT avg({expr_f}) AS m, \
                                 (CASE WHEN stddev_pop({expr_f}) = 0 THEN 1.0 \
                                  ELSE stddev_pop({expr_f}) END) AS s FROM {src}"
                            );
                            fits.push((fit_name.clone(), body));
                        }
                        expr_t = format!(
                            "(({expr_t}) - (SELECT m FROM {fit_name})) * 1.0 / (SELECT s FROM {fit_name})"
                        );
                        expr_f = format!(
                            "(({expr_f}) - (SELECT m FROM {fit_name})) * 1.0 / (SELECT s FROM {fit_name})"
                        );
                    }
                    TransformerKind::KBinsDiscretizer(k) => {
                        if let Some(src) = fit_input {
                            let body = format!(
                                "SELECT min({expr_f}) AS lo, \
                                 (CASE WHEN max({expr_f}) = min({expr_f}) THEN 1.0 \
                                  ELSE (max({expr_f}) - min({expr_f})) * 1.0 / {k} END) AS step \
                                 FROM {src}"
                            );
                            fits.push((fit_name.clone(), body));
                        }
                        let kmax = k.saturating_sub(1);
                        expr_t = format!(
                            "LEAST(GREATEST(FLOOR((({expr_t}) - (SELECT lo FROM {fit_name})) \
                             / (SELECT step FROM {fit_name})), 0), {kmax})"
                        );
                        expr_f = format!(
                            "LEAST(GREATEST(FLOOR((({expr_f}) - (SELECT lo FROM {fit_name})) \
                             / (SELECT step FROM {fit_name})), 0), {kmax})"
                        );
                    }
                    TransformerKind::Binarizer(threshold) => {
                        expr_t = format!("(CASE WHEN ({expr_t}) >= {threshold} THEN 1 ELSE 0 END)");
                        expr_f = format!("(CASE WHEN ({expr_f}) >= {threshold} THEN 1 ELSE 0 END)");
                    }
                    TransformerKind::OneHotEncoder => {
                        if let Some(src) = fit_input {
                            // Paper §5.2.2: positions from a ranking over the
                            // distinct values of the (already imputed) input.
                            let body = format!(
                                "SELECT v, ROW_NUMBER() OVER (ORDER BY v) - 1 AS pos \
                                 FROM (SELECT DISTINCT {expr_f} AS v FROM {src} \
                                       WHERE ({expr_f}) IS NOT NULL) d"
                            );
                            fits.push((fit_name.clone(), body));
                        }
                        let alias = format!("f{join_counter}");
                        join_counter += 1;
                        joins.push(format!(
                            "LEFT JOIN {fit_name} {alias} ON ({expr_t}) = {alias}.v"
                        ));
                        let n = format!("(SELECT count(*) FROM {fit_name})");
                        onehot = Some(format!(
                            "(CASE WHEN {alias}.pos IS NULL THEN array_fill(0, ({n})::int) \
                             ELSE array_fill(0, ({alias}.pos)::int) || ARRAY[1] || \
                                  array_fill(0, ({n} - {alias}.pos - 1)::int) END)"
                        ));
                    }
                }
            }

            let out_name = format!("f{si}_{}", sanitize(col));
            let (value, ty) = match onehot {
                Some(expr) => (expr, DataType::Array(Box::new(DataType::Int))),
                None => (expr_t, DataType::Float),
            };
            select.push(format!("{value} AS {}", quote_ident(&out_name)));
            out_columns.push(out_name);
            out_types.push(ty);
        }
    }

    let ctid_list: Vec<String> = input
        .ctids
        .iter()
        .map(|c| format!("tb.{}", quote_ident(&c.name)))
        .collect();
    select.extend(ctid_list);

    let mut body = format!("SELECT {}\nFROM {} tb", select.join(", "), input.sql_name);
    for j in &joins {
        body.push('\n');
        body.push_str(j);
    }

    let out = TableExpr {
        sql_name: name.to_string(),
        nullable: vec![false; out_columns.len()],
        columns: out_columns,
        types: out_types,
        ctids: input
            .ctids
            .iter()
            .map(|c| CtidCol {
                name: c.name.clone(),
                source: c.source,
                aggregated: c.aggregated,
            })
            .collect(),
    };
    Ok((fits, body, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> TableExpr {
        TableExpr {
            sql_name: "train_block".into(),
            columns: vec!["smoker".into(), "income".into(), "age".into()],
            types: vec![DataType::Text, DataType::Float, DataType::Int],
            nullable: vec![true, false, false],
            ctids: vec![CtidCol {
                name: "patients_ctid".into(),
                source: 0,
                aggregated: false,
            }],
        }
    }

    fn step(name: &str, steps: Vec<TransformerKind>, cols: &[&str]) -> CtStep {
        CtStep {
            name: name.into(),
            steps,
            columns: cols.iter().map(|c| c.to_string()).collect(),
        }
    }

    #[test]
    fn impute_then_one_hot_generates_fit_tables_and_join() {
        let steps = vec![step(
            "impute_and_one_hot",
            vec![
                TransformerKind::SimpleImputer(ImputeKind::MostFrequent),
                TransformerKind::OneHotEncoder,
            ],
            &["smoker"],
        )];
        let (fits, body, out) =
            featurisation_sql("feat", &input(), &steps, 7, Some("train_block")).unwrap();
        assert_eq!(fits.len(), 2);
        assert!(fits[0].1.contains("ORDER BY count(*) DESC"));
        assert!(fits[1].1.contains("ROW_NUMBER() OVER (ORDER BY v)"));
        assert!(body.contains("LEFT JOIN fit_mlinid7_s0_smoker_t1 f0"));
        assert!(body.contains("array_fill"));
        assert!(body.contains("COALESCE(tb.\"smoker\""));
        assert_eq!(out.columns, vec!["f0_smoker"]);
        assert_eq!(out.types[0], DataType::Array(Box::new(DataType::Int)));
        // ctids pass through.
        assert!(body.contains("tb.\"patients_ctid\""));
    }

    #[test]
    fn scaler_references_fit_mean_and_std() {
        let steps = vec![step(
            "numeric",
            vec![TransformerKind::StandardScaler],
            &["income"],
        )];
        let (fits, body, out) =
            featurisation_sql("feat", &input(), &steps, 3, Some("train_block")).unwrap();
        assert_eq!(fits.len(), 1);
        assert!(fits[0].1.contains("stddev_pop"));
        assert!(body.contains("(SELECT m FROM fit_mlinid3_s0_income_t0)"));
        assert_eq!(out.types[0], DataType::Float);
    }

    #[test]
    fn transform_only_reuses_fit_names_without_regenerating() {
        let steps = vec![step(
            "numeric",
            vec![TransformerKind::StandardScaler],
            &["income"],
        )];
        let (fits, body, _) = featurisation_sql("feat_test", &input(), &steps, 3, None).unwrap();
        assert!(fits.is_empty());
        // Still references the owner node 3's fit table.
        assert!(body.contains("fit_mlinid3_s0_income_t0"));
    }

    #[test]
    fn kbins_translation_uses_least_greatest_floor() {
        let steps = vec![step(
            "bins",
            vec![TransformerKind::KBinsDiscretizer(4)],
            &["age"],
        )];
        let (_, body, _) =
            featurisation_sql("feat", &input(), &steps, 1, Some("train_block")).unwrap();
        assert!(body.contains("LEAST(GREATEST(FLOOR("));
        assert!(body.contains("), 0), 3)"));
    }

    #[test]
    fn one_hot_must_be_last() {
        let steps = vec![step(
            "bad",
            vec![
                TransformerKind::OneHotEncoder,
                TransformerKind::StandardScaler,
            ],
            &["smoker"],
        )];
        assert!(featurisation_sql("feat", &input(), &steps, 1, Some("x")).is_err());
    }

    #[test]
    fn binarizer_is_pure_expression_no_fit() {
        let steps = vec![step("b", vec![TransformerKind::Binarizer(50.0)], &["age"])];
        let (fits, body, _) =
            featurisation_sql("feat", &input(), &steps, 1, Some("train_block")).unwrap();
        assert!(fits.is_empty());
        assert!(body.contains("CASE WHEN (tb.\"age\") >= 50 THEN 1 ELSE 0 END"));
    }
}
