//! `SQLQueryContainer`: the ordered list of generated table expressions.
//!
//! "A class SQLQueryContainer collects all the operations in a list that can
//! be translated into working queries for any statements in the pipeline at
//! any time" (paper §4): after every pipeline line the container can emit an
//! executable query for any generated name, in both CTE and VIEW modes.

/// Output mode of the generated SQL (paper §3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlMode {
    /// One `WITH` chain per query, each query shipping the whole prefix.
    Cte,
    /// One `CREATE VIEW` per operator, queries reference views.
    View,
}

/// One generated table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerEntry {
    /// CTE/view name.
    pub name: String,
    /// The `SELECT ...` body.
    pub body: String,
    /// Candidate for materialization (fitting parameters and, when the user
    /// materializes, every view — paper §3.4.2).
    pub materialize_candidate: bool,
}

/// Ordered collection of all table expressions generated so far.
#[derive(Debug, Clone, Default)]
pub struct SqlQueryContainer {
    entries: Vec<ContainerEntry>,
}

impl SqlQueryContainer {
    /// Empty container.
    pub fn new() -> SqlQueryContainer {
        SqlQueryContainer::default()
    }

    /// Append a table expression.
    pub fn push(&mut self, name: impl Into<String>, body: impl Into<String>, fit: bool) {
        self.entries.push(ContainerEntry {
            name: name.into(),
            body: body.into(),
            materialize_candidate: fit,
        });
    }

    /// All entries in generation order.
    pub fn entries(&self) -> &[ContainerEntry] {
        &self.entries
    }

    /// Number of table expressions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was generated yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assemble a full query for `select` in the given mode: CTE mode wraps
    /// the entire prefix into a `WITH` chain (unreferenced CTEs cost nothing
    /// — the engine materializes lazily, like PostgreSQL); VIEW mode returns
    /// the bare select, since the views already exist in the catalog.
    pub fn query(&self, mode: SqlMode, select: &str) -> String {
        match mode {
            SqlMode::View => format!("{select};"),
            SqlMode::Cte => {
                if self.entries.is_empty() {
                    return format!("{select};");
                }
                let mut out = String::with_capacity(1024);
                out.push_str("WITH ");
                for (i, e) in self.entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&e.name);
                    out.push_str(" AS (\n");
                    out.push_str(&e.body);
                    out.push_str("\n)");
                }
                out.push('\n');
                out.push_str(select);
                out.push(';');
                out
            }
        }
    }

    /// The `CREATE [MATERIALIZED] VIEW` statement for one entry (VIEW mode).
    pub fn view_ddl(entry: &ContainerEntry, materialize: bool) -> String {
        format!(
            "CREATE {}VIEW {} AS {};",
            if materialize { "MATERIALIZED " } else { "" },
            entry.name,
            entry.body
        )
    }

    /// The full VIEW-mode script (for display / debugging — execution happens
    /// incrementally).
    pub fn view_script(&self, materialize: bool) -> String {
        self.entries
            .iter()
            .map(|e| SqlQueryContainer::view_ddl(e, materialize && e.materialize_candidate))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cte_mode_wraps_whole_prefix() {
        let mut c = SqlQueryContainer::new();
        c.push("a", "SELECT 1 AS x", false);
        c.push("b", "SELECT x FROM a", false);
        let q = c.query(SqlMode::Cte, "SELECT x FROM b");
        assert!(q.starts_with("WITH a AS ("));
        assert!(q.contains("b AS ("));
        assert!(q.trim_end().ends_with("SELECT x FROM b;"));
    }

    #[test]
    fn view_mode_is_bare_select() {
        let mut c = SqlQueryContainer::new();
        c.push("a", "SELECT 1 AS x", false);
        assert_eq!(
            c.query(SqlMode::View, "SELECT x FROM a"),
            "SELECT x FROM a;"
        );
    }

    #[test]
    fn view_ddl_materializes_candidates_only() {
        let mut c = SqlQueryContainer::new();
        c.push("op", "SELECT 1 AS x", false);
        c.push("fit", "SELECT avg(x) AS m FROM op", true);
        let script = c.view_script(true);
        assert!(script.contains("CREATE VIEW op"));
        assert!(script.contains("CREATE MATERIALIZED VIEW fit"));
    }

    #[test]
    fn empty_container_query() {
        let c = SqlQueryContainer::new();
        assert_eq!(c.query(SqlMode::Cte, "SELECT 1"), "SELECT 1;");
    }
}
