//! Rendering captured column expressions ([`SExpr`]) to SQL.

use crate::dag::SExpr;
use etypes::Value;
use pyparser::{BinOp, UnaryOp};

/// Quote an identifier for SQL (`age_group` → `"age_group"`).
pub fn quote_ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// Sanitize a name for use inside generated object names.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 't');
    }
    out
}

/// Render a captured expression as SQL, optionally qualifying column
/// references with a table alias.
///
/// pandas semantics that differ from SQL are translated:
/// * `/` is always float division → `(a * 1.0 / b)`,
/// * comparisons inside filters behave identically (pandas' `False` for NaN
///   comparisons vs SQL's `NULL` both drop the row).
pub fn sexpr_to_sql(expr: &SExpr, qualifier: Option<&str>) -> String {
    match expr {
        SExpr::Col(c) => match qualifier {
            Some(q) => format!("{q}.{}", quote_ident(c)),
            None => quote_ident(c),
        },
        SExpr::Lit(v) => v.sql_literal(),
        SExpr::Binary { op, left, right } => {
            let l = sexpr_to_sql(left, qualifier);
            let r = sexpr_to_sql(right, qualifier);
            match op {
                BinOp::Div => format!("({l} * 1.0 / {r})"),
                BinOp::FloorDiv => format!("FLOOR({l} * 1.0 / {r})"),
                BinOp::Eq => eq_with_null(&l, right, "="),
                BinOp::NotEq => eq_with_null(&l, right, "<>"),
                other => format!("({l} {} {r})", sql_op(*other)),
            }
        }
        SExpr::Unary { op, operand } => {
            let o = sexpr_to_sql(operand, qualifier);
            match op {
                UnaryOp::Neg => format!("(-{o})"),
                UnaryOp::Not | UnaryOp::Invert => format!("(NOT {o})"),
            }
        }
        SExpr::IsIn { expr, list } => {
            let e = sexpr_to_sql(expr, qualifier);
            let items: Vec<String> = list.iter().map(Value::sql_literal).collect();
            format!("({e} IN ({}))", items.join(", "))
        }
    }
}

/// pandas `== / !=` against a literal treat NULL as an ordinary non-matching
/// value (`NaN != 'O'` is True). SQL comparison would yield NULL and drop
/// the row, so `<>` against a literal keeps NULLs explicitly.
fn eq_with_null(l: &str, right: &SExpr, op: &str) -> String {
    if let SExpr::Lit(v) = right {
        if !v.is_null() {
            let r = v.sql_literal();
            return if op == "<>" {
                format!("(({l} <> {r}) OR ({l} IS NULL))")
            } else {
                format!("({l} = {r})")
            };
        }
    }
    format!("({l} {op} {})", sexpr_to_sql(right, None))
}

fn sql_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::BitAnd | BinOp::And => "AND",
        BinOp::BitOr | BinOp::Or => "OR",
        BinOp::Pow => "^",
        // Handled in sexpr_to_sql.
        BinOp::Div | BinOp::FloorDiv | BinOp::Eq | BinOp::NotEq => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(c: &str) -> SExpr {
        SExpr::Col(c.into())
    }

    #[test]
    fn renders_label_expression() {
        // data['complications'] > 1.2 * data['mean_complications']
        let e = SExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(col("complications")),
            right: Box::new(SExpr::Binary {
                op: BinOp::Mul,
                left: Box::new(SExpr::Lit(Value::Float(1.2))),
                right: Box::new(col("mean_complications")),
            }),
        };
        assert_eq!(
            sexpr_to_sql(&e, None),
            "(\"complications\" > (1.2 * \"mean_complications\"))"
        );
    }

    #[test]
    fn division_is_float() {
        let e = SExpr::Binary {
            op: BinOp::Div,
            left: Box::new(col("a")),
            right: Box::new(col("b")),
        };
        assert_eq!(sexpr_to_sql(&e, None), "(\"a\" * 1.0 / \"b\")");
    }

    #[test]
    fn isin_renders_in_list() {
        let e = SExpr::IsIn {
            expr: Box::new(col("county")),
            list: vec![Value::text("county2"), Value::text("county3")],
        };
        assert_eq!(
            sexpr_to_sql(&e, Some("tb1")),
            "(tb1.\"county\" IN ('county2', 'county3'))"
        );
    }

    #[test]
    fn not_equals_literal_keeps_nulls_like_pandas() {
        let e = SExpr::Binary {
            op: BinOp::NotEq,
            left: Box::new(col("c_charge_degree")),
            right: Box::new(SExpr::Lit(Value::text("O"))),
        };
        let sql = sexpr_to_sql(&e, None);
        assert!(sql.contains("IS NULL"), "{sql}");
    }

    #[test]
    fn qualifier_prefixes_columns() {
        assert_eq!(sexpr_to_sql(&col("x"), Some("tb")), "tb.\"x\"");
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("patients.csv"), "patients_csv");
        assert_eq!(sanitize("9lives"), "t9lives");
        assert_eq!(sanitize("Hours-Per-Week"), "hours_per_week");
    }

    #[test]
    fn unary_not() {
        let e = SExpr::Unary {
            op: UnaryOp::Invert,
            operand: Box::new(col("m")),
        };
        assert_eq!(sexpr_to_sql(&e, None), "(NOT \"m\")");
    }
}
