//! SQL code generation: one CTE/view per pipeline operator (paper §5).
//!
//! [`SqlGen`] is the paper's "SQL mapping": it assigns every captured dummy
//! object a table expression, tracks the tuple-identifier columns threaded
//! through every operator, and produces the inspection queries that restore
//! sensitive columns through those identifiers (paper §3).

pub mod container;
pub mod exprs;
pub mod sklearn_ops;

pub use container::{ContainerEntry, SqlMode, SqlQueryContainer};
pub use exprs::{quote_ident, sanitize, sexpr_to_sql};

use crate::dag::{CtStep, NodeId, SExpr, SplitPart};
use crate::error::{MlError, Result};
use etypes::{DataType, Value};
use std::collections::HashMap;

/// One tuple-identifier column carried by a table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct CtidCol {
    /// Column name (`<read-table>_ctid`, unique per base table).
    pub name: String,
    /// The ReadCsv node this identifier originates from.
    pub source: NodeId,
    /// True after an aggregation turned it into an array (paper Listing 3).
    pub aggregated: bool,
}

/// The SQL-side description of one captured object (the paper's mapping
/// value: table expression name, columns, identifier list).
#[derive(Debug, Clone, PartialEq)]
pub struct TableExpr {
    /// CTE/view name.
    pub sql_name: String,
    /// Visible data columns.
    pub columns: Vec<String>,
    /// Types, parallel to `columns`.
    pub types: Vec<DataType>,
    /// Nullability, parallel to `columns`.
    pub nullable: Vec<bool>,
    /// Tuple identifiers currently associated with the object.
    pub ctids: Vec<CtidCol>,
}

impl TableExpr {
    /// Type of a column, if present.
    pub fn col_type(&self, name: &str) -> Option<&DataType> {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(|i| &self.types[i])
    }

    /// Nullability of a column (true when unknown).
    pub fn is_nullable(&self, name: &str) -> bool {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(|i| self.nullable[i])
            .unwrap_or(true)
    }

    fn ctid_select_list(&self, alias: Option<&str>) -> Vec<String> {
        self.ctids
            .iter()
            .map(|c| match alias {
                Some(a) => format!("{a}.{}", quote_ident(&c.name)),
                None => quote_ident(&c.name),
            })
            .collect()
    }
}

/// DDL + COPY emitted for one `read_csv`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadCsvSql {
    /// Base table name.
    pub table: String,
    /// `DROP TABLE IF EXISTS ...; CREATE TABLE ...`.
    pub create: String,
    /// The `COPY` statement (for display; the backend bulk-loads directly).
    pub copy: String,
}

/// The SQL generator: translates captured operators into container entries.
#[derive(Debug, Clone, Default)]
pub struct SqlGen {
    /// All generated table expressions, in order.
    pub container: SqlQueryContainer,
    mapping: HashMap<NodeId, TableExpr>,
    origins: HashMap<NodeId, TableExpr>,
}

impl SqlGen {
    /// Fresh generator.
    pub fn new() -> SqlGen {
        SqlGen::default()
    }

    /// The table expression of a translated node.
    pub fn table_expr(&self, node: NodeId) -> Result<&TableExpr> {
        self.mapping
            .get(&node)
            .ok_or_else(|| MlError::Internal(format!("node {node} not translated")))
    }

    fn name_for(&self, id: NodeId, line: usize) -> String {
        format!("block_mlinid{id}_{line}")
    }

    fn register(&mut self, id: NodeId, te: TableExpr, body: String, fit: bool) {
        self.container.push(te.sql_name.clone(), body, fit);
        self.mapping.insert(id, te);
    }

    // ---- operators -----------------------------------------------------------

    /// `read_csv`: DDL for the base table plus the ctid-exposing first CTE
    /// (paper Listing 5 lines 1-11).
    #[allow(clippy::too_many_arguments)]
    pub fn read_csv(
        &mut self,
        id: NodeId,
        line: usize,
        file: &str,
        columns: &[String],
        types: &[DataType],
        nullable: &[bool],
        na_marker: Option<&str>,
    ) -> ReadCsvSql {
        let stem = sanitize(
            file.rsplit('/')
                .next()
                .unwrap_or(file)
                .trim_end_matches(".csv"),
        );
        let table = format!("{stem}_{line}_mlinid{id}");
        let cte = format!("{table}_ctid");
        let ctid_col = format!("{table}_ctid");

        let col_defs: Vec<String> = columns
            .iter()
            .zip(types)
            .map(|(c, t)| format!("{} {}", quote_ident(c), t.sql_name()))
            .collect();
        let create = format!(
            "DROP TABLE IF EXISTS {table};\nCREATE TABLE {table} ({});",
            col_defs.join(", ")
        );
        let col_list: Vec<String> = columns.iter().map(|c| quote_ident(c)).collect();
        let copy = format!(
            "COPY {table} ({}) FROM '{file}' WITH (DELIMITER ',', NULL '{}', FORMAT CSV, HEADER TRUE);",
            col_list.join(", "),
            na_marker.unwrap_or(""),
        );

        let body = format!(
            "SELECT {}, ctid AS {} FROM {table}",
            col_list.join(", "),
            quote_ident(&ctid_col)
        );
        let te = TableExpr {
            sql_name: cte,
            columns: columns.to_vec(),
            types: types.to_vec(),
            nullable: nullable.to_vec(),
            ctids: vec![CtidCol {
                name: ctid_col,
                source: id,
                aggregated: false,
            }],
        };
        self.origins.insert(id, te.clone());
        self.register(id, te, body, false);
        ReadCsvSql {
            table,
            create,
            copy,
        }
    }

    /// `merge` (paper §5.1.2): explicit column list, both sides' tuple
    /// identifiers, null-joining predicate for nullable keys.
    pub fn join(
        &mut self,
        id: NodeId,
        line: usize,
        left: NodeId,
        right: NodeId,
        on: &[String],
    ) -> Result<()> {
        let lt = self.table_expr(left)?.clone();
        let rt = self.table_expr(right)?.clone();
        let name = self.name_for(id, line);

        let mut select: Vec<String> = Vec::new();
        let mut columns: Vec<String> = Vec::new();
        let mut types: Vec<DataType> = Vec::new();
        let mut nullable: Vec<bool> = Vec::new();

        for k in on {
            select.push(format!("tb1.{}", quote_ident(k)));
            columns.push(k.clone());
            types.push(lt.col_type(k).cloned().unwrap_or(DataType::Text));
            nullable.push(lt.is_nullable(k) || rt.is_nullable(k));
        }
        let is_key = |c: &str| on.iter().any(|k| k == c);
        for (i, c) in lt.columns.iter().enumerate() {
            if is_key(c) {
                continue;
            }
            let out = if rt.columns.contains(c) {
                format!("{c}_x")
            } else {
                c.clone()
            };
            select.push(format!("tb1.{} AS {}", quote_ident(c), quote_ident(&out)));
            columns.push(out);
            types.push(lt.types[i].clone());
            nullable.push(lt.nullable[i]);
        }
        for (i, c) in rt.columns.iter().enumerate() {
            if is_key(c) {
                continue;
            }
            let out = if lt.columns.contains(c) {
                format!("{c}_y")
            } else {
                c.clone()
            };
            select.push(format!("tb2.{} AS {}", quote_ident(c), quote_ident(&out)));
            columns.push(out);
            types.push(rt.types[i].clone());
            nullable.push(rt.nullable[i]);
        }

        // Tuple identifiers from both inputs; on a name collision (self-join
        // or join with a derivative) the left side's identifiers win — the
        // paper's Listing 5 keeps only tb1's ctid when joining back the
        // aggregation result.
        let mut ctids = lt.ctids.clone();
        select.extend(lt.ctid_select_list(Some("tb1")));
        for c in &rt.ctids {
            if !ctids.iter().any(|l| l.name == c.name) {
                select.push(format!("tb2.{}", quote_ident(&c.name)));
                ctids.push(c.clone());
            }
        }

        let cond: Vec<String> = on
            .iter()
            .map(|k| {
                let kq = quote_ident(k);
                if lt.is_nullable(k) || rt.is_nullable(k) {
                    format!("(tb1.{kq} = tb2.{kq} OR (tb1.{kq} IS NULL AND tb2.{kq} IS NULL))")
                } else {
                    format!("tb1.{kq} = tb2.{kq}")
                }
            })
            .collect();

        let body = format!(
            "SELECT {}\nFROM {} tb1 INNER JOIN {} tb2 ON {}",
            select.join(", "),
            lt.sql_name,
            rt.sql_name,
            cond.join(" AND ")
        );
        let te = TableExpr {
            sql_name: name,
            columns,
            types,
            nullable,
            ctids,
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// `groupby().agg()` (paper §5.1.5): aggregate the tuple identifiers
    /// into arrays alongside the data aggregates.
    pub fn groupby_agg(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        keys: &[String],
        aggs: &[dataframe::AggSpec],
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let mut select: Vec<String> = Vec::new();
        let mut ctids = Vec::new();
        for c in &it.ctids {
            select.push(format!(
                "array_agg({}) AS {}",
                quote_ident(&c.name),
                quote_ident(&c.name)
            ));
            ctids.push(CtidCol {
                aggregated: true,
                ..c.clone()
            });
        }
        let mut columns = Vec::new();
        let mut types = Vec::new();
        let mut nullable = Vec::new();
        for k in keys {
            select.push(quote_ident(k));
            columns.push(k.clone());
            types.push(it.col_type(k).cloned().unwrap_or(DataType::Text));
            nullable.push(it.is_nullable(k));
        }
        for a in aggs {
            select.push(format!(
                "{}({}) AS {}",
                a.func.sql_name(),
                quote_ident(&a.input),
                quote_ident(&a.output)
            ));
            columns.push(a.output.clone());
            types.push(match a.func {
                dataframe::AggFunc::Count => DataType::Int,
                dataframe::AggFunc::Mean | dataframe::AggFunc::Std => DataType::Float,
                _ => it.col_type(&a.input).cloned().unwrap_or(DataType::Float),
            });
            nullable.push(true);
        }
        let key_list: Vec<String> = keys.iter().map(|k| quote_ident(k)).collect();
        let body = format!(
            "SELECT {}\nFROM {} GROUP BY {}",
            select.join(", "),
            it.sql_name,
            key_list.join(", ")
        );
        let te = TableExpr {
            sql_name: name,
            columns,
            types,
            nullable,
            ctids,
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// `frame[col] = expr` (paper §5.1.4 / Listing 11): copy the previous
    /// expression and add the new column in place.
    pub fn set_item(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        column: &str,
        expr: &SExpr,
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let mut select: Vec<String> = Vec::new();
        let mut columns = Vec::new();
        let mut types = Vec::new();
        let mut nullable = Vec::new();
        for (i, c) in it.columns.iter().enumerate() {
            if c == column {
                continue; // overwritten below
            }
            select.push(quote_ident(c));
            columns.push(c.clone());
            types.push(it.types[i].clone());
            nullable.push(it.nullable[i]);
        }
        select.push(format!(
            "{} AS {}",
            sexpr_to_sql(expr, None),
            quote_ident(column)
        ));
        columns.push(column.to_string());
        types.push(infer_sexpr_type(expr, &it));
        nullable.push(true);
        select.extend(it.ctid_select_list(None));
        let body = format!("SELECT {}\nFROM {}", select.join(", "), it.sql_name);
        let te = TableExpr {
            sql_name: name,
            columns,
            types,
            nullable,
            ctids: it.ctids,
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// Projection (paper §5.1.3): requested columns plus every tuple
    /// identifier — "the index allows the restoration of the sensitive
    /// column" later.
    pub fn project(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        columns: &[String],
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let mut select: Vec<String> = columns.iter().map(|c| quote_ident(c)).collect();
        select.extend(it.ctid_select_list(None));
        let types = columns
            .iter()
            .map(|c| it.col_type(c).cloned().unwrap_or(DataType::Text))
            .collect();
        let nullable = columns.iter().map(|c| it.is_nullable(c)).collect();
        let body = format!("SELECT {}\nFROM {}", select.join(", "), it.sql_name);
        let te = TableExpr {
            sql_name: name,
            columns: columns.to_vec(),
            types,
            nullable,
            ctids: it.ctids,
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// Selection (paper §5.1.3).
    pub fn filter(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        condition: &SExpr,
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let body = format!(
            "SELECT * FROM {}\nWHERE {}",
            it.sql_name,
            sexpr_to_sql(condition, None)
        );
        let te = TableExpr {
            sql_name: name,
            ..it
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// `dropna` (paper §5.1.6): concatenated negated `IS NULL` blocks.
    pub fn dropna(&mut self, id: NodeId, line: usize, input: NodeId) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let conds: Vec<String> = it
            .columns
            .iter()
            .map(|c| format!("NOT ({} IS NULL)", quote_ident(c)))
            .collect();
        let body = if conds.is_empty() {
            format!("SELECT * FROM {}", it.sql_name)
        } else {
            format!(
                "SELECT * FROM {}\nWHERE {}",
                it.sql_name,
                conds.join(" AND ")
            )
        };
        let mut te = TableExpr {
            sql_name: name,
            ..it
        };
        for n in &mut te.nullable {
            *n = false;
        }
        self.register(id, te, body, false);
        Ok(())
    }

    /// `replace` (paper §5.1.7): anchored `REGEXP_REPLACE` on text columns.
    pub fn replace(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        from: &Value,
        to: &Value,
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let mut select = Vec::new();
        for (i, c) in it.columns.iter().enumerate() {
            let cq = quote_ident(c);
            let replaced = match (&it.types[i], from, to) {
                (DataType::Text, Value::Text(f), Value::Text(t)) => {
                    format!(
                        "REGEXP_REPLACE({cq}, '^{}$', '{}') AS {cq}",
                        escape_regex_literal(f),
                        t.replace('\'', "''")
                    )
                }
                (ty, f, t)
                    if !matches!(ty, DataType::Text) && f.data_type().as_ref() == Some(ty) =>
                {
                    format!(
                        "(CASE WHEN {cq} = {} THEN {} ELSE {cq} END) AS {cq}",
                        f.sql_literal(),
                        t.sql_literal()
                    )
                }
                _ => cq.clone(),
            };
            select.push(replaced);
        }
        select.extend(it.ctid_select_list(None));
        let body = format!("SELECT {}\nFROM {}", select.join(", "), it.sql_name);
        let te = TableExpr {
            sql_name: name,
            ..it
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// `fillna`: COALESCE over every column whose type matches the fill
    /// value (pandas coerces dtypes; SQL cannot, so incompatible columns
    /// pass through unchanged).
    pub fn fillna(&mut self, id: NodeId, line: usize, input: NodeId, value: &Value) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let fill_ty = value.data_type();
        let mut select = Vec::new();
        for (i, c) in it.columns.iter().enumerate() {
            let cq = quote_ident(c);
            if Some(&it.types[i]) == fill_ty.as_ref()
                || (it.types[i] == DataType::Float && fill_ty == Some(DataType::Int))
            {
                select.push(format!("COALESCE({cq}, {}) AS {cq}", value.sql_literal()));
            } else {
                select.push(cq);
            }
        }
        select.extend(it.ctid_select_list(None));
        let body = format!("SELECT {}\nFROM {}", select.join(", "), it.sql_name);
        let mut te = TableExpr {
            sql_name: name,
            ..it
        };
        for (i, n) in te.nullable.iter_mut().enumerate() {
            if Some(&te.types[i]) == fill_ty.as_ref() {
                *n = false;
            }
        }
        self.register(id, te, body, false);
        Ok(())
    }

    /// `head(n)`: LIMIT.
    pub fn head(&mut self, id: NodeId, line: usize, input: NodeId, n: u64) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let body = format!("SELECT * FROM {} LIMIT {n}", it.sql_name);
        let te = TableExpr {
            sql_name: name,
            ..it
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// `sort_values(by=..., ascending=...)`: ORDER BY.
    pub fn sort_values(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        by: &[String],
        ascending: bool,
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let keys: Vec<String> = by
            .iter()
            .map(|k| format!("{}{}", quote_ident(k), if ascending { "" } else { " DESC" }))
            .collect();
        let body = format!("SELECT * FROM {} ORDER BY {}", it.sql_name, keys.join(", "));
        let te = TableExpr {
            sql_name: name,
            ..it
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// `drop(columns=[...])`: projection to the complement (tuple
    /// identifiers are kept, like every projection).
    pub fn drop_columns(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        dropped: &[String],
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let kept: Vec<String> = it
            .columns
            .iter()
            .filter(|c| !dropped.contains(c))
            .cloned()
            .collect();
        self.project(id, line, input, &kept)
    }

    /// `label_binarize`: a CASE projection producing the `label` column,
    /// keeping the tuple identifiers for row alignment.
    pub fn label_binarize(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        column: &str,
        classes: &[Value; 2],
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let name = self.name_for(id, line);
        let mut select = vec![format!(
            "(CASE WHEN {} = {} THEN 1 ELSE 0 END) AS \"label\"",
            quote_ident(column),
            classes[1].sql_literal()
        )];
        select.extend(it.ctid_select_list(None));
        let body = format!("SELECT {}\nFROM {}", select.join(", "), it.sql_name);
        let te = TableExpr {
            sql_name: name,
            columns: vec!["label".to_string()],
            types: vec![DataType::Int],
            nullable: vec![false],
            ctids: it.ctids,
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// One half of `train_test_split`: a deterministic hash of the first
    /// tuple identifier partitions the rows (see
    /// [`crate::backends::split_hash`]).
    pub fn split(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        part: SplitPart,
        test_percent: u8,
        seed: u64,
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let ctid = it
            .ctids
            .iter()
            .find(|c| !c.aggregated)
            .ok_or_else(|| MlError::Internal("split needs a scalar tuple identifier".into()))?;
        let name = self.name_for(id, line);
        let cmp = match part {
            SplitPart::Train => ">=",
            SplitPart::Test => "<",
        };
        let body = format!(
            "SELECT * FROM {}\nWHERE (({} * 2654435761 + {}) % 100) {cmp} {}",
            it.sql_name,
            quote_ident(&ctid.name),
            seed % 1_000_003,
            test_percent
        );
        let te = TableExpr {
            sql_name: name,
            ..it
        };
        self.register(id, te, body, false);
        Ok(())
    }

    /// ColumnTransformer featurisation (paper §5.2): fit tables (candidates
    /// for materialization) plus the transform expression.
    pub fn featurisation(
        &mut self,
        id: NodeId,
        line: usize,
        input: NodeId,
        steps: &[CtStep],
        fit_node: Option<NodeId>,
    ) -> Result<()> {
        let it = self.table_expr(input)?.clone();
        let fit_owner = fit_node.unwrap_or(id);
        let fit_input = match fit_node {
            // The fit tables were generated by the fit-time featurisation
            // and reference the *training* frame; reuse them verbatim.
            Some(_) => None,
            None => Some(it.sql_name.clone()),
        };
        let name = self.name_for(id, line);
        let (entries, body, out) =
            sklearn_ops::featurisation_sql(&name, &it, steps, fit_owner, fit_input.as_deref())?;
        for (fit_name, fit_body) in entries {
            self.container.push(fit_name, fit_body, true);
        }
        self.register(id, out, body, false);
        Ok(())
    }

    // ---- inspection ------------------------------------------------------------

    /// The histogram query of a sensitive column at a node (paper Listing 5
    /// lines 31-33): direct `GROUP BY` when present, join-back through the
    /// tuple identifier (with `unnest` after aggregations) otherwise.
    /// Returns `None` when the column cannot be restored.
    pub fn histogram_select(&self, node: NodeId, column: &str) -> Option<String> {
        let te = self.mapping.get(&node)?;
        let cq = quote_ident(column);
        if te.columns.iter().any(|c| c == column) {
            return Some(format!(
                "SELECT {cq} AS value, count(*) AS cnt FROM {} GROUP BY {cq}",
                te.sql_name
            ));
        }
        for ctid in &te.ctids {
            let origin = self.origins.get(&ctid.source)?;
            if !origin.columns.iter().any(|c| c == column) {
                continue;
            }
            let oname = &origin.sql_name;
            let octid = quote_ident(&origin.ctids[0].name);
            let curq = quote_ident(&ctid.name);
            return Some(if ctid.aggregated {
                format!(
                    "SELECT tb_orig.{cq} AS value, count(*) AS cnt \
                     FROM (SELECT unnest({curq}) AS u FROM {}) tb_curr \
                     JOIN {oname} tb_orig ON tb_curr.u = tb_orig.{octid} \
                     GROUP BY tb_orig.{cq}",
                    te.sql_name
                )
            } else {
                format!(
                    "SELECT tb_orig.{cq} AS value, count(*) AS cnt \
                     FROM {} tb_curr JOIN {oname} tb_orig ON tb_curr.{curq} = tb_orig.{octid} \
                     GROUP BY tb_orig.{cq}",
                    te.sql_name
                )
            });
        }
        None
    }

    /// `SELECT <visible columns> FROM node`, optionally limited.
    pub fn select_visible(&self, node: NodeId, limit: Option<usize>) -> Result<String> {
        let te = self.table_expr(node)?;
        let cols: Vec<String> = te.columns.iter().map(|c| quote_ident(c)).collect();
        let cols = if cols.is_empty() {
            "*".to_string()
        } else {
            cols.join(", ")
        };
        Ok(match limit {
            Some(k) => format!("SELECT {cols} FROM {} LIMIT {k}", te.sql_name),
            None => format!("SELECT {cols} FROM {}", te.sql_name),
        })
    }

    /// `SELECT <ctid columns> FROM node LIMIT k` for RowLineage.
    pub fn select_lineage(&self, node: NodeId, k: usize) -> Result<(Vec<String>, String)> {
        let te = self.table_expr(node)?;
        let names: Vec<String> = te.ctids.iter().map(|c| c.name.clone()).collect();
        let cols: Vec<String> = names.iter().map(|c| quote_ident(c)).collect();
        Ok((
            names,
            format!("SELECT {} FROM {} LIMIT {k}", cols.join(", "), te.sql_name),
        ))
    }
}

/// Best-effort type of a captured expression (drives join null-handling and
/// the replace translation, not execution).
fn infer_sexpr_type(expr: &SExpr, input: &TableExpr) -> DataType {
    use pyparser::BinOp::*;
    match expr {
        SExpr::Col(c) => input.col_type(c).cloned().unwrap_or(DataType::Text),
        SExpr::Lit(v) => v.data_type().unwrap_or(DataType::Text),
        SExpr::Binary { op, left, right } => match op {
            Lt | Gt | Le | Ge | Eq | NotEq | BitAnd | BitOr | And | Or => DataType::Bool,
            Div | FloorDiv => DataType::Float,
            _ => {
                let lt = infer_sexpr_type(left, input);
                let rt = infer_sexpr_type(right, input);
                lt.unify(&rt).unwrap_or(DataType::Float)
            }
        },
        SExpr::Unary { op, operand } => match op {
            pyparser::UnaryOp::Neg => infer_sexpr_type(operand, input),
            _ => DataType::Bool,
        },
        SExpr::IsIn { .. } => DataType::Bool,
    }
}

/// Escape a literal for the engine's anchored-literal regex dialect.
fn escape_regex_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(
            c,
            '.' | '*' | '+' | '?' | '[' | ']' | '(' | ')' | '{' | '}' | '|' | '^' | '$' | '\\'
        ) {
            out.push('\\');
        }
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyparser::BinOp;

    fn read(gen: &mut SqlGen, id: NodeId) -> TableExpr {
        gen.read_csv(
            id,
            20 + id,
            "patients.csv",
            &["race".into(), "age_group".into(), "ssn".into()],
            &[DataType::Text, DataType::Text, DataType::Text],
            &[false, false, false],
            Some("?"),
        );
        gen.table_expr(id).unwrap().clone()
    }

    #[test]
    fn read_csv_exposes_ctid_in_first_cte() {
        let mut gen = SqlGen::new();
        let te = read(&mut gen, 0);
        assert_eq!(te.sql_name, "patients_20_mlinid0_ctid");
        assert_eq!(te.ctids.len(), 1);
        let entry = &gen.container.entries()[0];
        assert!(entry.body.contains("ctid AS \"patients_20_mlinid0_ctid\""));
    }

    #[test]
    fn projection_keeps_ctids() {
        let mut gen = SqlGen::new();
        read(&mut gen, 0);
        gen.project(1, 33, 0, &["race".into()]).unwrap();
        let body = &gen.container.entries()[1].body;
        assert!(body.contains("\"race\""));
        assert!(body.contains("patients_20_mlinid0_ctid"));
        // age_group is gone from the visible columns...
        let te = gen.table_expr(1).unwrap();
        assert!(!te.columns.contains(&"age_group".to_string()));
        // ...but the histogram query can still restore it via the ctid.
        let q = gen.histogram_select(1, "age_group").unwrap();
        assert!(q.contains("JOIN patients_20_mlinid0_ctid"));
        assert!(q.contains("GROUP BY tb_orig.\"age_group\""));
    }

    #[test]
    fn aggregation_ctids_are_array_agged_and_unnested() {
        let mut gen = SqlGen::new();
        read(&mut gen, 0);
        gen.groupby_agg(
            1,
            28,
            0,
            &["age_group".into()],
            &[dataframe::AggSpec {
                output: "n".into(),
                input: "race".into(),
                func: dataframe::AggFunc::Count,
            }],
        )
        .unwrap();
        let body = &gen.container.entries()[1].body;
        assert!(body.contains("array_agg(\"patients_20_mlinid0_ctid\")"));
        let q = gen.histogram_select(1, "race").unwrap();
        assert!(q.contains("unnest("), "{q}");
    }

    #[test]
    fn join_carries_both_ctid_sets() {
        let mut gen = SqlGen::new();
        read(&mut gen, 0);
        gen.read_csv(
            1,
            23,
            "histories.csv",
            &["smoker".into(), "ssn".into()],
            &[DataType::Text, DataType::Text],
            &[true, false],
            Some("?"),
        );
        gen.join(2, 27, 0, 1, &["ssn".into()]).unwrap();
        let te = gen.table_expr(2).unwrap();
        assert_eq!(te.ctids.len(), 2);
        let body = &gen.container.entries()[2].body;
        assert!(body.contains("INNER JOIN"));
        assert!(body.contains("tb1.\"ssn\" = tb2.\"ssn\""));
    }

    #[test]
    fn nullable_join_keys_use_null_safe_predicate() {
        let mut gen = SqlGen::new();
        gen.read_csv(
            0,
            1,
            "a.csv",
            &["k".into()],
            &[DataType::Text],
            &[true],
            None,
        );
        gen.read_csv(
            1,
            2,
            "b.csv",
            &["k".into()],
            &[DataType::Text],
            &[false],
            None,
        );
        gen.join(2, 3, 0, 1, &["k".into()]).unwrap();
        let body = &gen.container.entries()[2].body;
        assert!(body.contains("IS NULL AND"), "{body}");
    }

    #[test]
    fn set_item_renders_condensed_projection() {
        let mut gen = SqlGen::new();
        read(&mut gen, 0);
        let expr = SExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(SExpr::Col("race".into())),
            right: Box::new(SExpr::Lit(Value::text("m"))),
        };
        gen.set_item(1, 31, 0, "label", &expr).unwrap();
        let body = &gen.container.entries()[1].body;
        assert!(body.contains("AS \"label\""));
        let te = gen.table_expr(1).unwrap();
        assert_eq!(te.col_type("label"), Some(&DataType::Bool));
    }

    #[test]
    fn replace_translates_to_anchored_regex() {
        let mut gen = SqlGen::new();
        read(&mut gen, 0);
        gen.replace(1, 30, 0, &Value::text("Medium"), &Value::text("Low"))
            .unwrap();
        let body = &gen.container.entries()[1].body;
        assert!(body.contains("REGEXP_REPLACE(\"race\", '^Medium$', 'Low')"));
    }

    #[test]
    fn split_parts_partition_on_ctid_hash() {
        let mut gen = SqlGen::new();
        read(&mut gen, 0);
        gen.split(1, 40, 0, SplitPart::Train, 25, 7).unwrap();
        gen.split(2, 40, 0, SplitPart::Test, 25, 7).unwrap();
        let train = &gen.container.entries()[1].body;
        let test = &gen.container.entries()[2].body;
        assert!(train.contains(">= 25"));
        assert!(test.contains("< 25"));
        assert!(train.contains("2654435761"));
    }

    #[test]
    fn histogram_of_unknown_column_is_none() {
        let mut gen = SqlGen::new();
        read(&mut gen, 0);
        assert!(gen.histogram_select(0, "no_such_column").is_none());
    }

    #[test]
    fn regex_escape() {
        assert_eq!(escape_regex_literal("a.b"), "a\\.b");
        assert_eq!(escape_regex_literal("it's"), "it''s");
    }
}
