//! Pipeline capture: an abstract interpreter over the parsed Python AST.
//!
//! The original mlinspect intercepts pandas/sklearn calls by monkey-patching
//! a live interpreter. This module replays the same call stream statically:
//! it walks the straight-line pipeline AST, tracks every pandas/sklearn
//! "dummy object" a statement produces, and emits one [`OpKind`] per
//! data-changing call. The result is the operator [`Dag`] both backends
//! execute.

use crate::dag::{
    CtStep, Dag, ImputeKind, ModelKind, NodeId, OpKind, SExpr, SplitPart, TransformerKind,
};
use crate::error::{MlError, Result};
use etypes::Value;
use pyparser::{Arg, BinOp, Expr, Module, Stmt, UnaryOp};
use std::collections::HashMap;

/// The result of capturing a pipeline.
#[derive(Debug, Clone, Default)]
pub struct Captured {
    /// The operator DAG, in execution order.
    pub dag: Dag,
    /// CSV files the pipeline reads (resolved path strings).
    pub files: Vec<String>,
    /// Nodes whose results the user printed/returned (kept alive; everything
    /// else may be skipped by backends if unused, §6.1).
    pub observed: Vec<NodeId>,
}

/// Capture a pipeline source string.
pub fn capture(source: &str) -> Result<Captured> {
    let module: Module = pyparser::parse(source)?;
    let mut cap = Capture {
        dag: Dag::default(),
        env: HashMap::new(),
        files: Vec::new(),
        observed: Vec::new(),
        pipelines: Vec::new(),
        seed: 0,
    };
    cap.run(&module)?;
    Ok(Captured {
        dag: cap.dag,
        files: cap.files,
        observed: cap.observed,
    })
}

/// Capture with an explicit seed for the stochastic steps (train/test split,
/// model init). Table 5's five runs vary this.
pub fn capture_with_seed(source: &str, seed: u64) -> Result<Captured> {
    let module: Module = pyparser::parse(source)?;
    let mut cap = Capture {
        dag: Dag::default(),
        env: HashMap::new(),
        files: Vec::new(),
        observed: Vec::new(),
        pipelines: Vec::new(),
        seed,
    };
    cap.run(&module)?;
    Ok(Captured {
        dag: cap.dag,
        files: cap.files,
        observed: cap.observed,
    })
}

/// A pipeline object (`sklearn.pipeline.Pipeline` ending in an estimator).
#[derive(Debug, Clone)]
struct PipelineState {
    steps: Vec<CtStep>,
    model: ModelKind,
    fitted: Option<(NodeId, NodeId)>, // (feature-transform node, model-fit node)
}

/// The "dummy objects" flowing through the interpreted pipeline.
#[derive(Debug, Clone)]
enum PyObj {
    /// A frame-producing DAG node output.
    Frame(NodeId),
    /// A lazy column expression over one frame.
    SeriesExpr { frame: NodeId, expr: SExpr },
    /// `frame.groupby(keys)` awaiting `.agg`.
    GroupBy { frame: NodeId, keys: Vec<String> },
    /// Plain Python scalar.
    Scalar(Value),
    /// Python list (of anything).
    List(Vec<PyObj>),
    /// Python tuple.
    Tuple(Vec<PyObj>),
    /// A transformer chain (single transformer or Pipeline of transformers).
    Transformer(Vec<TransformerKind>),
    /// `ColumnTransformer(...)`.
    ColumnTransformer(Vec<CtStep>),
    /// An unfitted estimator.
    Model(ModelKind),
    /// A Pipeline ending in an estimator, by id into the pipelines table
    /// (identity matters: `p.fit(...)` mutates the shared object).
    MlPipeline(usize),
    /// Imported module alias (`pd`, `os`, ...). The payload documents
    /// provenance for debugging dumps.
    Module(#[allow(dead_code)] String),
    /// `None` / ignored results.
    NoneObj,
}

struct Capture {
    dag: Dag,
    env: HashMap<String, PyObj>,
    files: Vec<String>,
    observed: Vec<NodeId>,
    pipelines: Vec<PipelineState>,
    seed: u64,
}

impl Capture {
    fn run(&mut self, module: &Module) -> Result<()> {
        for stmt in &module.stmts {
            match stmt {
                Stmt::Import {
                    names,
                    module,
                    is_from,
                    ..
                } => {
                    if *is_from {
                        for (name, alias) in names {
                            let bound = alias.clone().unwrap_or_else(|| name.clone());
                            self.env.insert(bound, PyObj::Module(name.clone()));
                        }
                    } else {
                        for (name, alias) in names {
                            let bound = alias
                                .clone()
                                .unwrap_or_else(|| name.split('.').next().unwrap_or(name).into());
                            self.env.insert(bound, PyObj::Module(module.clone()));
                        }
                    }
                }
                Stmt::Assign {
                    line,
                    targets,
                    value,
                } => self.assign(*line, targets, value)?,
                Stmt::ExprStmt { line, value } => {
                    let obj = self.eval(*line, value)?;
                    if let PyObj::Frame(id) = obj {
                        self.observed.push(id);
                    }
                }
            }
        }
        Ok(())
    }

    fn assign(&mut self, line: usize, targets: &[Expr], value: &Expr) -> Result<()> {
        let rhs = self.eval(line, value)?;
        match targets {
            [Expr::Name(name)] => {
                self.env.insert(name.clone(), rhs);
            }
            // frame['col'] = expr
            [Expr::Subscript { value: recv, index }] => {
                let target = self.eval(line, recv)?;
                let PyObj::Frame(frame) = target else {
                    return Err(MlError::unsupported(
                        line,
                        "subscript assignment on non-frame",
                    ));
                };
                let Expr::Str(column) = &**index else {
                    return Err(MlError::unsupported(
                        line,
                        "subscript assignment with non-string key",
                    ));
                };
                let expr = self.to_sexpr(line, frame, &rhs)?;
                let new_id = self.dag.push(
                    line,
                    OpKind::SetItem {
                        input: frame,
                        column: column.clone(),
                        expr,
                    },
                );
                self.rebind_frame(frame, new_id);
            }
            // a, b = train_test_split(...)
            many if many.len() > 1 => {
                let items = match rhs {
                    PyObj::Tuple(items) | PyObj::List(items) => items,
                    _ => {
                        return Err(MlError::capture(
                            line,
                            "tuple assignment from non-tuple value".to_string(),
                        ))
                    }
                };
                if items.len() != many.len() {
                    return Err(MlError::capture(
                        line,
                        format!(
                            "cannot unpack {} values into {} targets",
                            items.len(),
                            many.len()
                        ),
                    ));
                }
                for (t, v) in many.iter().zip(items) {
                    let Expr::Name(name) = t else {
                        return Err(MlError::unsupported(line, "complex unpack target"));
                    };
                    self.env.insert(name.clone(), v);
                }
            }
            _ => return Err(MlError::unsupported(line, "assignment target")),
        }
        Ok(())
    }

    /// In-place pandas mutation: every binding of the old frame now refers to
    /// the new node.
    fn rebind_frame(&mut self, old: NodeId, new: NodeId) {
        for obj in self.env.values_mut() {
            if let PyObj::Frame(id) = obj {
                if *id == old {
                    *id = new;
                }
            }
        }
    }

    fn eval(&mut self, line: usize, expr: &Expr) -> Result<PyObj> {
        match expr {
            Expr::Name(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| MlError::capture(line, format!("undefined name '{n}'"))),
            Expr::Int(i) => Ok(PyObj::Scalar(Value::Int(*i))),
            Expr::Float(f) => Ok(PyObj::Scalar(Value::Float(*f))),
            Expr::Str(s) => Ok(PyObj::Scalar(Value::text(s.clone()))),
            Expr::Bool(b) => Ok(PyObj::Scalar(Value::Bool(*b))),
            Expr::NoneLit => Ok(PyObj::NoneObj),
            Expr::List(items) => Ok(PyObj::List(
                items
                    .iter()
                    .map(|e| self.eval(line, e))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Expr::Tuple(items) => Ok(PyObj::Tuple(
                items
                    .iter()
                    .map(|e| self.eval(line, e))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Expr::Dict(_) => Err(MlError::unsupported(line, "dict literals")),
            Expr::Subscript { value, index } => {
                let recv = self.eval(line, value)?;
                self.subscript(line, recv, index)
            }
            Expr::Attribute { .. } => {
                // Bare attribute access (no call): tolerate module chains.
                Ok(PyObj::NoneObj)
            }
            Expr::Call { func, args } => self.call(line, func, args),
            Expr::Binary { op, left, right } => {
                let l = self.eval(line, left)?;
                let r = self.eval(line, right)?;
                self.binary(line, *op, l, r)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(line, operand)?;
                self.unary(line, *op, v)
            }
        }
    }

    fn subscript(&mut self, line: usize, recv: PyObj, index: &Expr) -> Result<PyObj> {
        let PyObj::Frame(frame) = recv else {
            return Err(MlError::unsupported(line, "subscript on non-frame"));
        };
        match index {
            // Projection to a series.
            Expr::Str(col) => Ok(PyObj::SeriesExpr {
                frame,
                expr: SExpr::Col(col.clone()),
            }),
            // Projection to a frame.
            Expr::List(items) => {
                let columns = items
                    .iter()
                    .map(|e| match e {
                        Expr::Str(s) => Ok(s.clone()),
                        _ => Err(MlError::unsupported(line, "non-string projection list")),
                    })
                    .collect::<Result<Vec<_>>>()?;
                let id = self.dag.push(
                    line,
                    OpKind::Project {
                        input: frame,
                        columns,
                    },
                );
                Ok(PyObj::Frame(id))
            }
            // Selection by boolean mask.
            other => {
                let mask = self.eval(line, other)?;
                let condition = self.to_sexpr(line, frame, &mask)?;
                let id = self.dag.push(
                    line,
                    OpKind::Filter {
                        input: frame,
                        condition,
                    },
                );
                Ok(PyObj::Frame(id))
            }
        }
    }

    fn binary(&mut self, line: usize, op: BinOp, l: PyObj, r: PyObj) -> Result<PyObj> {
        match (&l, &r) {
            (PyObj::Scalar(a), PyObj::Scalar(b)) => fold_scalars(op, a, b)
                .map(PyObj::Scalar)
                .ok_or_else(|| MlError::capture(line, format!("cannot evaluate {a} {op} {b}"))),
            (PyObj::SeriesExpr { frame, .. }, _) | (_, PyObj::SeriesExpr { frame, .. }) => {
                let frame = *frame;
                let le = self.to_sexpr(line, frame, &l)?;
                let re = self.to_sexpr(line, frame, &r)?;
                Ok(PyObj::SeriesExpr {
                    frame,
                    expr: SExpr::Binary {
                        op,
                        left: Box::new(le),
                        right: Box::new(re),
                    },
                })
            }
            _ => Err(MlError::unsupported(line, format!("binary {op}"))),
        }
    }

    fn unary(&mut self, line: usize, op: UnaryOp, v: PyObj) -> Result<PyObj> {
        match v {
            PyObj::Scalar(Value::Int(i)) if op == UnaryOp::Neg => Ok(PyObj::Scalar(Value::Int(-i))),
            PyObj::Scalar(Value::Float(f)) if op == UnaryOp::Neg => {
                Ok(PyObj::Scalar(Value::Float(-f)))
            }
            PyObj::SeriesExpr { frame, expr } => Ok(PyObj::SeriesExpr {
                frame,
                expr: SExpr::Unary {
                    op,
                    operand: Box::new(expr),
                },
            }),
            _ => Err(MlError::unsupported(line, "unary operator")),
        }
    }

    /// Convert an object to a column expression over `frame`.
    fn to_sexpr(&self, line: usize, frame: NodeId, obj: &PyObj) -> Result<SExpr> {
        match obj {
            PyObj::Scalar(v) => Ok(SExpr::Lit(v.clone())),
            PyObj::SeriesExpr { frame: f, expr } => {
                if *f != frame {
                    return Err(MlError::unsupported(
                        line,
                        "row-wise combination of different frames (add a merge)",
                    ));
                }
                Ok(expr.clone())
            }
            _ => Err(MlError::unsupported(line, "value in column expression")),
        }
    }

    // ---- calls -------------------------------------------------------------

    fn call(&mut self, line: usize, func: &Expr, args: &[Arg]) -> Result<PyObj> {
        // Attribute call: receiver.method(args).
        if let Expr::Attribute { value, attr } = func {
            // Module functions (pd.read_csv, os.path.join, ...).
            if let Some(path) = func.dotted_path() {
                if let Some(result) = self.module_call(line, &path, args)? {
                    return Ok(result);
                }
            }
            let recv = self.eval(line, value)?;
            return self.method_call(line, recv, attr, args);
        }
        // Plain function call.
        let Expr::Name(name) = func else {
            return Err(MlError::unsupported(line, "computed callee"));
        };
        self.function_call(line, name, args)
    }

    /// Handle fully qualified module calls; returns Ok(None) when the path is
    /// not a module function (so it falls through to a method call).
    fn module_call(&mut self, line: usize, path: &str, args: &[Arg]) -> Result<Option<PyObj>> {
        let is_module_root = path
            .split('.')
            .next()
            .map(|root| {
                matches!(self.env.get(root), Some(PyObj::Module(_)))
                    // Well-known module roots work without import statements
                    // (snippets and tests often omit them).
                    || matches!(root, "pd" | "pandas" | "os" | "np" | "sklearn")
            })
            .unwrap_or(false);
        if !is_module_root {
            return Ok(None);
        }
        let tail = path.split('.').next_back().unwrap_or(path);
        match tail {
            "read_csv" => Ok(Some(self.read_csv(line, args)?)),
            "join" => {
                // os.path.join: concatenate path segments.
                let mut parts = Vec::new();
                for a in args {
                    let v = self.eval(line, &a.value)?;
                    parts.push(self.stringify(line, &v)?);
                }
                Ok(Some(PyObj::Scalar(Value::text(
                    parts
                        .iter()
                        .filter(|p| !p.is_empty())
                        .cloned()
                        .collect::<Vec<_>>()
                        .join("/"),
                ))))
            }
            _ => Err(MlError::unsupported(line, format!("module call {path}"))),
        }
    }

    fn stringify(&self, line: usize, v: &PyObj) -> Result<String> {
        match v {
            PyObj::Scalar(Value::Text(s)) => Ok(s.clone()),
            PyObj::Scalar(other) => Ok(other.to_string()),
            _ => Err(MlError::unsupported(line, "str() of non-scalar")),
        }
    }

    fn function_call(&mut self, line: usize, name: &str, args: &[Arg]) -> Result<PyObj> {
        match name {
            "read_csv" => self.read_csv(line, args),
            "print" => {
                for a in args {
                    let v = self.eval(line, &a.value)?;
                    if let PyObj::Frame(id) = v {
                        self.observed.push(id);
                    }
                }
                Ok(PyObj::NoneObj)
            }
            "str" => {
                let v = self.eval(line, &args[0].value)?;
                Ok(PyObj::Scalar(Value::text(self.stringify(line, &v)?)))
            }
            "get_project_root" => Ok(PyObj::Scalar(Value::text(""))),
            "label_binarize" => self.label_binarize(line, args),
            "train_test_split" => self.train_test_split(line, args),
            "SimpleImputer" => {
                let strategy = self
                    .kwarg_str(line, args, "strategy")?
                    .unwrap_or_else(|| "mean".into());
                let kind = match strategy.as_str() {
                    "mean" => ImputeKind::Mean,
                    "median" => ImputeKind::Median,
                    "most_frequent" => ImputeKind::MostFrequent,
                    other => {
                        return Err(MlError::unsupported(
                            line,
                            format!("SimpleImputer strategy '{other}'"),
                        ))
                    }
                };
                Ok(PyObj::Transformer(vec![TransformerKind::SimpleImputer(
                    kind,
                )]))
            }
            "OneHotEncoder" => Ok(PyObj::Transformer(vec![TransformerKind::OneHotEncoder])),
            "StandardScaler" => Ok(PyObj::Transformer(vec![TransformerKind::StandardScaler])),
            "KBinsDiscretizer" => {
                let k = self.kwarg_int(line, args, "n_bins")?.unwrap_or(5) as usize;
                Ok(PyObj::Transformer(vec![TransformerKind::KBinsDiscretizer(
                    k,
                )]))
            }
            "Binarizer" => {
                let t = self.kwarg_f64(line, args, "threshold")?.unwrap_or(0.0);
                Ok(PyObj::Transformer(vec![TransformerKind::Binarizer(t)]))
            }
            "LogisticRegression" | "SGDClassifier" | "DecisionTreeClassifier" => {
                Ok(PyObj::Model(ModelKind::LogisticRegression))
            }
            "KerasClassifier" | "MLPClassifier" => {
                let epochs = self.kwarg_int(line, args, "epochs")?.unwrap_or(30) as usize;
                Ok(PyObj::Model(ModelKind::NeuralNetwork {
                    hidden: 16,
                    epochs,
                }))
            }
            "Pipeline" => self.make_pipeline(line, args),
            "ColumnTransformer" => self.make_column_transformer(line, args),
            other => Err(MlError::unsupported(line, format!("function {other}()"))),
        }
    }

    fn method_call(
        &mut self,
        line: usize,
        recv: PyObj,
        method: &str,
        args: &[Arg],
    ) -> Result<PyObj> {
        match (&recv, method) {
            (PyObj::Frame(left), "merge") => {
                let right = match self.eval(line, &args[0].value)? {
                    PyObj::Frame(id) => id,
                    _ => return Err(MlError::capture(line, "merge with non-frame".to_string())),
                };
                let on = self
                    .kwarg_str_list(line, args, "on")?
                    .ok_or_else(|| MlError::unsupported(line, "merge without on="))?;
                let id = self.dag.push(
                    line,
                    OpKind::Join {
                        left: *left,
                        right,
                        on,
                    },
                );
                Ok(PyObj::Frame(id))
            }
            (PyObj::Frame(frame), "groupby") => {
                let keys = match self.eval(line, &args[0].value)? {
                    PyObj::Scalar(Value::Text(k)) => vec![k],
                    PyObj::List(items) => items
                        .into_iter()
                        .map(|i| match i {
                            PyObj::Scalar(Value::Text(s)) => Ok(s),
                            _ => Err(MlError::unsupported(line, "non-string groupby key")),
                        })
                        .collect::<Result<Vec<_>>>()?,
                    _ => return Err(MlError::unsupported(line, "groupby key")),
                };
                Ok(PyObj::GroupBy {
                    frame: *frame,
                    keys,
                })
            }
            (PyObj::GroupBy { frame, keys }, "agg") => {
                let mut aggs = Vec::new();
                for a in args {
                    let Some(out_name) = &a.name else {
                        return Err(MlError::unsupported(line, "positional agg argument"));
                    };
                    let PyObj::Tuple(pair) = self.eval(line, &a.value)? else {
                        return Err(MlError::unsupported(line, "agg spec must be a tuple"));
                    };
                    let [PyObj::Scalar(Value::Text(input)), PyObj::Scalar(Value::Text(fname))] =
                        &pair[..]
                    else {
                        return Err(MlError::unsupported(line, "agg spec contents"));
                    };
                    let func = dataframe::AggFunc::parse(fname).ok_or_else(|| {
                        MlError::unsupported(line, format!("aggregation '{fname}'"))
                    })?;
                    aggs.push(dataframe::AggSpec {
                        output: out_name.clone(),
                        input: input.clone(),
                        func,
                    });
                }
                let id = self.dag.push(
                    line,
                    OpKind::GroupByAgg {
                        input: *frame,
                        keys: keys.clone(),
                        aggs,
                    },
                );
                Ok(PyObj::Frame(id))
            }
            (PyObj::Frame(frame), "dropna") => {
                let id = self.dag.push(line, OpKind::DropNa { input: *frame });
                Ok(PyObj::Frame(id))
            }
            (PyObj::Frame(frame), "fillna") => {
                let value = self.scalar_arg(line, args, 0)?;
                let id = self.dag.push(
                    line,
                    OpKind::FillNa {
                        input: *frame,
                        value,
                    },
                );
                Ok(PyObj::Frame(id))
            }
            (PyObj::Frame(frame), "head") => {
                let n = match args.first() {
                    None => 5, // pandas default
                    Some(a) => match self.eval(line, &a.value)? {
                        PyObj::Scalar(v) => v.as_i64().map_err(MlError::Value)?.max(0) as u64,
                        _ => return Err(MlError::unsupported(line, "head() argument")),
                    },
                };
                let id = self.dag.push(line, OpKind::Head { input: *frame, n });
                Ok(PyObj::Frame(id))
            }
            (PyObj::Frame(frame), "sort_values") => {
                let by = self
                    .kwarg_str_list(line, args, "by")?
                    .ok_or_else(|| MlError::unsupported(line, "sort_values without by="))?;
                let ascending = match self.kwarg(args, "ascending") {
                    Some(Expr::Bool(b)) => *b,
                    None => true,
                    Some(_) => return Err(MlError::unsupported(line, "ascending= value")),
                };
                let id = self.dag.push(
                    line,
                    OpKind::SortValues {
                        input: *frame,
                        by,
                        ascending,
                    },
                );
                Ok(PyObj::Frame(id))
            }
            (PyObj::Frame(frame), "drop") => {
                let columns = self
                    .kwarg_str_list(line, args, "columns")?
                    .ok_or_else(|| MlError::unsupported(line, "drop without columns="))?;
                let id = self.dag.push(
                    line,
                    OpKind::DropColumns {
                        input: *frame,
                        columns,
                    },
                );
                Ok(PyObj::Frame(id))
            }
            (PyObj::Frame(frame), "replace") => {
                let from = self.scalar_arg(line, args, 0)?;
                let to = self.scalar_arg(line, args, 1)?;
                let id = self.dag.push(
                    line,
                    OpKind::Replace {
                        input: *frame,
                        from,
                        to,
                    },
                );
                Ok(PyObj::Frame(id))
            }
            (PyObj::SeriesExpr { frame, expr }, "isin") => {
                let list = match self.eval(line, &args[0].value)? {
                    PyObj::List(items) => items
                        .into_iter()
                        .map(|i| match i {
                            PyObj::Scalar(v) => Ok(v),
                            _ => Err(MlError::unsupported(line, "non-scalar isin entry")),
                        })
                        .collect::<Result<Vec<_>>>()?,
                    _ => return Err(MlError::unsupported(line, "isin argument")),
                };
                Ok(PyObj::SeriesExpr {
                    frame: *frame,
                    expr: SExpr::IsIn {
                        expr: Box::new(expr.clone()),
                        list,
                    },
                })
            }
            // label array helpers that are identity for our representation.
            (PyObj::Frame(_), "ravel") | (PyObj::SeriesExpr { .. }, "ravel") => Ok(recv),
            (PyObj::MlPipeline(pid), "fit") => self.pipeline_fit(line, *pid, args),
            (PyObj::MlPipeline(pid), "score") => self.pipeline_score(line, *pid, args),
            (_, other) => Err(MlError::unsupported(line, format!(".{other}()"))),
        }
    }

    fn read_csv(&mut self, line: usize, args: &[Arg]) -> Result<PyObj> {
        let path_obj = self.eval(line, &args[0].value)?;
        let file = self.stringify(line, &path_obj)?;
        let na_values = self.kwarg_str(line, args, "na_values")?;
        self.files.push(file.clone());
        let id = self.dag.push(line, OpKind::ReadCsv { file, na_values });
        Ok(PyObj::Frame(id))
    }

    fn label_binarize(&mut self, line: usize, args: &[Arg]) -> Result<PyObj> {
        let series = self.eval(line, &args[0].value)?;
        let PyObj::SeriesExpr {
            frame,
            expr: SExpr::Col(column),
        } = series
        else {
            return Err(MlError::unsupported(
                line,
                "label_binarize over a non-column expression",
            ));
        };
        let classes = self
            .kwarg_value_list(line, args, "classes")?
            .ok_or_else(|| MlError::unsupported(line, "label_binarize without classes="))?;
        let [a, b] = &classes[..] else {
            return Err(MlError::unsupported(
                line,
                "label_binarize needs exactly 2 classes",
            ));
        };
        let id = self.dag.push(
            line,
            OpKind::LabelBinarize {
                input: frame,
                column,
                classes: [a.clone(), b.clone()],
            },
        );
        Ok(PyObj::Frame(id))
    }

    fn train_test_split(&mut self, line: usize, args: &[Arg]) -> Result<PyObj> {
        let PyObj::Frame(input) = self.eval(line, &args[0].value)? else {
            return Err(MlError::capture(line, "split of non-frame".to_string()));
        };
        let test_percent = self
            .kwarg_f64(line, args, "test_size")?
            .map(|f| (f * 100.0).round() as u8)
            .unwrap_or(25);
        let seed = self
            .kwarg_int(line, args, "random_state")?
            .map(|i| i as u64)
            .unwrap_or(self.seed);
        let train = self.dag.push(
            line,
            OpKind::Split {
                input,
                part: SplitPart::Train,
                test_percent,
                seed,
            },
        );
        let test = self.dag.push(
            line,
            OpKind::Split {
                input,
                part: SplitPart::Test,
                test_percent,
                seed,
            },
        );
        Ok(PyObj::Tuple(vec![PyObj::Frame(train), PyObj::Frame(test)]))
    }

    fn make_pipeline(&mut self, line: usize, args: &[Arg]) -> Result<PyObj> {
        let PyObj::List(entries) = self.eval(line, &args[0].value)? else {
            return Err(MlError::unsupported(line, "Pipeline argument"));
        };
        let mut transformer_chain: Vec<TransformerKind> = Vec::new();
        let mut ct_steps: Option<Vec<CtStep>> = None;
        let mut model: Option<ModelKind> = None;
        for entry in entries {
            let PyObj::Tuple(pair) = entry else {
                return Err(MlError::unsupported(line, "Pipeline step"));
            };
            let [_, step] = &pair[..] else {
                return Err(MlError::unsupported(line, "Pipeline step arity"));
            };
            match step {
                PyObj::Transformer(ts) => transformer_chain.extend(ts.iter().cloned()),
                PyObj::ColumnTransformer(steps) => ct_steps = Some(steps.clone()),
                PyObj::Model(m) => model = Some(m.clone()),
                _ => return Err(MlError::unsupported(line, "Pipeline step object")),
            }
        }
        match (ct_steps, model) {
            // A Pipeline of plain transformers: itself a transformer chain.
            (None, None) => Ok(PyObj::Transformer(transformer_chain)),
            // Featurisation + estimator: a trainable pipeline.
            (Some(steps), Some(m)) => {
                let pid = self.pipelines.len();
                self.pipelines.push(PipelineState {
                    steps,
                    model: m,
                    fitted: None,
                });
                Ok(PyObj::MlPipeline(pid))
            }
            (None, Some(m)) => {
                // Transformer chain + estimator without ColumnTransformer is
                // not used by the paper's pipelines, but a chain-less model
                // pipeline appears in tests.
                if transformer_chain.is_empty() {
                    let pid = self.pipelines.len();
                    self.pipelines.push(PipelineState {
                        steps: Vec::new(),
                        model: m,
                        fitted: None,
                    });
                    Ok(PyObj::MlPipeline(pid))
                } else {
                    Err(MlError::unsupported(
                        line,
                        "Pipeline mixing bare transformers with an estimator",
                    ))
                }
            }
            (Some(_), None) => Err(MlError::unsupported(
                line,
                "Pipeline with ColumnTransformer but no estimator",
            )),
        }
    }

    fn make_column_transformer(&mut self, line: usize, args: &[Arg]) -> Result<PyObj> {
        // transformers= may be positional or keyword.
        let arg = args
            .iter()
            .find(|a| a.name.as_deref() == Some("transformers"))
            .or_else(|| args.iter().find(|a| a.name.is_none()))
            .ok_or_else(|| MlError::unsupported(line, "ColumnTransformer without transformers"))?;
        let PyObj::List(entries) = self.eval(line, &arg.value)? else {
            return Err(MlError::unsupported(line, "ColumnTransformer argument"));
        };
        let mut steps = Vec::new();
        for entry in entries {
            let PyObj::Tuple(triple) = entry else {
                return Err(MlError::unsupported(line, "ColumnTransformer entry"));
            };
            let [PyObj::Scalar(Value::Text(name)), transformer, PyObj::List(cols)] = &triple[..]
            else {
                return Err(MlError::unsupported(line, "ColumnTransformer entry shape"));
            };
            let chain = match transformer {
                PyObj::Transformer(ts) => ts.clone(),
                _ => {
                    return Err(MlError::unsupported(
                        line,
                        "ColumnTransformer step must be a transformer",
                    ))
                }
            };
            let columns = cols
                .iter()
                .map(|c| match c {
                    PyObj::Scalar(Value::Text(s)) => Ok(s.clone()),
                    _ => Err(MlError::unsupported(line, "non-string column name")),
                })
                .collect::<Result<Vec<_>>>()?;
            steps.push(CtStep {
                name: name.clone(),
                steps: chain,
                columns,
            });
        }
        Ok(PyObj::ColumnTransformer(steps))
    }

    fn labels_from(&mut self, line: usize, arg: &Arg) -> Result<(NodeId, String)> {
        match self.eval(line, &arg.value)? {
            PyObj::SeriesExpr {
                frame,
                expr: SExpr::Col(c),
            } => Ok((frame, c)),
            // label_binarize output: a one-column frame named 'label'.
            PyObj::Frame(id) => Ok((id, "label".to_string())),
            _ => Err(MlError::unsupported(line, "label argument")),
        }
    }

    fn pipeline_fit(&mut self, line: usize, pid: usize, args: &[Arg]) -> Result<PyObj> {
        let PyObj::Frame(x) = self.eval(line, &args[0].value)? else {
            return Err(MlError::capture(
                line,
                "fit on non-frame features".to_string(),
            ));
        };
        let labels = self.labels_from(line, &args[1])?;
        let state = self.pipelines[pid].clone();
        let feat = self.dag.push(
            line,
            OpKind::FeatureTransform {
                input: x,
                steps: state.steps.clone(),
                fit_node: None,
            },
        );
        let fit = self.dag.push(
            line,
            OpKind::ModelFit {
                features: feat,
                labels,
                model: state.model.clone(),
                seed: self.seed,
            },
        );
        self.pipelines[pid].fitted = Some((feat, fit));
        Ok(PyObj::MlPipeline(pid))
    }

    fn pipeline_score(&mut self, line: usize, pid: usize, args: &[Arg]) -> Result<PyObj> {
        let PyObj::Frame(x) = self.eval(line, &args[0].value)? else {
            return Err(MlError::capture(
                line,
                "score on non-frame features".to_string(),
            ));
        };
        let labels = self.labels_from(line, &args[1])?;
        let state = self.pipelines[pid].clone();
        let Some((fit_feat, fit_model)) = state.fitted else {
            return Err(MlError::capture(line, "score() before fit()".to_string()));
        };
        let feat = self.dag.push(
            line,
            OpKind::FeatureTransform {
                input: x,
                steps: state.steps.clone(),
                fit_node: Some(fit_feat),
            },
        );
        let score = self.dag.push(
            line,
            OpKind::ModelScore {
                model: fit_model,
                features: feat,
                labels,
            },
        );
        self.observed.push(score);
        Ok(PyObj::NoneObj)
    }

    // ---- argument helpers -----------------------------------------------------

    fn kwarg<'b>(&self, args: &'b [Arg], name: &str) -> Option<&'b Expr> {
        args.iter()
            .find(|a| a.name.as_deref() == Some(name))
            .map(|a| &a.value)
    }

    fn kwarg_str(&mut self, line: usize, args: &[Arg], name: &str) -> Result<Option<String>> {
        match self.kwarg(args, name) {
            None => Ok(None),
            Some(Expr::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(MlError::unsupported(line, format!("{name}= value"))),
        }
    }

    fn kwarg_int(&mut self, line: usize, args: &[Arg], name: &str) -> Result<Option<i64>> {
        match self.kwarg(args, name) {
            None => Ok(None),
            Some(Expr::Int(i)) => Ok(Some(*i)),
            Some(_) => Err(MlError::unsupported(line, format!("{name}= value"))),
        }
    }

    fn kwarg_f64(&mut self, line: usize, args: &[Arg], name: &str) -> Result<Option<f64>> {
        match self.kwarg(args, name) {
            None => Ok(None),
            Some(Expr::Float(f)) => Ok(Some(*f)),
            Some(Expr::Int(i)) => Ok(Some(*i as f64)),
            Some(_) => Err(MlError::unsupported(line, format!("{name}= value"))),
        }
    }

    fn kwarg_str_list(
        &mut self,
        line: usize,
        args: &[Arg],
        name: &str,
    ) -> Result<Option<Vec<String>>> {
        let Some(expr) = self.kwarg(args, name) else {
            return Ok(None);
        };
        let expr = expr.clone();
        match self.eval(line, &expr)? {
            PyObj::Scalar(Value::Text(s)) => Ok(Some(vec![s])),
            PyObj::List(items) => Ok(Some(
                items
                    .into_iter()
                    .map(|i| match i {
                        PyObj::Scalar(Value::Text(s)) => Ok(s),
                        _ => Err(MlError::unsupported(line, "non-string list entry")),
                    })
                    .collect::<Result<Vec<_>>>()?,
            )),
            _ => Err(MlError::unsupported(line, format!("{name}= value"))),
        }
    }

    fn kwarg_value_list(
        &mut self,
        line: usize,
        args: &[Arg],
        name: &str,
    ) -> Result<Option<Vec<Value>>> {
        let Some(expr) = self.kwarg(args, name) else {
            return Ok(None);
        };
        let expr = expr.clone();
        match self.eval(line, &expr)? {
            PyObj::List(items) => Ok(Some(
                items
                    .into_iter()
                    .map(|i| match i {
                        PyObj::Scalar(v) => Ok(v),
                        _ => Err(MlError::unsupported(line, "non-scalar list entry")),
                    })
                    .collect::<Result<Vec<_>>>()?,
            )),
            _ => Err(MlError::unsupported(line, format!("{name}= value"))),
        }
    }

    fn scalar_arg(&mut self, line: usize, args: &[Arg], idx: usize) -> Result<Value> {
        let arg = args
            .get(idx)
            .ok_or_else(|| MlError::capture(line, format!("missing argument {idx}")))?;
        match self.eval(line, &arg.value)? {
            PyObj::Scalar(v) => Ok(v),
            _ => Err(MlError::unsupported(line, "non-scalar argument")),
        }
    }
}

fn fold_scalars(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    let num = |v: &Value| v.as_f64().ok();
    Some(match op {
        BinOp::Add => match (a, b) {
            (Value::Text(x), Value::Text(y)) => Value::text(format!("{x}{y}")),
            _ => num_result(num(a)? + num(b)?),
        },
        BinOp::Sub => num_result(num(a)? - num(b)?),
        BinOp::Mul => num_result(num(a)? * num(b)?),
        BinOp::Div => Value::Float(num(a)? / num(b)?),
        _ => return None,
    })
}

fn num_result(f: f64) -> Value {
    if f.fract() == 0.0 && f.abs() < 9.0e15 {
        Value::Int(f as i64)
    } else {
        Value::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipelines;

    #[test]
    fn captures_healthcare_pipeline() {
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let labels: Vec<&str> = cap.dag.nodes.iter().map(|n| n.kind.label()).collect();
        // Two reads, two merges, one agg, setitem, projection, selection,
        // split x2, featurisation+fit, featurisation+score.
        assert_eq!(labels.iter().filter(|l| **l == "read_csv").count(), 2);
        assert_eq!(labels.iter().filter(|l| **l == "merge").count(), 2);
        assert!(labels.contains(&"groupby_agg"));
        assert!(labels.contains(&"set_item"));
        assert!(labels.contains(&"projection"));
        assert!(labels.contains(&"selection"));
        assert_eq!(
            labels.iter().filter(|l| **l == "train_test_split").count(),
            2
        );
        assert_eq!(labels.iter().filter(|l| **l == "featurisation").count(), 2);
        assert!(labels.contains(&"model_fit"));
        assert!(labels.contains(&"model_score"));
        assert_eq!(cap.files.len(), 2);
    }

    #[test]
    fn captures_compas_pipeline() {
        let cap = capture(pipelines::COMPAS).unwrap();
        let labels: Vec<&str> = cap.dag.nodes.iter().map(|n| n.kind.label()).collect();
        assert!(labels.contains(&"replace"));
        assert!(labels.contains(&"label_binarize"));
        assert!(labels.contains(&"selection"));
        assert!(labels.contains(&"model_score"));
    }

    #[test]
    fn captures_adult_simple_and_complex() {
        for src in [pipelines::ADULT_SIMPLE, pipelines::ADULT_COMPLEX] {
            let cap = capture(src).unwrap();
            assert!(cap.dag.nodes.iter().any(|n| n.kind.label() == "model_fit"));
        }
    }

    #[test]
    fn setitem_rebinds_variable() {
        let cap = capture(
            "data = pd.read_csv('x.csv')\ndata['b'] = data['a'] + 1\nresult = data.dropna()",
        )
        .unwrap();
        // dropna must consume the SetItem output, not the original read.
        let dropna = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "dropna")
            .unwrap();
        let setitem = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "set_item")
            .unwrap();
        assert_eq!(dropna.kind.inputs(), vec![setitem.id]);
    }

    #[test]
    fn selection_with_compound_condition() {
        let cap =
            capture("t = pd.read_csv('x.csv')\nt = t[(t['d'] <= 30) & (t['d'] >= -30)]").unwrap();
        let filter = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "selection")
            .unwrap();
        let OpKind::Filter { condition, .. } = &filter.kind else {
            panic!()
        };
        assert!(matches!(
            condition,
            SExpr::Binary {
                op: BinOp::BitAnd,
                ..
            }
        ));
    }

    #[test]
    fn cross_frame_series_combination_is_rejected() {
        let err = capture("a = pd.read_csv('a.csv')\nb = pd.read_csv('b.csv')\na['x'] = b['y']")
            .unwrap_err();
        assert!(matches!(err, MlError::Unsupported { .. }));
    }

    #[test]
    fn score_before_fit_is_error() {
        let src = "
p = Pipeline([('m', LogisticRegression())])
t = pd.read_csv('x.csv')
p.score(t, t['y'])
";
        assert!(capture(src).is_err());
    }

    #[test]
    fn undefined_name_reports_line() {
        let err = capture("x = 1\ny = missing_frame.dropna()").unwrap_err();
        let MlError::Capture { line, .. } = err else {
            panic!("{err}")
        };
        assert_eq!(line, 2);
    }

    #[test]
    fn observed_tracks_printed_frames() {
        let cap = capture("t = pd.read_csv('x.csv')\nprint(t)").unwrap();
        assert_eq!(cap.observed.len(), 1);
    }

    #[test]
    fn seeds_flow_into_split_and_fit() {
        let cap = capture_with_seed(pipelines::HEALTHCARE, 17).unwrap();
        let split = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "train_test_split")
            .unwrap();
        let OpKind::Split { seed, .. } = split.kind else {
            panic!()
        };
        assert_eq!(seed, 17);
    }
}
