#![warn(missing_docs)]
//! The paper's primary contribution: inspection and execution of ML
//! preprocessing pipelines in SQL.
//!
//! The flow mirrors the mlinspect architecture with the paper's SQL backend:
//!
//! ```text
//! Python source ──pyparser──▶ AST ──capture──▶ operator DAG
//!      DAG ──backends::pandas──▶ dataframe ops + sklearn      (baseline)
//!      DAG ──backends::sql────▶ sqlgen ─▶ CTE/VIEW SQL ─▶ sqlengine
//!      after every operator: HistogramForColumns over each sensitive column
//!      (restored through the propagated ctid when projected away),
//!      NoBiasIntroducedFor compares ratios against a threshold.
//! ```
//!
//! Quick start:
//!
//! ```
//! use mlinspect::{PipelineInspector, SqlMode};
//! use sqlengine::{Engine, EngineProfile};
//!
//! let source = r#"
//! data = pd.read_csv("toy.csv", na_values='?')
//! data = data[data['age'] > 30]
//! "#;
//! let csv = "age,race\n25,r1\n35,r2\n45,r2\n";
//! let mut engine = Engine::new(EngineProfile::in_memory());
//! let result = PipelineInspector::on_pipeline(source)
//!     .with_file("toy.csv", csv)
//!     .no_bias_introduced_for(&["race"], 0.3)
//!     .execute_in_sql(&mut engine, SqlMode::Cte, false)
//!     .unwrap();
//! assert!(result.check_results.len() == 1);
//! ```

pub mod api;
pub mod backends;
pub mod capture;
pub mod checks;
pub mod dag;
pub mod error;
pub mod inspection;
pub mod pipelines;
pub mod sqlgen;

pub use api::{
    inspect_pipeline_in_sql, InspectionReport, InspectorResult, OpBiasVerdict, PipelineInspector,
    SqlMode,
};
pub use checks::{CheckOutcome, CheckResult};
pub use dag::{Dag, DagNode, OpKind};
pub use error::{MlError, Result};
pub use inspection::{ColumnHistogram, HistogramChange};
