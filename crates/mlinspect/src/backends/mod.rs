//! Execution backends for the captured DAG.
//!
//! * [`pandas`] — the baseline: eager dataframe execution + in-process
//!   sklearn, with mlinspect-style annotation columns for lineage.
//! * [`sql`] — the paper's contribution: every operator becomes a CTE/view
//!   in generated SQL, executed by the `sqlengine` substrate.
//!
//! Both backends consume the same [`crate::dag::Dag`] and produce the same
//! [`RunArtifacts`], which is what the equivalence tests compare.

pub mod pandas;
pub mod sql;

use crate::dag::NodeId;
use crate::error::{MlError, Result};
use crate::inspection::{Inspection, InspectionResults};
use etypes::Value;
use std::collections::HashMap;

/// Prefix of the hidden lineage columns both backends thread through every
/// operator (`__ctid_<read-node-id>`), mirroring the paper's
/// `<view-name>_ctid` convention.
pub const CTID_PREFIX: &str = "__ctid_";

/// Name of the hidden lineage column for a given read node.
pub fn ctid_column(read_node: NodeId) -> String {
    format!("{CTID_PREFIX}{read_node}")
}

/// The deterministic train/test partition both backends share: a tuple goes
/// to the *test* set iff `split_hash(ctid, seed) < test_percent`. The
/// multiplier is Knuth's 2^32 golden-ratio constant; since
/// `gcd(2654435761 mod 100, 100) = 1` the residues cycle through all of
/// 0..100, giving an exact test fraction on contiguous identifiers.
pub fn split_hash(ctid: i64, seed: u64) -> i64 {
    (ctid * 2_654_435_761 + (seed as i64 % 1_000_003)).rem_euclid(100)
}

/// Simulated CPython-side costs of the baseline (same philosophy as the
/// engine profiles' I/O latency: we do not run a Python interpreter, so the
/// per-row interpretation overhead that the paper's SQL off-loading
/// eliminates is charged explicitly, with calibrated constants).
///
/// * `sklearn_nanos_per_cell` — scikit-learn + monkey-patching overhead per
///   transformed cell. mlinspect-patched fit/transform iterates Python-level
///   rows; the paper's §6.2 factors (×40 … ×5·10³ at 10⁶ tuples) imply tens
///   of microseconds per cell.
/// * `inspect_nanos_per_row` — mlinspect's inspection iterators are pure
///   Python generators over every row of every operator output (§6.3).
///
/// Set both to zero to benchmark the raw Rust dataframe instead of the
/// modelled pandas/mlinspect baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineCosts {
    /// Nanoseconds charged per transformed cell in FeatureTransform.
    pub sklearn_nanos_per_cell: u64,
    /// Nanoseconds charged per row whenever a histogram is measured.
    pub inspect_nanos_per_row: u64,
}

impl Default for BaselineCosts {
    fn default() -> Self {
        BaselineCosts {
            sklearn_nanos_per_cell: 50_000,
            inspect_nanos_per_row: 50_000,
        }
    }
}

impl BaselineCosts {
    /// No simulated overhead: the raw Rust substrate.
    pub fn zero() -> BaselineCosts {
        BaselineCosts {
            sklearn_nanos_per_cell: 0,
            inspect_nanos_per_row: 0,
        }
    }

    /// Busy-wait for `units * nanos_per_unit`.
    pub fn charge(nanos_per_unit: u64, units: usize) {
        if nanos_per_unit == 0 || units == 0 {
            return;
        }
        let target = std::time::Duration::from_nanos(nanos_per_unit * units as u64);
        let start = std::time::Instant::now();
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }
}

/// Run options shared by both backends.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Requested inspections.
    pub inspections: Vec<Inspection>,
    /// Keep every operator's full output relation in the artifacts
    /// (equivalence tests); off for benchmarks.
    pub keep_relations: bool,
    /// Force terminal frame outputs to be computed even when no inspection
    /// or training consumes them (benchmarks of preprocessing-only phases:
    /// the SQL backend is lazy, the paper's measurements are not).
    pub force_outputs: bool,
    /// Simulated CPython overhead of the baseline backend.
    pub baseline_costs: BaselineCosts,
}

impl RunConfig {
    /// The sensitive columns of a `HistogramForColumns` inspection, if any.
    pub fn sensitive_columns(&self) -> Vec<String> {
        for i in &self.inspections {
            if let Inspection::HistogramForColumns(cols) = i {
                return cols.clone();
            }
        }
        Vec::new()
    }

    /// Sample size of `RowLineage`, if requested.
    pub fn lineage_k(&self) -> Option<usize> {
        self.inspections.iter().find_map(|i| match i {
            Inspection::RowLineage(k) => Some(*k),
            _ => None,
        })
    }

    /// Sample size of `MaterializeFirstOutputRows`, if requested.
    pub fn first_rows_k(&self) -> Option<usize> {
        self.inspections.iter().find_map(|i| match i {
            Inspection::MaterializeFirstOutputRows(k) => Some(*k),
            _ => None,
        })
    }
}

/// A materialized operator output (visible columns only), used by the
/// equivalence tests and `MaterializeFirstOutputRows`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRelation {
    /// Visible column names.
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<Value>>,
}

impl NodeRelation {
    /// Rows sorted for order-insensitive comparison.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// What a backend run produces.
#[derive(Debug, Clone, Default)]
pub struct RunArtifacts {
    /// Inspection measurements per node.
    pub inspections: InspectionResults,
    /// Accuracy of every `ModelScore` node, in DAG order.
    pub accuracies: Vec<f64>,
    /// Full relations per frame node (only when `keep_relations`).
    pub relations: HashMap<NodeId, NodeRelation>,
    /// Wall-clock per operator, in DAG order (Figure 10's breakdown).
    pub op_timings: Vec<(NodeId, String, std::time::Duration)>,
}

impl RunArtifacts {
    /// The single score of a pipeline that scores exactly once.
    pub fn accuracy(&self) -> Result<f64> {
        match self.accuracies.as_slice() {
            [a] => Ok(*a),
            other => Err(MlError::Internal(format!(
                "expected exactly one model score, found {}",
                other.len()
            ))),
        }
    }
}

/// Labels as f64 0/1 from a value column.
pub fn labels_to_f64(values: &[Value]) -> Result<Vec<f64>> {
    values
        .iter()
        .map(|v| match v {
            Value::Bool(b) => Ok(*b as i64 as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(MlError::Internal(format!("non-numeric label {other}"))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_hash_is_an_exact_partition() {
        // Over any 100 contiguous ctids, exactly `test_percent` land below
        // the threshold.
        for seed in [0u64, 1, 42] {
            let test = (0..100).filter(|i| split_hash(*i, seed) < 25).count();
            assert_eq!(test, 25, "seed {seed}");
        }
    }

    #[test]
    fn split_hash_differs_by_seed() {
        let a: Vec<i64> = (0..20).map(|i| split_hash(i, 1)).collect();
        let b: Vec<i64> = (0..20).map(|i| split_hash(i, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn labels_coercion() {
        assert_eq!(
            labels_to_f64(&[Value::Bool(true), Value::Int(0), Value::Float(1.0)]).unwrap(),
            vec![1.0, 0.0, 1.0]
        );
        assert!(labels_to_f64(&[Value::Null]).is_err());
    }
}
