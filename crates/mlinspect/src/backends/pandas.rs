//! The pandas baseline backend.
//!
//! Executes the DAG eagerly on the `dataframe` crate — one fully
//! materialized frame per operator, exactly the cost model the paper's SQL
//! off-loading competes with. Lineage is threaded mlinspect-style as hidden
//! annotation columns (`__ctid_<n>`), which is what lets the baseline run
//! the same `HistogramForColumns` inspection.

use super::{
    ctid_column, labels_to_f64, split_hash, BaselineCosts, NodeRelation, RunArtifacts, RunConfig,
    CTID_PREFIX,
};
use crate::dag::{
    CtStep, Dag, ImputeKind, ModelKind, NodeId, OpKind, SExpr, SplitPart, TransformerKind,
};
use crate::error::{MlError, Result};
use crate::inspection::{ColumnHistogram, FirstRowsSample, RowLineageSample};
use dataframe::{AggSpec, DataFrame, ElemOp, JoinType, Series};
use etypes::{CsvOptions, Value};
use pyparser::{BinOp, UnaryOp};
use sklearn::{
    Binarizer, ColumnTransformer, ImputeStrategy, KBinsDiscretizer, LogisticRegression, Matrix,
    MlpClassifier, OneHotEncoder, Pipeline as SkPipeline, SimpleImputer, StandardScaler,
};
use std::collections::HashMap;

/// In-memory file registry: pipeline path → CSV text. Falls back to the
/// filesystem for unregistered paths.
#[derive(Debug, Clone, Default)]
pub struct FileRegistry {
    files: HashMap<String, String>,
}

impl FileRegistry {
    /// Empty registry.
    pub fn new() -> FileRegistry {
        FileRegistry::default()
    }

    /// Register a file under a path (basename matching is used at lookup).
    pub fn insert(&mut self, path: impl Into<String>, content: impl Into<String>) {
        self.files.insert(path.into(), content.into());
    }

    /// Resolve a pipeline-referenced path to CSV text.
    pub fn resolve(&self, path: &str) -> Result<String> {
        if let Some(text) = self.files.get(path) {
            return Ok(text.clone());
        }
        let base = path.rsplit('/').next().unwrap_or(path);
        if let Some(text) = self.files.get(base) {
            return Ok(text.clone());
        }
        std::fs::read_to_string(path).map_err(|_| MlError::MissingFile(path.to_string()))
    }
}

enum FittedModel {
    LogReg(LogisticRegression),
    Mlp(MlpClassifier),
}

/// The baseline executor.
pub struct PandasBackend<'a> {
    files: &'a FileRegistry,
    config: &'a RunConfig,
    frames: HashMap<NodeId, DataFrame>,
    matrices: HashMap<NodeId, Matrix>,
    transformers: HashMap<NodeId, ColumnTransformer>,
    models: HashMap<NodeId, FittedModel>,
    artifacts: RunArtifacts,
}

impl<'a> PandasBackend<'a> {
    /// Execute a DAG against registered files.
    pub fn run(dag: &Dag, files: &'a FileRegistry, config: &'a RunConfig) -> Result<RunArtifacts> {
        let mut backend = PandasBackend {
            files,
            config,
            frames: HashMap::new(),
            matrices: HashMap::new(),
            transformers: HashMap::new(),
            models: HashMap::new(),
            artifacts: RunArtifacts::default(),
        };
        for node in &dag.nodes {
            let started = std::time::Instant::now();
            backend.execute(node.id, &node.kind)?;
            backend.artifacts.op_timings.push((
                node.id,
                node.kind.label().to_string(),
                started.elapsed(),
            ));
        }
        Ok(backend.artifacts)
    }

    /// Borrow a produced frame.
    fn frame(&self, id: NodeId) -> Result<&DataFrame> {
        self.frames
            .get(&id)
            .ok_or_else(|| MlError::Internal(format!("missing frame for node {id}")))
    }

    fn execute(&mut self, id: NodeId, kind: &OpKind) -> Result<()> {
        match kind {
            OpKind::ReadCsv { file, na_values } => {
                let text = self.files.resolve(file)?;
                let mut opts = CsvOptions::default();
                if let Some(na) = na_values {
                    opts = opts.with_na(na.clone());
                }
                let mut df = dataframe::read_csv_str(&text, &opts)?;
                let n = df.len();
                df.insert(Series::new(
                    ctid_column(id),
                    (0..n as i64).map(Value::Int).collect(),
                ))?;
                self.finish_frame(id, kind, df)?;
            }
            OpKind::Join { left, right, on } => {
                let l = self.frame(*left)?;
                let r = self.frame(*right)?;
                let keys: Vec<&str> = on.iter().map(String::as_str).collect();
                let joined = l.merge(r, &keys, JoinType::Inner)?;
                self.finish_frame(id, kind, joined)?;
            }
            OpKind::GroupByAgg { input, keys, aggs } => {
                let df = self.frame(*input)?;
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                // The baseline's groupby drops annotation columns (pandas has
                // no array_agg); sensitive columns among the group keys stay
                // inspectable, everything else is restored downstream after
                // the merge-back.
                let specs: Vec<AggSpec> = aggs.clone();
                let agg = df.groupby(&key_refs)?.agg(&specs)?;
                self.finish_frame(id, kind, agg)?;
            }
            OpKind::SetItem {
                input,
                column,
                expr,
            } => {
                let df = self.frame(*input)?.clone();
                let series = eval_sexpr(&df, expr)?;
                let mut out = df;
                out.set_column(column, series)?;
                self.finish_frame(id, kind, out)?;
            }
            OpKind::Project { input, columns } => {
                let df = self.frame(*input)?;
                // Keep requested columns plus all annotation columns.
                let mut keep: Vec<&str> = columns.iter().map(String::as_str).collect();
                for c in df.column_names() {
                    if c.starts_with(CTID_PREFIX) {
                        keep.push(c);
                    }
                }
                let out = df.select(&keep)?;
                self.finish_frame(id, kind, out)?;
            }
            OpKind::Filter { input, condition } => {
                let df = self.frame(*input)?;
                let mask = eval_sexpr(df, condition)?;
                let out = df.filter(&mask)?;
                self.finish_frame(id, kind, out)?;
            }
            OpKind::DropNa { input } => {
                let df = self.frame(*input)?;
                self.finish_frame(id, kind, df.dropna())?;
            }
            OpKind::Replace { input, from, to } => {
                let df = self.frame(*input)?;
                self.finish_frame(id, kind, df.replace(from, to))?;
            }
            OpKind::FillNa { input, value } => {
                let df = self.frame(*input)?;
                let filled = DataFrame::from_columns(
                    df.columns()
                        .iter()
                        .map(|s| {
                            if s.name().starts_with(CTID_PREFIX) {
                                s.clone()
                            } else {
                                s.fillna(value)
                            }
                        })
                        .collect(),
                )?;
                self.finish_frame(id, kind, filled)?;
            }
            OpKind::Head { input, n } => {
                let df = self.frame(*input)?;
                let out = df.head(*n as usize);
                self.finish_frame(id, kind, out)?;
            }
            OpKind::SortValues {
                input,
                by,
                ascending,
            } => {
                let df = self.frame(*input)?;
                let keys: Vec<&str> = by.iter().map(String::as_str).collect();
                let mut out = df.sort_by(&keys)?;
                if !ascending {
                    let idx: Vec<usize> = (0..out.len()).rev().collect();
                    out = out.take(&idx);
                }
                self.finish_frame(id, kind, out)?;
            }
            OpKind::DropColumns { input, columns } => {
                let df = self.frame(*input)?;
                let drop: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.finish_frame(id, kind, df.drop_columns(&drop))?;
            }
            OpKind::LabelBinarize {
                input,
                column,
                classes,
            } => {
                let df = self.frame(*input)?;
                let labels = sklearn::label_binarize(
                    df.column(column)?.values(),
                    &[classes[0].clone(), classes[1].clone()],
                )?;
                let mut out = DataFrame::new();
                out.insert(Series::new(
                    "label",
                    labels.into_iter().map(Value::Int).collect(),
                ))?;
                for c in df.column_names() {
                    if c.starts_with(CTID_PREFIX) {
                        out.insert(df.column(c)?.clone())?;
                    }
                }
                self.finish_frame(id, kind, out)?;
            }
            OpKind::Split {
                input,
                part,
                test_percent,
                seed,
            } => {
                let df = self.frame(*input)?;
                let ctid_col = df
                    .column_names()
                    .iter()
                    .find(|c| c.starts_with(CTID_PREFIX))
                    .map(|c| c.to_string())
                    .ok_or_else(|| MlError::Internal("split without lineage column".to_string()))?;
                let ids = df.column(&ctid_col)?;
                let mask_vals: Vec<Value> = ids
                    .values()
                    .iter()
                    .map(|v| {
                        let ctid = v.as_i64().map_err(MlError::Value)?;
                        let in_test = split_hash(ctid, *seed) < *test_percent as i64;
                        Ok(Value::Bool(match part {
                            SplitPart::Train => !in_test,
                            SplitPart::Test => in_test,
                        }))
                    })
                    .collect::<Result<_>>()?;
                let out = df.filter(&Series::new("mask", mask_vals))?;
                self.finish_frame(id, kind, out)?;
            }
            OpKind::FeatureTransform {
                input,
                steps,
                fit_node,
            } => {
                let df = self.frame(*input)?.clone();
                let matrix = match fit_node {
                    None => {
                        let mut ct = build_column_transformer(steps);
                        let m = ct.fit_transform(&df)?;
                        self.transformers.insert(id, ct);
                        m
                    }
                    Some(f) => {
                        let ct = self.transformers.get(f).ok_or_else(|| {
                            MlError::Internal(format!("no fitted transformer at node {f}"))
                        })?;
                        ct.transform(&df)?
                    }
                };
                // Simulated CPython/monkey-patching overhead per transformed
                // cell (see BaselineCosts).
                BaselineCosts::charge(
                    self.config.baseline_costs.sklearn_nanos_per_cell,
                    matrix.nrows() * matrix.ncols(),
                );
                self.matrices.insert(id, matrix);
            }
            OpKind::ModelFit {
                features,
                labels,
                model,
                seed,
            } => {
                let x = self
                    .matrices
                    .get(features)
                    .ok_or_else(|| MlError::Internal("missing feature matrix".into()))?;
                let y = self.labels(labels)?;
                let fitted = match model {
                    ModelKind::LogisticRegression => {
                        let mut m = LogisticRegression::new().with_seed(*seed);
                        m.fit(x, &y)?;
                        FittedModel::LogReg(m)
                    }
                    ModelKind::NeuralNetwork { hidden, epochs } => {
                        let mut m = MlpClassifier::new(*hidden).with_seed(*seed);
                        m.epochs = *epochs;
                        m.fit(x, &y)?;
                        FittedModel::Mlp(m)
                    }
                };
                self.models.insert(id, fitted);
            }
            OpKind::ModelScore {
                model,
                features,
                labels,
            } => {
                let x = self
                    .matrices
                    .get(features)
                    .ok_or_else(|| MlError::Internal("missing feature matrix".into()))?;
                let y = self.labels(labels)?;
                let fitted = self
                    .models
                    .get(model)
                    .ok_or_else(|| MlError::Internal("missing fitted model".into()))?;
                let acc = match fitted {
                    FittedModel::LogReg(m) => m.score(x, &y)?,
                    FittedModel::Mlp(m) => m.score(x, &y)?,
                };
                self.artifacts.accuracies.push(acc);
            }
        }
        Ok(())
    }

    fn labels(&self, labels: &(NodeId, String)) -> Result<Vec<f64>> {
        let frame = self.frame(labels.0)?;
        labels_to_f64(frame.column(&labels.1)?.values())
    }

    /// Store a produced frame and apply the requested inspections.
    fn finish_frame(&mut self, id: NodeId, kind: &OpKind, df: DataFrame) -> Result<()> {
        // Histograms after every frame-producing operator.
        let sensitive = self.config.sensitive_columns();
        if !sensitive.is_empty() {
            let mut hists = Vec::new();
            for col in &sensitive {
                if let Some(h) = self.histogram_for(&df, col)? {
                    // mlinspect's Python-level inspection iterators touch
                    // every row once per measured column.
                    BaselineCosts::charge(
                        self.config.baseline_costs.inspect_nanos_per_row,
                        df.len(),
                    );
                    hists.push(h);
                }
            }
            self.artifacts.inspections.histograms.insert(id, hists);
        }
        if let Some(k) = self.config.lineage_k() {
            let ctid_cols: Vec<String> = df
                .column_names()
                .iter()
                .filter(|c| c.starts_with(CTID_PREFIX))
                .map(|c| c.to_string())
                .collect();
            let rows = (0..df.len().min(k))
                .map(|i| {
                    ctid_cols
                        .iter()
                        .map(|c| df.column(c).map(|s| s.values()[i].clone()))
                        .collect::<dataframe::Result<Vec<_>>>()
                })
                .collect::<dataframe::Result<Vec<_>>>()?;
            self.artifacts.inspections.lineage.insert(
                id,
                RowLineageSample {
                    ctid_columns: ctid_cols,
                    rows,
                },
            );
        }
        if let Some(k) = self.config.first_rows_k() {
            let visible = visible_columns(&df);
            let proj = df.select(&visible.iter().map(String::as_str).collect::<Vec<_>>())?;
            self.artifacts.inspections.first_rows.insert(
                id,
                FirstRowsSample {
                    columns: visible,
                    rows: proj.head(k).to_rows(),
                },
            );
        }
        if self.config.keep_relations && kind.produces_frame() {
            let visible = visible_columns(&df);
            let proj = df.select(&visible.iter().map(String::as_str).collect::<Vec<_>>())?;
            self.artifacts.relations.insert(
                id,
                NodeRelation {
                    columns: visible,
                    rows: proj.to_rows(),
                },
            );
        }
        self.frames.insert(id, df);
        Ok(())
    }

    /// Histogram of a sensitive column: direct when present, otherwise
    /// restored via a lineage column whose source read-frame has it.
    fn histogram_for(&self, df: &DataFrame, column: &str) -> Result<Option<ColumnHistogram>> {
        let values: Option<Vec<Value>> = if df.has_column(column) {
            Some(df.column(column)?.values().to_vec())
        } else {
            let mut restored = None;
            for c in df.column_names() {
                let Some(src) = c.strip_prefix(CTID_PREFIX) else {
                    continue;
                };
                let Ok(src_id) = src.parse::<NodeId>() else {
                    continue;
                };
                let Some(orig) = self.frames.get(&src_id) else {
                    continue;
                };
                if !orig.has_column(column) {
                    continue;
                }
                // ctid == row index in the original frame.
                let orig_vals = orig.column(column)?.values();
                let vals = df
                    .column(c)?
                    .values()
                    .iter()
                    .map(|v| {
                        let i = v.as_i64().map_err(MlError::Value)? as usize;
                        Ok(orig_vals[i].clone())
                    })
                    .collect::<Result<Vec<_>>>()?;
                restored = Some(vals);
                break;
            }
            restored
        };
        let Some(values) = values else {
            return Ok(None);
        };
        let mut counts: HashMap<Value, u64> = HashMap::new();
        for v in values {
            *counts.entry(v).or_insert(0) += 1;
        }
        Ok(Some(ColumnHistogram::new(
            column,
            counts.into_iter().collect(),
        )))
    }
}

fn visible_columns(df: &DataFrame) -> Vec<String> {
    df.column_names()
        .iter()
        .filter(|c| !c.starts_with(CTID_PREFIX))
        .map(|c| c.to_string())
        .collect()
}

fn build_column_transformer(steps: &[CtStep]) -> ColumnTransformer {
    let mut ct = ColumnTransformer::new();
    for step in steps {
        let mut chain = SkPipeline::new();
        for t in &step.steps {
            chain = match t {
                TransformerKind::SimpleImputer(k) => chain.then(SimpleImputer::new(match k {
                    ImputeKind::Mean => ImputeStrategy::Mean,
                    ImputeKind::Median => ImputeStrategy::Median,
                    ImputeKind::MostFrequent => ImputeStrategy::MostFrequent,
                })),
                TransformerKind::OneHotEncoder => chain.then(OneHotEncoder::new()),
                TransformerKind::StandardScaler => chain.then(StandardScaler::new()),
                TransformerKind::KBinsDiscretizer(k) => chain.then(KBinsDiscretizer::new(*k)),
                TransformerKind::Binarizer(t) => chain.then(Binarizer::new(*t)),
            };
        }
        let cols: Vec<&str> = step.columns.iter().map(String::as_str).collect();
        ct = ct.with(step.name.clone(), chain, &cols);
    }
    ct
}

/// Evaluate a column expression over a frame, producing a series.
pub fn eval_sexpr(df: &DataFrame, expr: &SExpr) -> Result<Series> {
    Ok(match expr {
        SExpr::Col(c) => df.column(c)?.clone(),
        SExpr::Lit(v) => Series::new("literal", vec![v.clone(); df.len()]),
        SExpr::Binary { op, left, right } => {
            let elem = pandas_op(*op)?;
            match (&**left, &**right) {
                (SExpr::Lit(l), r) => {
                    let rs = eval_sexpr(df, r)?;
                    rs.rbinary_scalar(elem, l)?
                }
                (l, SExpr::Lit(r)) => {
                    let ls = eval_sexpr(df, l)?;
                    ls.binary_scalar(elem, r)?
                }
                (l, r) => {
                    let ls = eval_sexpr(df, l)?;
                    let rs = eval_sexpr(df, r)?;
                    ls.binary(elem, &rs)?
                }
            }
        }
        SExpr::Unary { op, operand } => {
            let s = eval_sexpr(df, operand)?;
            match op {
                UnaryOp::Neg => s.neg()?,
                UnaryOp::Not | UnaryOp::Invert => s.invert()?,
            }
        }
        SExpr::IsIn { expr, list } => {
            let s = eval_sexpr(df, expr)?;
            s.isin(list)
        }
    })
}

fn pandas_op(op: BinOp) -> Result<ElemOp> {
    Ok(match op {
        BinOp::Add => ElemOp::Add,
        BinOp::Sub => ElemOp::Sub,
        BinOp::Mul => ElemOp::Mul,
        BinOp::Div => ElemOp::Div,
        BinOp::Mod => ElemOp::Mod,
        BinOp::Lt => ElemOp::Lt,
        BinOp::Gt => ElemOp::Gt,
        BinOp::Le => ElemOp::Le,
        BinOp::Ge => ElemOp::Ge,
        BinOp::Eq => ElemOp::Eq,
        BinOp::NotEq => ElemOp::NotEq,
        BinOp::BitAnd | BinOp::And => ElemOp::And,
        BinOp::BitOr | BinOp::Or => ElemOp::Or,
        other => {
            return Err(MlError::Internal(format!(
                "unsupported element-wise operator {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture;
    use crate::inspection::Inspection;
    use crate::pipelines;

    fn healthcare_files() -> FileRegistry {
        let mut files = FileRegistry::new();
        files.insert("patients.csv", datagen::patients_csv(200, 1));
        files.insert("histories.csv", datagen::histories_csv(200, 1));
        files
    }

    fn config(sensitive: &[&str]) -> RunConfig {
        RunConfig {
            inspections: vec![
                Inspection::HistogramForColumns(sensitive.iter().map(|s| s.to_string()).collect()),
                Inspection::RowLineage(3),
                Inspection::MaterializeFirstOutputRows(3),
            ],
            keep_relations: true,
            force_outputs: false,
            baseline_costs: super::BaselineCosts::zero(),
        }
    }

    #[test]
    fn runs_healthcare_end_to_end() {
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let files = healthcare_files();
        let cfg = config(&["race", "age_group"]);
        let artifacts = PandasBackend::run(&cap.dag, &files, &cfg).unwrap();
        let acc = artifacts.accuracy().unwrap();
        assert!((0.0..=1.0).contains(&acc), "{acc}");
    }

    #[test]
    fn histogram_restored_after_projection_removed_column() {
        // age_group is projected away at the healthcare projection; the
        // histogram must still be measurable via lineage.
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let files = healthcare_files();
        let cfg = config(&["age_group"]);
        let artifacts = PandasBackend::run(&cap.dag, &files, &cfg).unwrap();
        let selection = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "selection")
            .unwrap();
        let hist = artifacts
            .inspections
            .histogram(selection.id, "age_group")
            .expect("age_group histogram after county selection");
        assert!(hist.total() > 0);
    }

    #[test]
    fn county_filter_changes_age_group_ratio() {
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let files = healthcare_files();
        let cfg = config(&["age_group"]);
        let artifacts = PandasBackend::run(&cap.dag, &files, &cfg).unwrap();
        let selection = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "selection")
            .unwrap();
        let input = selection.kind.inputs()[0];
        let before = artifacts.inspections.histogram(input, "age_group").unwrap();
        let after = artifacts
            .inspections
            .histogram(selection.id, "age_group")
            .unwrap();
        // The selection drops county1, where age_group1 concentrates.
        assert!(after.total() < before.total());
    }

    #[test]
    fn lineage_and_first_rows_sampled() {
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let files = healthcare_files();
        let cfg = config(&["race"]);
        let artifacts = PandasBackend::run(&cap.dag, &files, &cfg).unwrap();
        let join = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "merge")
            .unwrap();
        let lineage = &artifacts.inspections.lineage[&join.id];
        assert_eq!(lineage.ctid_columns.len(), 2);
        assert!(lineage.len() <= 3);
        let rows = &artifacts.inspections.first_rows[&join.id];
        assert!(!rows.columns.iter().any(|c| c.starts_with(CTID_PREFIX)));
    }

    #[test]
    fn runs_all_four_pipelines() {
        let mut files = healthcare_files();
        files.insert("compas_train.csv", datagen::compas_csv(300, 2));
        files.insert("compas_test.csv", datagen::compas_csv(100, 3));
        files.insert("adult_train.csv", datagen::adult_csv(400, 4));
        files.insert("adult_test.csv", datagen::adult_csv(150, 5));
        for (name, src) in pipelines::all() {
            let cap = capture(src).unwrap();
            let cfg = config(&["race"]);
            let artifacts = PandasBackend::run(&cap.dag, &files, &cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let acc = artifacts.accuracy().unwrap();
            assert!((0.0..=1.0).contains(&acc), "{name}: {acc}");
        }
    }

    #[test]
    fn missing_file_is_reported() {
        let cap = capture("t = pd.read_csv('nope.csv')").unwrap();
        let files = FileRegistry::new();
        let cfg = RunConfig::default();
        assert!(matches!(
            PandasBackend::run(&cap.dag, &files, &cfg),
            Err(MlError::MissingFile(_))
        ));
    }
}
