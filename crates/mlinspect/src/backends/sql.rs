//! The SQL backend: translate every operator to a CTE/view and run it on
//! the database engine (paper §3.3, §4, §5).

use super::pandas::FileRegistry;
use super::{labels_to_f64, NodeRelation, RunArtifacts, RunConfig};
use crate::dag::{Dag, ModelKind, NodeId, OpKind};
use crate::error::{MlError, Result};
use crate::inspection::{ColumnHistogram, FirstRowsSample, RowLineageSample};
use crate::sqlgen::{ReadCsvSql, SqlGen, SqlMode, SqlQueryContainer};
use etypes::{CsvOptions, Value};
use sklearn::{LogisticRegression, Matrix, MlpClassifier};
use sqlengine::{Engine, Relation};
use std::collections::HashMap;

/// The generated SQL of a pipeline, without execution (the paper's
/// "functionality to generate inspection-enabled SQL queries from pipelines
/// written in Python without execution").
#[derive(Debug, Clone, Default)]
pub struct TranspiledSql {
    /// DDL + COPY per read_csv, in order.
    pub setup: Vec<ReadCsvSql>,
    /// All generated table expressions.
    pub container: SqlQueryContainer,
}

impl TranspiledSql {
    /// Render the complete script for the given mode.
    pub fn script(&self, mode: SqlMode, materialize: bool) -> String {
        let mut out = String::new();
        for s in &self.setup {
            out.push_str(&s.create);
            out.push('\n');
            out.push_str(&s.copy);
            out.push('\n');
        }
        match mode {
            SqlMode::View => out.push_str(&self.container.view_script(materialize)),
            SqlMode::Cte => {
                if let Some(last) = self.container.entries().last() {
                    let select = format!("SELECT * FROM {}", last.name);
                    out.push_str(&self.container.query(SqlMode::Cte, &select));
                }
            }
        }
        out
    }
}

enum FittedModel {
    LogReg(LogisticRegression),
    Mlp(MlpClassifier),
}

/// The SQL backend executor.
pub struct SqlBackend<'a> {
    files: &'a FileRegistry,
    config: &'a RunConfig,
    mode: SqlMode,
    materialize: bool,
    engine: Option<&'a mut Engine>,
    gen: SqlGen,
    setup: Vec<ReadCsvSql>,
    created_entries: usize,
    models: HashMap<NodeId, FittedModel>,
    artifacts: RunArtifacts,
}

impl<'a> SqlBackend<'a> {
    /// Translate and execute a DAG on the engine.
    pub fn run(
        dag: &Dag,
        files: &'a FileRegistry,
        config: &'a RunConfig,
        engine: &'a mut Engine,
        mode: SqlMode,
        materialize: bool,
    ) -> Result<RunArtifacts> {
        let mut backend = SqlBackend {
            files,
            config,
            mode,
            materialize,
            engine: Some(engine),
            gen: SqlGen::new(),
            setup: Vec::new(),
            created_entries: 0,
            models: HashMap::new(),
            artifacts: RunArtifacts::default(),
        };
        for node in &dag.nodes {
            let started = std::time::Instant::now();
            backend.execute_node(node.id, node.line, &node.kind)?;
            backend.artifacts.op_timings.push((
                node.id,
                node.kind.label().to_string(),
                started.elapsed(),
            ));
        }
        if config.force_outputs {
            backend.force_terminal_outputs(dag)?;
        }
        Ok(backend.artifacts)
    }

    /// Evaluate every frame node no other node consumes (the lazy SQL
    /// counterpart of the baseline's eager materialization).
    fn force_terminal_outputs(&mut self, dag: &Dag) -> Result<()> {
        let mut consumed = std::collections::HashSet::new();
        for node in &dag.nodes {
            consumed.extend(node.kind.inputs());
        }
        for node in &dag.nodes {
            if consumed.contains(&node.id) || !node.kind.produces_frame() {
                continue;
            }
            // Fetch all visible columns (the paper's runs transfer results
            // back through the adapter), preventing the optimizer from
            // pruning the node's actual work.
            let Ok(select) = self.gen.select_visible(node.id, None) else {
                continue;
            };
            let sql = self.assemble(&select);
            self.run_sql(&sql)?;
        }
        Ok(())
    }

    /// Translate a DAG to SQL without executing it (schemas are deduced from
    /// a ten-row sample of the inputs, like the paper's schema-deduction run).
    pub fn transpile(dag: &Dag, files: &FileRegistry, mode: SqlMode) -> Result<TranspiledSql> {
        let config = RunConfig::default();
        let mut backend = SqlBackend {
            files,
            config: &config,
            mode,
            materialize: false,
            engine: None,
            gen: SqlGen::new(),
            setup: Vec::new(),
            created_entries: 0,
            models: HashMap::new(),
            artifacts: RunArtifacts::default(),
        };
        for node in &dag.nodes {
            backend.execute_node(node.id, node.line, &node.kind)?;
        }
        Ok(TranspiledSql {
            setup: backend.setup,
            container: backend.gen.container,
        })
    }

    fn dry_run(&self) -> bool {
        self.engine.is_none()
    }

    fn run_sql(&mut self, sql: &str) -> Result<Relation> {
        let engine = self
            .engine
            .as_deref_mut()
            .ok_or_else(|| MlError::Internal("query in transpile-only mode".into()))?;
        Ok(engine.query(sql)?)
    }

    /// Assemble a query for a bare select in the active mode.
    fn assemble(&self, select: &str) -> String {
        self.gen.container.query(self.mode, select)
    }

    /// In VIEW mode, create catalog views for entries generated since the
    /// last call.
    fn flush_views(&mut self) -> Result<()> {
        if self.mode != SqlMode::View || self.dry_run() {
            self.created_entries = self.gen.container.len();
            return Ok(());
        }
        let entries: Vec<_> = self.gen.container.entries()[self.created_entries..].to_vec();
        for entry in entries {
            // "When the user chooses to materialise, all created views/CTEs,
            // for which recalculating can be avoided, as well as all fitting
            // parameters are materialised" (§3.4.2).
            let materialized = self.materialize;
            let engine = self.engine.as_deref_mut().expect("dry_run checked above");
            engine.execute(&format!("DROP VIEW IF EXISTS {}", entry.name))?;
            engine.execute(&SqlQueryContainer::view_ddl(&entry, materialized))?;
        }
        self.created_entries = self.gen.container.len();
        Ok(())
    }

    fn execute_node(&mut self, id: NodeId, line: usize, kind: &OpKind) -> Result<()> {
        match kind {
            OpKind::ReadCsv { file, na_values } => {
                let text = self.files.resolve(file)?;
                let mut opts = CsvOptions::default();
                if let Some(na) = na_values {
                    opts = opts.with_na(na.clone());
                }
                // Schema deduction: full parse when executing, ten-row sample
                // when only transpiling.
                let csv = if self.dry_run() {
                    let sample: String = text.lines().take(11).collect::<Vec<_>>().join("\n");
                    etypes::read_csv_str(&sample, &opts)?
                } else {
                    etypes::read_csv_str(&text, &opts)?
                };
                let nullable: Vec<bool> = (0..csv.columns.len())
                    .map(|i| csv.rows.iter().any(|r| r[i].is_null()))
                    .collect();
                let sql = self.gen.read_csv(
                    id,
                    line,
                    file,
                    &csv.columns,
                    &csv.types,
                    &nullable,
                    na_values.as_deref(),
                );
                if let Some(engine) = self.engine.as_deref_mut() {
                    engine.execute_script(&sql.create)?;
                    engine.copy_rows(&sql.table, None, csv)?;
                }
                self.setup.push(sql);
            }
            OpKind::Join { left, right, on } => {
                self.gen.join(id, line, *left, *right, on)?;
            }
            OpKind::GroupByAgg { input, keys, aggs } => {
                self.gen.groupby_agg(id, line, *input, keys, aggs)?;
            }
            OpKind::SetItem {
                input,
                column,
                expr,
            } => {
                self.gen.set_item(id, line, *input, column, expr)?;
            }
            OpKind::Project { input, columns } => {
                self.gen.project(id, line, *input, columns)?;
            }
            OpKind::Filter { input, condition } => {
                self.gen.filter(id, line, *input, condition)?;
            }
            OpKind::DropNa { input } => {
                self.gen.dropna(id, line, *input)?;
            }
            OpKind::Replace { input, from, to } => {
                self.gen.replace(id, line, *input, from, to)?;
            }
            OpKind::FillNa { input, value } => {
                self.gen.fillna(id, line, *input, value)?;
            }
            OpKind::Head { input, n } => {
                self.gen.head(id, line, *input, *n)?;
            }
            OpKind::SortValues {
                input,
                by,
                ascending,
            } => {
                self.gen.sort_values(id, line, *input, by, *ascending)?;
            }
            OpKind::DropColumns { input, columns } => {
                self.gen.drop_columns(id, line, *input, columns)?;
            }
            OpKind::LabelBinarize {
                input,
                column,
                classes,
            } => {
                self.gen.label_binarize(id, line, *input, column, classes)?;
            }
            OpKind::Split {
                input,
                part,
                test_percent,
                seed,
            } => {
                self.gen
                    .split(id, line, *input, *part, *test_percent, *seed)?;
            }
            OpKind::FeatureTransform {
                input,
                steps,
                fit_node,
            } => {
                self.gen.featurisation(id, line, *input, steps, *fit_node)?;
            }
            OpKind::ModelFit {
                features,
                labels,
                model,
                seed,
            } => {
                self.flush_views()?;
                if self.dry_run() {
                    return Ok(());
                }
                let (x, y) = self.extract_features_and_labels(*features, labels)?;
                let fitted = match model {
                    ModelKind::LogisticRegression => {
                        let mut m = LogisticRegression::new().with_seed(*seed);
                        m.fit(&x, &y)?;
                        FittedModel::LogReg(m)
                    }
                    ModelKind::NeuralNetwork { hidden, epochs } => {
                        let mut m = MlpClassifier::new(*hidden).with_seed(*seed);
                        m.epochs = *epochs;
                        m.fit(&x, &y)?;
                        FittedModel::Mlp(m)
                    }
                };
                self.models.insert(id, fitted);
                return Ok(());
            }
            OpKind::ModelScore {
                model,
                features,
                labels,
            } => {
                self.flush_views()?;
                if self.dry_run() {
                    return Ok(());
                }
                let (x, y) = self.extract_features_and_labels(*features, labels)?;
                let fitted = self
                    .models
                    .get(model)
                    .ok_or_else(|| MlError::Internal("missing fitted model".into()))?;
                let acc = match fitted {
                    FittedModel::LogReg(m) => m.score(&x, &y)?,
                    FittedModel::Mlp(m) => m.score(&x, &y)?,
                };
                self.artifacts.accuracies.push(acc);
                return Ok(());
            }
        }
        self.flush_views()?;
        if kind.produces_frame() && !matches!(kind, OpKind::FeatureTransform { .. }) {
            self.inspect_node(id)?;
        }
        Ok(())
    }

    // ---- inspection ---------------------------------------------------------

    fn inspect_node(&mut self, id: NodeId) -> Result<()> {
        if self.dry_run() {
            return Ok(());
        }
        let sensitive = self.config.sensitive_columns();
        if !sensitive.is_empty() {
            let mut hists = Vec::new();
            for col in &sensitive {
                let Some(select) = self.gen.histogram_select(id, col) else {
                    continue;
                };
                let sql = self.assemble(&select);
                let rel = self.run_sql(&sql)?;
                let counts = rel
                    .rows
                    .iter()
                    .map(|r| {
                        let n = r[1].as_i64().map_err(MlError::Value)? as u64;
                        Ok((r[0].clone(), n))
                    })
                    .collect::<Result<Vec<_>>>()?;
                hists.push(ColumnHistogram::new(col.clone(), counts));
            }
            self.artifacts.inspections.histograms.insert(id, hists);
        }
        if let Some(k) = self.config.lineage_k() {
            let (names, select) = self.gen.select_lineage(id, k)?;
            let sql = self.assemble(&select);
            let rel = self.run_sql(&sql)?;
            self.artifacts.inspections.lineage.insert(
                id,
                RowLineageSample {
                    ctid_columns: names,
                    rows: rel.rows,
                },
            );
        }
        if let Some(k) = self.config.first_rows_k() {
            let select = self.gen.select_visible(id, Some(k))?;
            let sql = self.assemble(&select);
            let rel = self.run_sql(&sql)?;
            self.artifacts.inspections.first_rows.insert(
                id,
                FirstRowsSample {
                    columns: rel.columns.clone(),
                    rows: rel.rows,
                },
            );
        }
        if self.config.keep_relations {
            let select = self.gen.select_visible(id, None)?;
            let sql = self.assemble(&select);
            let rel = self.run_sql(&sql)?;
            self.artifacts.relations.insert(
                id,
                NodeRelation {
                    columns: rel.columns,
                    rows: rel.rows,
                },
            );
        }
        Ok(())
    }

    // ---- feature/label extraction ---------------------------------------------

    /// One combined query extracts the feature matrix and the aligned labels
    /// by joining on a shared tuple identifier, then converts to the dense
    /// representation the (in-process) model training consumes — the paper's
    /// "cast into a matrix representation (NumPy array) to feed the model".
    fn extract_features_and_labels(
        &mut self,
        features: NodeId,
        labels: &(NodeId, String),
    ) -> Result<(Matrix, Vec<f64>)> {
        let feat = self.gen.table_expr(features)?.clone();
        let lab = self.gen.table_expr(labels.0)?.clone();
        let common = feat
            .ctids
            .iter()
            .find(|f| !f.aggregated && lab.ctids.iter().any(|l| l.name == f.name))
            .ok_or_else(|| {
                MlError::Internal("no shared tuple identifier between features and labels".into())
            })?;
        let ctid = crate::sqlgen::quote_ident(&common.name);
        let cols: Vec<String> = feat
            .columns
            .iter()
            .map(|c| format!("f.{}", crate::sqlgen::quote_ident(c)))
            .collect();
        let select = format!(
            "SELECT {}, lab.{} FROM {} f INNER JOIN {} lab ON f.{ctid} = lab.{ctid}",
            cols.join(", "),
            crate::sqlgen::quote_ident(&labels.1),
            feat.sql_name,
            lab.sql_name
        );
        let sql = self.assemble(&select);
        let rel = self.run_sql(&sql)?;
        matrix_from_relation(&rel)
    }
}

/// Flatten a relation whose last column is the label and whose feature
/// columns may contain one-hot arrays.
fn matrix_from_relation(rel: &Relation) -> Result<(Matrix, Vec<f64>)> {
    let n_cols = rel.columns.len();
    if n_cols < 1 {
        return Err(MlError::Internal("empty extraction result".into()));
    }
    let feat_cols = n_cols - 1;
    let mut widths = vec![1usize; feat_cols];
    for (c, width) in widths.iter_mut().enumerate() {
        if let Some(row) = rel.rows.first() {
            if let Value::Array(items) = &row[c] {
                *width = items.len();
            }
        }
    }
    let total: usize = widths.iter().sum();
    let mut data = Vec::with_capacity(rel.rows.len() * total);
    let mut labels = Vec::with_capacity(rel.rows.len());
    for row in &rel.rows {
        for (c, width) in widths.iter().enumerate() {
            match &row[c] {
                Value::Array(items) => {
                    if items.len() != *width {
                        return Err(MlError::Internal(format!(
                            "ragged one-hot width in column {}",
                            rel.columns[c]
                        )));
                    }
                    for item in items {
                        data.push(item.as_f64().map_err(MlError::Value)?);
                    }
                }
                v => {
                    if *width != 1 {
                        return Err(MlError::Internal(format!(
                            "scalar in array feature column {}",
                            rel.columns[c]
                        )));
                    }
                    data.push(v.as_f64().map_err(MlError::Value)?);
                }
            }
        }
        labels.push(labels_to_f64(&row[feat_cols..=feat_cols])?[0]);
    }
    let matrix = Matrix::new(rel.rows.len(), total, data)?;
    Ok((matrix, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::pandas::FileRegistry;
    use crate::capture::capture;
    use crate::inspection::Inspection;
    use crate::pipelines;
    use sqlengine::EngineProfile;

    fn files() -> FileRegistry {
        let mut f = FileRegistry::new();
        f.insert("patients.csv", datagen::patients_csv(200, 1));
        f.insert("histories.csv", datagen::histories_csv(200, 1));
        f.insert("compas_train.csv", datagen::compas_csv(300, 2));
        f.insert("compas_test.csv", datagen::compas_csv(120, 3));
        f.insert("adult_train.csv", datagen::adult_csv(400, 4));
        f.insert("adult_test.csv", datagen::adult_csv(150, 5));
        f
    }

    fn config(sensitive: &[&str]) -> RunConfig {
        RunConfig {
            inspections: vec![
                Inspection::HistogramForColumns(sensitive.iter().map(|s| s.to_string()).collect()),
                Inspection::RowLineage(3),
                Inspection::MaterializeFirstOutputRows(3),
            ],
            keep_relations: false,
            force_outputs: false,
            baseline_costs: super::super::BaselineCosts::zero(),
        }
    }

    fn run_mode(src: &str, mode: SqlMode, materialize: bool) -> RunArtifacts {
        let cap = capture(src).unwrap();
        let files = files();
        let cfg = config(&["race", "age_group"]);
        let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
        SqlBackend::run(&cap.dag, &files, &cfg, &mut engine, mode, materialize).unwrap()
    }

    #[test]
    fn healthcare_runs_in_cte_mode() {
        let artifacts = run_mode(pipelines::HEALTHCARE, SqlMode::Cte, false);
        let acc = artifacts.accuracy().unwrap();
        assert!((0.0..=1.0).contains(&acc), "{acc}");
        // Histograms measured for every frame node.
        assert!(!artifacts.inspections.histograms.is_empty());
    }

    #[test]
    fn healthcare_runs_in_view_mode_with_and_without_materialization() {
        for materialize in [false, true] {
            let artifacts = run_mode(pipelines::HEALTHCARE, SqlMode::View, materialize);
            assert!(artifacts.accuracy().is_ok());
        }
    }

    #[test]
    fn all_pipelines_run_in_both_modes() {
        for (name, src) in pipelines::all() {
            for mode in [SqlMode::Cte, SqlMode::View] {
                let cap = capture(src).unwrap();
                let files = files();
                let cfg = config(&["race"]);
                let mut engine = Engine::new(EngineProfile::in_memory());
                let artifacts = SqlBackend::run(&cap.dag, &files, &cfg, &mut engine, mode, false)
                    .unwrap_or_else(|e| panic!("{name} ({mode:?}): {e}"));
                let acc = artifacts.accuracy().unwrap();
                assert!((0.0..=1.0).contains(&acc), "{name}: {acc}");
            }
        }
    }

    #[test]
    fn age_group_histogram_restored_after_projection() {
        let src = pipelines::HEALTHCARE;
        let cap = capture(src).unwrap();
        let files = files();
        let cfg = config(&["age_group"]);
        let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
        let artifacts =
            SqlBackend::run(&cap.dag, &files, &cfg, &mut engine, SqlMode::Cte, false).unwrap();
        let selection = cap
            .dag
            .nodes
            .iter()
            .find(|n| n.kind.label() == "selection")
            .unwrap();
        let hist = artifacts
            .inspections
            .histogram(selection.id, "age_group")
            .expect("restored histogram");
        assert!(hist.total() > 0);
    }

    #[test]
    fn transpile_only_produces_executable_script() {
        let cap = capture(pipelines::HEALTHCARE).unwrap();
        let files = files();
        let t = SqlBackend::transpile(&cap.dag, &files, SqlMode::Cte).unwrap();
        assert_eq!(t.setup.len(), 2);
        assert!(!t.container.is_empty());
        let script = t.script(SqlMode::Cte, false);
        assert!(script.contains("CREATE TABLE patients_"));
        assert!(script.contains("WITH "));
        // View script renders too.
        let view_script = t.script(SqlMode::View, true);
        assert!(view_script.contains("CREATE MATERIALIZED VIEW fit_"));
    }

    #[test]
    fn lineage_columns_follow_paper_naming() {
        let artifacts = run_mode(pipelines::HEALTHCARE, SqlMode::Cte, false);
        let sample = artifacts
            .inspections
            .lineage
            .values()
            .find(|s| s.ctid_columns.len() == 2)
            .expect("a post-join lineage sample");
        assert!(sample.ctid_columns[0].contains("_mlinid"));
        assert!(sample.ctid_columns[0].ends_with("_ctid"));
    }
}
