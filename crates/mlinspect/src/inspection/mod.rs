//! Inspections: per-operator measurements attached to DAG nodes.
//!
//! mlinspect's `NoBiasIntroducedFor` check is built on three inspections
//! (paper §3): `HistogramForColumns` (the ratios), `RowLineage` (tuple
//! identifiers per result row) and `MaterializeFirstOutputRows`.

pub mod histogram;
pub mod lineage;
pub mod materialize;

pub use histogram::{ColumnHistogram, HistogramChange};
pub use lineage::RowLineageSample;
pub use materialize::FirstRowsSample;

use crate::dag::NodeId;
use std::collections::HashMap;

/// The inspections a run can request.
#[derive(Debug, Clone, PartialEq)]
pub enum Inspection {
    /// Count value frequencies of the given columns after every
    /// distribution-changing operator (restoring projected-away columns via
    /// the tuple identifier).
    HistogramForColumns(Vec<String>),
    /// Record the originating tuple identifiers of the first `k` rows of
    /// every operator.
    RowLineage(usize),
    /// Materialize the first `k` output rows of every operator.
    MaterializeFirstOutputRows(usize),
}

/// All inspection results of one run, keyed by DAG node.
#[derive(Debug, Clone, Default)]
pub struct InspectionResults {
    /// Histograms per node per sensitive column.
    pub histograms: HashMap<NodeId, Vec<ColumnHistogram>>,
    /// Lineage samples per node.
    pub lineage: HashMap<NodeId, RowLineageSample>,
    /// First-rows samples per node.
    pub first_rows: HashMap<NodeId, FirstRowsSample>,
}

impl InspectionResults {
    /// Histogram of `column` at `node`, if measured.
    pub fn histogram(&self, node: NodeId, column: &str) -> Option<&ColumnHistogram> {
        self.histograms
            .get(&node)?
            .iter()
            .find(|h| h.column == column)
    }
}
