//! `RowLineage`: tuple identifiers of sample output rows.

use etypes::Value;

/// For the first `k` output rows of an operator: which tuples of which base
/// tables they derive from (paper §3: "RowLineage provides lineage
/// information for the resulting tuples").
#[derive(Debug, Clone, PartialEq)]
pub struct RowLineageSample {
    /// Names of the tuple-identifier columns (`<source>_ctid`).
    pub ctid_columns: Vec<String>,
    /// Per sampled row: the identifier values (scalar, or array after an
    /// aggregation).
    pub rows: Vec<Vec<Value>>,
}

impl RowLineageSample {
    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the operator produced no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All distinct base tables contributing lineage.
    pub fn sources(&self) -> Vec<&str> {
        self.ctid_columns.iter().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_accessors() {
        let s = RowLineageSample {
            ctid_columns: vec!["patients_ctid".into(), "histories_ctid".into()],
            rows: vec![vec![Value::Int(0), Value::Int(3)]],
        };
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.sources(), vec!["patients_ctid", "histories_ctid"]);
    }
}
