//! `HistogramForColumns`: value frequencies and ratio changes.

use etypes::Value;

/// Value frequencies of one (possibly restored) column at one operator.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnHistogram {
    /// The sensitive column.
    pub column: String,
    /// `(value, count)` pairs sorted by value for deterministic comparison.
    pub counts: Vec<(Value, u64)>,
}

impl ColumnHistogram {
    /// Build from unsorted counts.
    pub fn new(column: impl Into<String>, mut counts: Vec<(Value, u64)>) -> ColumnHistogram {
        counts.sort_by(|(a, _), (b, _)| a.cmp(b));
        ColumnHistogram {
            column: column.into(),
            counts,
        }
    }

    /// Total number of rows measured.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, c)| c).sum()
    }

    /// Ratio (relative frequency) of one value.
    pub fn ratio(&self, value: &Value) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, c)| *c as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// All `(value, ratio)` pairs.
    pub fn ratios(&self) -> Vec<(Value, f64)> {
        let total = self.total().max(1) as f64;
        self.counts
            .iter()
            .map(|(v, c)| (v.clone(), *c as f64 / total))
            .collect()
    }
}

/// The ratio change of one column between the original data and the output
/// of one operator (Figure 4's before/after table).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramChange {
    /// The sensitive column.
    pub column: String,
    /// Histogram over the original data.
    pub before: ColumnHistogram,
    /// Histogram after the operator.
    pub after: ColumnHistogram,
}

impl HistogramChange {
    /// Per-value ratio change `after - before`, including values that
    /// disappeared (after-ratio 0, via the paper's RIGHT OUTER JOIN +
    /// COALESCE pattern in Listing 1).
    pub fn changes(&self) -> Vec<(Value, f64)> {
        let mut out = Vec::new();
        for (v, _) in &self.before.counts {
            out.push((v.clone(), self.after.ratio(v) - self.before.ratio(v)));
        }
        // Values only present after (e.g. introduced by replace).
        for (v, _) in &self.after.counts {
            if !self.before.counts.iter().any(|(b, _)| b == v) {
                out.push((v.clone(), self.after.ratio(v)));
            }
        }
        out
    }

    /// The largest absolute ratio change — what `NoBiasIntroducedFor`
    /// compares against the threshold.
    pub fn max_abs_change(&self) -> f64 {
        self.changes()
            .iter()
            .map(|(_, c)| c.abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(column: &str, pairs: &[(&str, u64)]) -> ColumnHistogram {
        ColumnHistogram::new(
            column,
            pairs.iter().map(|(v, c)| (Value::text(*v), *c)).collect(),
        )
    }

    #[test]
    fn paper_figure_4_age_group_example() {
        // Original: age_group_1: 0.5, age_group_2: 0.5.
        // After: age_group_1: 0.25, age_group_2: 0.75 -> change ±0.25.
        let change = HistogramChange {
            column: "age_group".into(),
            before: hist("age_group", &[("age_group_1", 3), ("age_group_2", 3)]),
            after: hist("age_group", &[("age_group_1", 1), ("age_group_2", 3)]),
        };
        let changes = change.changes();
        assert_eq!(changes[0], (Value::text("age_group_1"), -0.25));
        assert_eq!(changes[1], (Value::text("age_group_2"), 0.25));
        assert!((change.max_abs_change() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn disappeared_value_counts_as_full_negative_ratio() {
        let change = HistogramChange {
            column: "race".into(),
            before: hist("race", &[("r1", 1), ("r2", 1)]),
            after: hist("race", &[("r2", 2)]),
        };
        let changes = change.changes();
        assert_eq!(changes[0], (Value::text("r1"), -0.5));
        assert_eq!(changes[1], (Value::text("r2"), 0.5));
    }

    #[test]
    fn new_value_appears_in_changes() {
        let change = HistogramChange {
            column: "label".into(),
            before: hist("label", &[("Medium", 2), ("High", 2)]),
            after: hist("label", &[("Low", 2), ("High", 2)]),
        };
        let changes = change.changes();
        assert!(changes.contains(&(Value::text("Low"), 0.5)));
    }

    #[test]
    fn empty_after_is_total_loss() {
        let change = HistogramChange {
            column: "c".into(),
            before: hist("c", &[("x", 4)]),
            after: ColumnHistogram::new("c", vec![]),
        };
        assert_eq!(change.max_abs_change(), 1.0);
    }

    #[test]
    fn ratio_lookup() {
        let h = hist("c", &[("a", 1), ("b", 3)]);
        assert_eq!(h.ratio(&Value::text("b")), 0.75);
        assert_eq!(h.ratio(&Value::text("zzz")), 0.0);
        assert_eq!(h.total(), 4);
    }
}
