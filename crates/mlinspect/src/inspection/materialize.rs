//! `MaterializeFirstOutputRows`: sample rows per operator.

use etypes::Value;

/// The first `k` output rows of an operator, "to easily examine the effects
/// of the pipeline" (paper §3).
#[derive(Debug, Clone, PartialEq)]
pub struct FirstRowsSample {
    /// Visible column names.
    pub columns: Vec<String>,
    /// Up to `k` rows.
    pub rows: Vec<Vec<Value>>,
}

impl FirstRowsSample {
    /// Render as an aligned table for debugging output.
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!("{c:w$}  "));
        }
        out.push('\n');
        for row in &rendered {
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!("{cell:w$}  "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_table() {
        let s = FirstRowsSample {
            columns: vec!["county".into(), "race".into()],
            rows: vec![vec!["county_1".into(), "race_3".into()]],
        };
        let t = s.to_table_string();
        assert!(t.contains("county"));
        assert!(t.contains("race_3"));
    }
}
