//! The example pipelines of the evaluation (Table 1), as Python sources.
//!
//! These mirror the mlinspect repository's `example_pipelines/` — the same
//! operator sequences the paper benchmarks ("the pipelines are taken from the
//! mlinspect repository and their names were not changed", §6) — with file
//! paths flattened so the capture layer resolves them against registered
//! in-memory CSVs.

/// healthcare: read_csv ×2, merge, groupby+agg, merge, set-label, projection,
/// isin-selection, SimpleImputer+OneHotEncoder / StandardScaler
/// featurisation, neural-network training (paper Listing 4 + Figure 1).
pub const HEALTHCARE: &str = r#"
import pandas as pd
from sklearn.compose import ColumnTransformer
from sklearn.impute import SimpleImputer
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import OneHotEncoder, StandardScaler
from sklearn.model_selection import train_test_split

COUNTIES_OF_INTEREST = ['county2', 'county3']

patients = pd.read_csv('patients.csv', na_values='?')
histories = pd.read_csv('histories.csv', na_values='?')

data = patients.merge(histories, on=['ssn'])
complications = data.groupby('age_group').agg(mean_complications=('complications', 'mean'))
data = data.merge(complications, on=['age_group'])
data['label'] = data['complications'] > 1.2 * data['mean_complications']
data = data[['smoker', 'last_name', 'county', 'num_children', 'race', 'income', 'label']]
data = data[data['county'].isin(COUNTIES_OF_INTEREST)]

impute_and_one_hot_encode = Pipeline([
    ('impute', SimpleImputer(strategy='most_frequent')),
    ('encode', OneHotEncoder(sparse=False, handle_unknown='ignore')),
])
featurisation = ColumnTransformer(transformers=[
    ('impute_and_one_hot_encode', impute_and_one_hot_encode, ['smoker', 'county', 'race']),
    ('numeric', StandardScaler(), ['num_children', 'income']),
])
neural_net = KerasClassifier(epochs=10)
pipeline = Pipeline([('features', featurisation), ('learner', neural_net)])

train_data, test_data = train_test_split(data)
model = pipeline.fit(train_data, train_data['label'])
print(model.score(test_data, test_data['label']))
"#;

/// compas: read_csv ×2, projections, range/sentinel selections, replace,
/// label_binarize, SimpleImputer+OneHotEncoder / SimpleImputer+KBins
/// featurisation, logistic regression.
pub const COMPAS: &str = r#"
import pandas as pd
from sklearn.compose import ColumnTransformer
from sklearn.impute import SimpleImputer
from sklearn.linear_model import LogisticRegression
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import OneHotEncoder, KBinsDiscretizer, label_binarize

train = pd.read_csv('compas_train.csv', na_values='?')
test = pd.read_csv('compas_test.csv', na_values='?')

train = train[['sex', 'dob', 'age', 'c_charge_degree', 'race', 'score_text', 'priors_count',
               'days_b_screening_arrest', 'decile_score', 'is_recid', 'two_year_recid',
               'c_jail_in', 'c_jail_out']]
train = train[(train['days_b_screening_arrest'] <= 30) & (train['days_b_screening_arrest'] >= -30)]
train = train[train['is_recid'] != -1]
train = train[train['c_charge_degree'] != 'O']
train = train[train['score_text'] != 'N/A']
train = train.replace('Medium', 'Low')

test = test[(test['days_b_screening_arrest'] <= 30) & (test['days_b_screening_arrest'] >= -30)]
test = test[test['is_recid'] != -1]
test = test[test['c_charge_degree'] != 'O']
test = test[test['score_text'] != 'N/A']
test = test.replace('Medium', 'Low')

train_labels = label_binarize(train['score_text'], classes=['High', 'Low'])
test_labels = label_binarize(test['score_text'], classes=['High', 'Low'])

impute1_and_onehot = Pipeline([
    ('imputer1', SimpleImputer(strategy='most_frequent')),
    ('onehot', OneHotEncoder(handle_unknown='ignore')),
])
impute2_and_bin = Pipeline([
    ('imputer2', SimpleImputer(strategy='mean')),
    ('discretizer', KBinsDiscretizer(n_bins=4, encode='ordinal', strategy='uniform')),
])
featurizer = ColumnTransformer(transformers=[
    ('impute1_and_onehot', impute1_and_onehot, ['is_recid']),
    ('impute2_and_bin', impute2_and_bin, ['age']),
])
pipeline = Pipeline([('features', featurizer), ('classifier', LogisticRegression())])

pipeline.fit(train, train_labels.ravel())
print(pipeline.score(test, test_labels.ravel()))
"#;

/// adult simple: read_csv, dropna, label_binarize, StandardScaler
/// featurisation, logistic regression (Table 1's minimal pipeline).
pub const ADULT_SIMPLE: &str = r#"
import pandas as pd
from sklearn.compose import ColumnTransformer
from sklearn.linear_model import LogisticRegression
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler, label_binarize
from sklearn.model_selection import train_test_split

raw_data = pd.read_csv('adult_train.csv', na_values='?')
data = raw_data.dropna()

labels = label_binarize(data['income-per-year'], classes=['<=50K', '>50K'])

feature_transformation = ColumnTransformer(transformers=[
    ('numeric', StandardScaler(), ['age', 'education-num', 'hours-per-week']),
])
income_pipeline = Pipeline([
    ('features', feature_transformation),
    ('classifier', LogisticRegression()),
])

train_data, test_data = train_test_split(data)
train_labels = label_binarize(train_data['income-per-year'], classes=['<=50K', '>50K'])
test_labels = label_binarize(test_data['income-per-year'], classes=['<=50K', '>50K'])
income_pipeline.fit(train_data, train_labels.ravel())
print(income_pipeline.score(test_data, test_labels.ravel()))
"#;

/// adult complex: separate train/test files, label_binarize,
/// SimpleImputer+OneHotEncoder / StandardScaler featurisation, neural net.
pub const ADULT_COMPLEX: &str = r#"
import pandas as pd
from sklearn.compose import ColumnTransformer
from sklearn.impute import SimpleImputer
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import OneHotEncoder, StandardScaler, label_binarize

train = pd.read_csv('adult_train.csv', na_values='?')
test = pd.read_csv('adult_test.csv', na_values='?')

train_labels = label_binarize(train['income-per-year'], classes=['<=50K', '>50K'])
test_labels = label_binarize(test['income-per-year'], classes=['<=50K', '>50K'])

nested_categorical_feature_transformation = Pipeline([
    ('impute', SimpleImputer(strategy='most_frequent')),
    ('encode', OneHotEncoder(handle_unknown='ignore')),
])
nested_feature_transformation = ColumnTransformer(transformers=[
    ('categorical', nested_categorical_feature_transformation, ['education', 'workclass']),
    ('numeric', StandardScaler(), ['age', 'hours-per-week']),
])
nested_income_pipeline = Pipeline([
    ('features', nested_feature_transformation),
    ('classifier', KerasClassifier(epochs=10)),
])

nested_income_pipeline.fit(train, train_labels.ravel())
print(nested_income_pipeline.score(test, test_labels.ravel()))
"#;

/// The §6.6 taxi workload: one selection, inspection over 1..5 columns.
pub const TAXI: &str = r#"
import pandas as pd

data = pd.read_csv('taxi.csv')
data = data[data['passenger_count'] > 1]
"#;

/// All four benchmark pipelines with their paper names.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("healthcare", HEALTHCARE),
        ("compas", COMPAS),
        ("adult simple", ADULT_SIMPLE),
        ("adult complex", ADULT_COMPLEX),
    ]
}

/// The prefix of each pipeline containing only pandas operations (the §6.1
/// benchmark translates "all code up to the last line containing pandas
/// code").
pub fn pandas_prefix(name: &str) -> Option<&'static str> {
    Some(match name {
        "healthcare" => {
            r#"
import pandas as pd

COUNTIES_OF_INTEREST = ['county2', 'county3']

patients = pd.read_csv('patients.csv', na_values='?')
histories = pd.read_csv('histories.csv', na_values='?')

data = patients.merge(histories, on=['ssn'])
complications = data.groupby('age_group').agg(mean_complications=('complications', 'mean'))
data = data.merge(complications, on=['age_group'])
data['label'] = data['complications'] > 1.2 * data['mean_complications']
data = data[['smoker', 'last_name', 'county', 'num_children', 'race', 'income', 'label']]
data = data[data['county'].isin(COUNTIES_OF_INTEREST)]
print(data)
"#
        }
        "compas" => {
            r#"
import pandas as pd

train = pd.read_csv('compas_train.csv', na_values='?')

train = train[['sex', 'dob', 'age', 'c_charge_degree', 'race', 'score_text', 'priors_count',
               'days_b_screening_arrest', 'decile_score', 'is_recid', 'two_year_recid',
               'c_jail_in', 'c_jail_out']]
train = train[(train['days_b_screening_arrest'] <= 30) & (train['days_b_screening_arrest'] >= -30)]
train = train[train['is_recid'] != -1]
train = train[train['c_charge_degree'] != 'O']
train = train[train['score_text'] != 'N/A']
train = train.replace('Medium', 'Low')
print(train)
"#
        }
        "adult simple" => {
            r#"
import pandas as pd

raw_data = pd.read_csv('adult_train.csv', na_values='?')
data = raw_data.dropna()
print(data)
"#
        }
        "adult complex" => {
            r#"
import pandas as pd

train = pd.read_csv('adult_train.csv', na_values='?')
print(train)
"#
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pipelines_parse() {
        for (name, src) in all() {
            assert!(pyparser::parse(src).is_ok(), "{name} fails to parse");
        }
        assert!(pyparser::parse(TAXI).is_ok());
    }

    #[test]
    fn pandas_prefixes_parse() {
        for (name, _) in all() {
            let prefix = pandas_prefix(name).unwrap();
            assert!(pyparser::parse(prefix).is_ok(), "{name} prefix");
        }
        assert!(pandas_prefix("unknown").is_none());
    }
}
