//! The user-facing `PipelineInspector` API (paper Listing 6).

use crate::backends::pandas::{FileRegistry, PandasBackend};
use crate::backends::sql::{SqlBackend, TranspiledSql};
use crate::backends::{NodeRelation, RunArtifacts, RunConfig};
use crate::capture::{capture_with_seed, Captured};
use crate::checks::{evaluate_bias, evaluate_illegal_features, Check, CheckResult};
use crate::dag::{Dag, NodeId};
use crate::error::Result;
use crate::inspection::{Inspection, InspectionResults};
use sqlengine::Engine;
use std::collections::HashMap;

pub use crate::sqlgen::SqlMode;

/// Everything a run produces: the DAG, inspection measurements, check
/// verdicts and (for end-to-end pipelines) model accuracies.
#[derive(Debug, Clone)]
pub struct InspectorResult {
    /// The captured operator DAG.
    pub dag: Dag,
    /// Per-node inspection measurements.
    pub inspections: InspectionResults,
    /// One result per registered check.
    pub check_results: Vec<CheckResult>,
    /// Model accuracies (one per `score` call).
    pub accuracies: Vec<f64>,
    /// Operator outputs (only with [`PipelineInspector::keep_relations`]).
    pub relations: HashMap<NodeId, NodeRelation>,
    /// Per-operator wall-clock times.
    pub op_timings: Vec<(NodeId, String, std::time::Duration)>,
}

impl InspectorResult {
    /// The single accuracy of a pipeline that scores once.
    pub fn accuracy(&self) -> Option<f64> {
        match self.accuracies.as_slice() {
            [a] => Some(*a),
            _ => None,
        }
    }

    /// True when every check passed.
    pub fn all_checks_passed(&self) -> bool {
        self.check_results.iter().all(CheckResult::passed)
    }
}

/// Builder mirroring mlinspect's `PipelineInspector` with the paper's SQL
/// extension: the same inspection setup can run on the pandas baseline
/// ([`execute`]) or be transpiled to SQL and off-loaded to a database engine
/// ([`execute_in_sql`]).
///
/// [`execute`]: PipelineInspector::execute
/// [`execute_in_sql`]: PipelineInspector::execute_in_sql
pub struct PipelineInspector {
    source: String,
    files: FileRegistry,
    checks: Vec<Check>,
    inspections: Vec<Inspection>,
    seed: u64,
    keep_relations: bool,
}

impl PipelineInspector {
    /// Start from pipeline source code.
    pub fn on_pipeline(source: impl Into<String>) -> PipelineInspector {
        PipelineInspector {
            source: source.into(),
            files: FileRegistry::new(),
            checks: Vec::new(),
            inspections: Vec::new(),
            seed: 0,
            keep_relations: false,
        }
    }

    /// Register an in-memory CSV under the path the pipeline reads.
    pub fn with_file(mut self, path: impl Into<String>, content: impl Into<String>) -> Self {
        self.files.insert(path, content);
        self
    }

    /// Seed for the stochastic steps (split, model init) — Table 5 varies it.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Keep every operator's full output (equivalence testing).
    pub fn keep_relations(mut self, keep: bool) -> Self {
        self.keep_relations = keep;
        self
    }

    /// Add the `NoBiasIntroducedFor` check (implies `HistogramForColumns`).
    pub fn no_bias_introduced_for(mut self, columns: &[&str], threshold: f64) -> Self {
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        self.inspections
            .push(Inspection::HistogramForColumns(columns.clone()));
        self.checks
            .push(Check::NoBiasIntroducedFor { columns, threshold });
        self
    }

    /// Add the `NoIllegalFeatures` check.
    pub fn no_illegal_features(mut self, blacklist: &[&str]) -> Self {
        self.checks.push(Check::NoIllegalFeatures {
            blacklist: blacklist.iter().map(|c| c.to_string()).collect(),
        });
        self
    }

    /// Add a raw inspection.
    pub fn add_inspection(mut self, inspection: Inspection) -> Self {
        self.inspections.push(inspection);
        self
    }

    fn run_config(&self) -> RunConfig {
        // Merge histogram column lists.
        let mut columns: Vec<String> = Vec::new();
        for i in &self.inspections {
            if let Inspection::HistogramForColumns(cols) = i {
                for c in cols {
                    if !columns.contains(c) {
                        columns.push(c.clone());
                    }
                }
            }
        }
        let mut inspections: Vec<Inspection> = self
            .inspections
            .iter()
            .filter(|i| !matches!(i, Inspection::HistogramForColumns(_)))
            .cloned()
            .collect();
        if !columns.is_empty() {
            inspections.push(Inspection::HistogramForColumns(columns));
        }
        RunConfig {
            inspections,
            keep_relations: self.keep_relations,
            force_outputs: false,
            baseline_costs: Default::default(),
        }
    }

    fn capture(&self) -> Result<Captured> {
        capture_with_seed(&self.source, self.seed)
    }

    fn finish(&self, captured: Captured, artifacts: RunArtifacts) -> InspectorResult {
        let mut check_results = Vec::new();
        for check in &self.checks {
            check_results.push(match check {
                Check::NoBiasIntroducedFor { columns, threshold } => {
                    evaluate_bias(&captured.dag, &artifacts.inspections, columns, *threshold)
                }
                Check::NoIllegalFeatures { blacklist } => {
                    evaluate_illegal_features(&captured.dag, blacklist)
                }
            });
        }
        InspectorResult {
            dag: captured.dag,
            inspections: artifacts.inspections,
            check_results,
            accuracies: artifacts.accuracies,
            relations: artifacts.relations,
            op_timings: artifacts.op_timings,
        }
    }

    /// Execute on the pandas baseline backend.
    pub fn execute(self) -> Result<InspectorResult> {
        let captured = self.capture()?;
        let config = self.run_config();
        let artifacts = PandasBackend::run(&captured.dag, &self.files, &config)?;
        Ok(self.finish(captured, artifacts))
    }

    /// Transpile to SQL and execute on the given engine (paper Listing 6's
    /// `execute_in_sql(dbms=..., mode=..., materialize=...)`).
    pub fn execute_in_sql(
        self,
        engine: &mut Engine,
        mode: SqlMode,
        materialize: bool,
    ) -> Result<InspectorResult> {
        let captured = self.capture()?;
        let config = self.run_config();
        let artifacts = SqlBackend::run(
            &captured.dag,
            &self.files,
            &config,
            engine,
            mode,
            materialize,
        )?;
        Ok(self.finish(captured, artifacts))
    }

    /// Generate the SQL without executing it.
    pub fn transpile_only(self, mode: SqlMode) -> Result<TranspiledSql> {
        let captured = self.capture()?;
        SqlBackend::transpile(&captured.dag, &self.files, mode)
    }
}

/// One operator's bias verdict in an [`InspectionReport`]: how much the
/// operator shifted a sensitive column's value ratios versus its input.
#[derive(Debug, Clone, PartialEq)]
pub struct OpBiasVerdict {
    /// The inspected operator.
    pub node: NodeId,
    /// Operator label (e.g. `selection`, `join`).
    pub label: &'static str,
    /// 1-based pipeline source line.
    pub line: usize,
    /// The sensitive column.
    pub column: String,
    /// Largest absolute ratio change at this operator.
    pub max_abs_change: f64,
    /// True when the change stays below the threshold.
    pub passed: bool,
}

/// One pipeline line's runtime trace inside an [`InspectionReport`]: where
/// the time went and where rows were gained or lost, in DAG order.
#[derive(Debug, Clone, PartialEq)]
pub struct LineTrace {
    /// The traced operator.
    pub node: NodeId,
    /// 1-based pipeline source line.
    pub line: usize,
    /// Operator label (e.g. `selection`, `join`).
    pub label: &'static str,
    /// Wall-clock execution time of this operator, microseconds.
    pub time_us: u64,
    /// Rows entering the operator (first input's inspected cardinality),
    /// `None` when no histogram covered the input.
    pub rows_in: Option<u64>,
    /// Rows leaving the operator, `None` when uninspected.
    pub rows_out: Option<u64>,
}

impl LineTrace {
    /// Rows gained (positive) or lost (negative) at this operator.
    pub fn row_delta(&self) -> Option<i64> {
        match (self.rows_in, self.rows_out) {
            (Some(i), Some(o)) => Some(o as i64 - i as i64),
            _ => None,
        }
    }
}

/// The serving layer's inspection result: check verdicts plus one line per
/// (distribution-changing operator × sensitive column), renderable as a
/// plain-text wire body.
#[derive(Debug, Clone)]
pub struct InspectionReport {
    /// Check verdicts (`NoBiasIntroducedFor`, one per requested column set).
    pub check_results: Vec<CheckResult>,
    /// Per-operation bias verdicts.
    pub ops: Vec<OpBiasVerdict>,
    /// Model accuracies for end-to-end pipelines.
    pub accuracies: Vec<f64>,
    /// Per-pipeline-line timing and row-count deltas, in DAG order.
    pub lines: Vec<LineTrace>,
}

impl InspectionReport {
    /// True when no operator exceeded the threshold.
    pub fn all_passed(&self) -> bool {
        self.check_results.iter().all(CheckResult::passed)
    }

    /// Render as stable, line-oriented text (one `op ...` line per verdict),
    /// the body the server returns for `INSPECT`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.all_passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "inspection verdict={verdict} checks={} ops={}",
            self.check_results.len(),
            self.ops.len()
        );
        for acc in &self.accuracies {
            let _ = writeln!(out, "accuracy {acc:.4}");
        }
        for op in &self.ops {
            let _ = writeln!(
                out,
                "op id={} label={} line={} column={} max_change={:.4} verdict={}",
                op.node,
                op.label,
                op.line,
                op.column,
                op.max_abs_change,
                if op.passed { "ok" } else { "biased" }
            );
        }
        for trace in &self.lines {
            let fmt_rows = |r: Option<u64>| match r {
                Some(n) => n.to_string(),
                None => "?".to_string(),
            };
            let delta = match trace.row_delta() {
                Some(d) => format!("{d:+}"),
                None => "?".to_string(),
            };
            let _ = writeln!(
                out,
                "line no={} op={} time_us={} rows_in={} rows_out={} delta={}",
                trace.line,
                trace.label,
                trace.time_us,
                fmt_rows(trace.rows_in),
                fmt_rows(trace.rows_out),
                delta
            );
        }
        out
    }
}

/// Run a pipeline end-to-end on the SQL backend and report per-operation
/// bias verdicts — the single entry the serving layer (`elephant-server`'s
/// `INSPECT` verb) calls.
///
/// `files` registers in-memory CSVs under the paths the pipeline reads;
/// `columns`/`threshold` parameterize `NoBiasIntroducedFor`.
pub fn inspect_pipeline_in_sql(
    source: &str,
    files: &[(String, String)],
    columns: &[&str],
    threshold: f64,
    engine: &mut Engine,
    mode: SqlMode,
    materialize: bool,
) -> Result<InspectionReport> {
    let mut inspector = PipelineInspector::on_pipeline(source);
    for (path, content) in files {
        inspector = inspector.with_file(path.clone(), content.clone());
    }
    let result = inspector
        .no_bias_introduced_for(columns, threshold)
        .execute_in_sql(engine, mode, materialize)?;

    let mut ops = Vec::new();
    for node in &result.dag.nodes {
        if !node.kind.can_change_distribution() {
            continue;
        }
        let Some(input) = node.kind.inputs().first().copied() else {
            continue;
        };
        for column in columns {
            let (Some(before), Some(after)) = (
                result.inspections.histogram(input, column),
                result.inspections.histogram(node.id, column),
            ) else {
                continue;
            };
            let change = crate::inspection::HistogramChange {
                column: column.to_string(),
                before: before.clone(),
                after: after.clone(),
            };
            let max = change.max_abs_change();
            ops.push(OpBiasVerdict {
                node: node.id,
                label: node.kind.label(),
                line: node.line,
                column: column.to_string(),
                max_abs_change: max,
                passed: max < threshold,
            });
        }
    }
    // Per-line runtime trace: operator timing from the backend run, row
    // cardinalities from the first inspected column's histograms.
    let mut node_time: HashMap<NodeId, u64> = HashMap::new();
    for (id, _, elapsed) in &result.op_timings {
        *node_time.entry(*id).or_default() += elapsed.as_micros() as u64;
    }
    let node_rows = |id: NodeId| -> Option<u64> {
        columns
            .iter()
            .find_map(|c| result.inspections.histogram(id, c))
            .map(|h| h.total())
    };
    let mut lines = Vec::with_capacity(result.dag.nodes.len());
    for node in &result.dag.nodes {
        let rows_in = node.kind.inputs().first().copied().and_then(&node_rows);
        lines.push(LineTrace {
            node: node.id,
            line: node.line,
            label: node.kind.label(),
            time_us: node_time.get(&node.id).copied().unwrap_or(0),
            rows_in,
            rows_out: node_rows(node.id),
        });
    }

    Ok(InspectionReport {
        check_results: result.check_results,
        ops,
        accuracies: result.accuracies,
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipelines;
    use sqlengine::EngineProfile;

    fn inspector(src: &str) -> PipelineInspector {
        PipelineInspector::on_pipeline(src)
            .with_file("patients.csv", datagen::patients_csv(150, 1))
            .with_file("histories.csv", datagen::histories_csv(150, 1))
    }

    #[test]
    fn listing6_style_usage() {
        // Mirrors Listing 6: inspect race and age_group, run in a DBMS.
        let mut engine = Engine::new(EngineProfile::disk_based_no_latency());
        let result = inspector(pipelines::HEALTHCARE)
            .no_bias_introduced_for(&["race", "age_group"], 0.3)
            .no_illegal_features(&["race"])
            .execute_in_sql(&mut engine, SqlMode::View, true)
            .unwrap();
        assert_eq!(result.check_results.len(), 2);
        // race is used as a feature -> NoIllegalFeatures fails.
        assert!(!result.check_results[1].passed());
        assert!(result.accuracy().is_some());
    }

    #[test]
    fn both_backends_produce_check_results() {
        let baseline = inspector(pipelines::HEALTHCARE)
            .no_bias_introduced_for(&["age_group"], 0.25)
            .execute()
            .unwrap();
        let mut engine = Engine::new(EngineProfile::in_memory());
        let sql = inspector(pipelines::HEALTHCARE)
            .no_bias_introduced_for(&["age_group"], 0.25)
            .execute_in_sql(&mut engine, SqlMode::Cte, false)
            .unwrap();
        assert_eq!(
            baseline.check_results[0].passed(),
            sql.check_results[0].passed()
        );
    }

    #[test]
    fn transpile_only_requires_no_engine() {
        let sql = inspector(pipelines::HEALTHCARE)
            .transpile_only(SqlMode::Cte)
            .unwrap();
        assert!(sql.container.len() > 5);
    }

    #[test]
    fn server_entry_reports_per_op_verdicts() {
        let mut engine = Engine::new(EngineProfile::in_memory());
        let files = vec![
            ("patients.csv".to_string(), datagen::patients_csv(150, 1)),
            ("histories.csv".to_string(), datagen::histories_csv(150, 1)),
        ];
        let report = inspect_pipeline_in_sql(
            pipelines::HEALTHCARE,
            &files,
            &["age_group"],
            0.3,
            &mut engine,
            SqlMode::Cte,
            false,
        )
        .unwrap();
        assert_eq!(report.check_results.len(), 1);
        assert!(!report.ops.is_empty());
        let text = report.render();
        assert!(text.starts_with("inspection verdict="));
        assert!(text.contains("op id="));
        // One op line per verdict entry, all for the inspected column.
        assert_eq!(text.matches("column=age_group").count(), report.ops.len());

        // Per-line runtime trace: one entry per DAG node, with row deltas
        // where histograms covered the operator.
        assert!(!report.lines.is_empty());
        assert!(report.lines.iter().any(|l| l.rows_out.is_some()));
        assert!(report.lines.iter().any(|l| l.row_delta().is_some()));
        // The selection drops rows, so some delta must be negative.
        assert!(report
            .lines
            .iter()
            .filter_map(LineTrace::row_delta)
            .any(|d| d < 0));
        assert_eq!(text.matches("line no=").count(), report.lines.len());
        assert!(text.contains("time_us="), "{text}");
        assert!(text.contains("delta="), "{text}");
    }
}
