//! Error type for pipeline capture, translation and execution.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, MlError>;

/// Errors from the inspection framework.
#[derive(Debug)]
pub enum MlError {
    /// Python source failed to parse.
    Parse(pyparser::ParseError),
    /// The pipeline uses a construct the capture layer does not support.
    Unsupported {
        /// 1-based pipeline source line.
        line: usize,
        /// What was encountered.
        what: String,
    },
    /// Name used before assignment, bad argument, etc.
    Capture {
        /// 1-based pipeline source line.
        line: usize,
        /// Description.
        message: String,
    },
    /// A referenced CSV file is not registered and not on disk.
    MissingFile(String),
    /// SQL layer failure.
    Sql(sqlengine::SqlError),
    /// Dataframe layer failure.
    Frame(dataframe::DfError),
    /// sklearn layer failure.
    Sklearn(sklearn::SkError),
    /// Value layer failure.
    Value(etypes::Error),
    /// Internal invariant broken (a bug).
    Internal(String),
}

impl MlError {
    pub(crate) fn unsupported(line: usize, what: impl Into<String>) -> MlError {
        MlError::Unsupported {
            line,
            what: what.into(),
        }
    }

    pub(crate) fn capture(line: usize, message: impl Into<String>) -> MlError {
        MlError::Capture {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Parse(e) => write!(f, "pipeline parse error: {e}"),
            MlError::Unsupported { line, what } => {
                write!(f, "line {line}: unsupported pipeline construct: {what}")
            }
            MlError::Capture { line, message } => write!(f, "line {line}: {message}"),
            MlError::MissingFile(p) => write!(f, "pipeline reads unknown file '{p}'"),
            MlError::Sql(e) => write!(f, "sql backend: {e}"),
            MlError::Frame(e) => write!(f, "pandas backend: {e}"),
            MlError::Sklearn(e) => write!(f, "sklearn: {e}"),
            MlError::Value(e) => write!(f, "{e}"),
            MlError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<pyparser::ParseError> for MlError {
    fn from(e: pyparser::ParseError) -> Self {
        MlError::Parse(e)
    }
}
impl From<sqlengine::SqlError> for MlError {
    fn from(e: sqlengine::SqlError) -> Self {
        MlError::Sql(e)
    }
}
impl From<dataframe::DfError> for MlError {
    fn from(e: dataframe::DfError) -> Self {
        MlError::Frame(e)
    }
}
impl From<sklearn::SkError> for MlError {
    fn from(e: sklearn::SkError) -> Self {
        MlError::Sklearn(e)
    }
}
impl From<etypes::Error> for MlError {
    fn from(e: etypes::Error) -> Self {
        MlError::Value(e)
    }
}
