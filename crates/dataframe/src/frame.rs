//! `DataFrame`: an ordered collection of equal-length [`Series`].

use crate::error::{DfError, Result};
use crate::groupby::GroupBy;
use crate::series::Series;
use etypes::{DataType, Value};

/// A pandas-like dataframe. Column-major storage; every operation eagerly
/// materializes a new frame (faithful to the baseline's cost model).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    columns: Vec<Series>,
}

impl DataFrame {
    /// Empty frame.
    pub fn new() -> DataFrame {
        DataFrame::default()
    }

    /// Build from a list of series (must be equal length, unique names).
    pub fn from_columns(columns: Vec<Series>) -> Result<DataFrame> {
        let mut df = DataFrame::new();
        for s in columns {
            df.insert(s)?;
        }
        Ok(df)
    }

    /// Build from column names plus row-major cells.
    pub fn from_rows(names: &[String], rows: &[Vec<Value>]) -> Result<DataFrame> {
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); names.len()];
        for row in rows {
            if row.len() != names.len() {
                return Err(DfError::LengthMismatch {
                    left: row.len(),
                    right: names.len(),
                });
            }
            for (i, v) in row.iter().enumerate() {
                cols[i].push(v.clone());
            }
        }
        DataFrame::from_columns(
            names
                .iter()
                .zip(cols)
                .map(|(n, vs)| Series::new(n.clone(), vs))
                .collect(),
        )
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Series::len)
    }

    /// True when there are no rows (a frame with columns but zero rows is
    /// also empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Series::name).collect()
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Series] {
        &self.columns
    }

    /// Borrow one column (pandas `df['name']`).
    pub fn column(&self, name: &str) -> Result<&Series> {
        self.columns
            .iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| DfError::UnknownColumn(name.to_string()))
    }

    /// True if the column exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|s| s.name() == name)
    }

    /// Append a new column; errors on duplicates or length mismatch.
    pub fn insert(&mut self, series: Series) -> Result<()> {
        if self.has_column(series.name()) {
            return Err(DfError::DuplicateColumn(series.name().to_string()));
        }
        if !self.columns.is_empty() && series.len() != self.len() {
            return Err(DfError::LengthMismatch {
                left: self.len(),
                right: series.len(),
            });
        }
        self.columns.push(series);
        Ok(())
    }

    /// pandas `df[name] = series`: insert or overwrite in place.
    pub fn set_column(&mut self, name: &str, series: Series) -> Result<()> {
        let series = series.with_name(name);
        if !self.columns.is_empty() && series.len() != self.len() {
            return Err(DfError::LengthMismatch {
                left: self.len(),
                right: series.len(),
            });
        }
        if let Some(slot) = self.columns.iter_mut().find(|s| s.name() == name) {
            *slot = series;
        } else {
            self.columns.push(series);
        }
        Ok(())
    }

    /// pandas `df[['a', 'b']]`: projection, in the requested order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for n in names {
            out.insert(self.column(n)?.clone())?;
        }
        // Preserve row count even when projecting zero columns.
        Ok(out)
    }

    /// Drop columns by name (ignores missing names, pandas `errors='ignore'`).
    pub fn drop_columns(&self, names: &[&str]) -> DataFrame {
        DataFrame {
            columns: self
                .columns
                .iter()
                .filter(|s| !names.contains(&s.name()))
                .cloned()
                .collect(),
        }
    }

    /// pandas `df[mask]`: keep rows where the mask is true.
    pub fn filter(&self, mask: &Series) -> Result<DataFrame> {
        if mask.len() != self.len() {
            return Err(DfError::LengthMismatch {
                left: self.len(),
                right: mask.len(),
            });
        }
        let keep = mask.as_mask()?;
        Ok(self.take_where(&keep))
    }

    fn take_where(&self, keep: &[bool]) -> DataFrame {
        DataFrame {
            columns: self
                .columns
                .iter()
                .map(|s| {
                    let vals = s
                        .values()
                        .iter()
                        .zip(keep)
                        .filter(|(_, k)| **k)
                        .map(|(v, _)| v.clone())
                        .collect();
                    Series::new(s.name().to_string(), vals)
                })
                .collect(),
        }
    }

    /// Select rows by index (used by train/test splitting).
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        DataFrame {
            columns: self
                .columns
                .iter()
                .map(|s| {
                    let vals = indices.iter().map(|&i| s.values()[i].clone()).collect();
                    Series::new(s.name().to_string(), vals)
                })
                .collect(),
        }
    }

    /// pandas `df.head(n)`.
    pub fn head(&self, n: usize) -> DataFrame {
        let n = n.min(self.len());
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx)
    }

    /// pandas `df.dropna()`: drop rows containing any NULL.
    pub fn dropna(&self) -> DataFrame {
        let keep: Vec<bool> = (0..self.len())
            .map(|i| self.columns.iter().all(|s| !s.values()[i].is_null()))
            .collect();
        self.take_where(&keep)
    }

    /// pandas `df.replace(from, to)` across all columns.
    pub fn replace(&self, from: &Value, to: &Value) -> DataFrame {
        DataFrame {
            columns: self.columns.iter().map(|s| s.replace(from, to)).collect(),
        }
    }

    /// Begin a group-by (pandas `df.groupby(keys)`).
    pub fn groupby(&self, keys: &[&str]) -> Result<GroupBy<'_>> {
        GroupBy::new(self, keys)
    }

    /// One materialized row (cloned).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|s| s.values()[i].clone()).collect()
    }

    /// Materialize all rows (row-major).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len()).map(|i| self.row(i)).collect()
    }

    /// Column dtypes in order.
    pub fn dtypes(&self) -> Vec<DataType> {
        self.columns.iter().map(Series::dtype).collect()
    }

    /// Stable sort by the given columns ascending (used for deterministic
    /// comparisons with SQL results in tests).
    pub fn sort_by(&self, keys: &[&str]) -> Result<DataFrame> {
        let key_cols: Vec<&Series> = keys
            .iter()
            .map(|k| self.column(k))
            .collect::<Result<Vec<_>>>()?;
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| {
            for col in &key_cols {
                let ord = col.values()[a].cmp(&col.values()[b]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&idx))
    }

    /// Rename a column.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        if self.has_column(to) && from != to {
            return Err(DfError::DuplicateColumn(to.to_string()));
        }
        let slot = self
            .columns
            .iter_mut()
            .find(|s| s.name() == from)
            .ok_or_else(|| DfError::UnknownColumn(from.to_string()))?;
        *slot = std::mem::replace(slot, Series::new("", Vec::new())).with_name(to);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::ElemOp;

    fn demo() -> DataFrame {
        DataFrame::from_columns(vec![
            Series::new("a", vec![1.into(), 2.into(), 3.into()]),
            Series::new("s", vec!["x".into(), Value::Null, "y".into()]),
        ])
        .unwrap()
    }

    #[test]
    fn select_projects_in_order() {
        let df = demo();
        let p = df.select(&["s", "a"]).unwrap();
        assert_eq!(p.column_names(), vec!["s", "a"]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn filter_with_computed_mask() {
        let df = demo();
        let mask = df
            .column("a")
            .unwrap()
            .binary_scalar(ElemOp::Gt, &Value::Int(1))
            .unwrap();
        let f = df.filter(&mask).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.column("a").unwrap().values()[0], Value::Int(2));
    }

    #[test]
    fn dropna_removes_rows_with_any_null() {
        let df = demo();
        assert_eq!(df.dropna().len(), 2);
    }

    #[test]
    fn set_column_overwrites_or_appends() {
        let mut df = demo();
        df.set_column(
            "b",
            Series::new("ignored", vec![9.into(), 9.into(), 9.into()]),
        )
        .unwrap();
        assert_eq!(df.width(), 3);
        df.set_column("a", Series::new("", vec![0.into(), 0.into(), 0.into()]))
            .unwrap();
        assert_eq!(df.column("a").unwrap().values()[2], Value::Int(0));
        assert_eq!(df.width(), 3);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut df = demo();
        assert!(matches!(
            df.insert(Series::new("a", vec![1.into(), 2.into(), 3.into()])),
            Err(DfError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn row_round_trip() {
        let df = demo();
        let rows = df.to_rows();
        let names: Vec<String> = df.column_names().iter().map(|s| s.to_string()).collect();
        let back = DataFrame::from_rows(&names, &rows).unwrap();
        assert_eq!(df, back);
    }

    #[test]
    fn sort_by_orders_rows_null_first() {
        let df = demo();
        let sorted = df.sort_by(&["s"]).unwrap();
        assert_eq!(sorted.column("s").unwrap().values()[0], Value::Null);
    }

    #[test]
    fn head_truncates() {
        assert_eq!(demo().head(2).len(), 2);
        assert_eq!(demo().head(99).len(), 3);
    }

    #[test]
    fn take_reorders() {
        let df = demo().take(&[2, 0]);
        assert_eq!(df.column("a").unwrap().values(), &[3.into(), 1.into()]);
    }

    #[test]
    fn rename_column() {
        let mut df = demo();
        df.rename("a", "alpha").unwrap();
        assert!(df.has_column("alpha"));
        assert!(df.rename("alpha", "s").is_err());
    }
}
