//! `read_csv` — the frame constructor every pipeline starts with.

use crate::error::Result;
use crate::frame::DataFrame;
use crate::series::Series;
use etypes::{CsvOptions, Value};
use std::path::Path;

/// pandas `pd.read_csv(path, na_values=...)`.
pub fn read_csv(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<DataFrame> {
    let table = etypes::read_csv(path, opts)?;
    from_table(table)
}

/// Same as [`read_csv`] but from in-memory text (tests, generated data).
pub fn read_csv_str(text: &str, opts: &CsvOptions) -> Result<DataFrame> {
    let table = etypes::read_csv_str(text, opts)?;
    from_table(table)
}

fn from_table(table: etypes::CsvTable) -> Result<DataFrame> {
    let ncols = table.columns.len();
    let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(table.rows.len()); ncols];
    for row in table.rows {
        for (i, v) in row.into_iter().enumerate() {
            cols[i].push(v);
        }
    }
    DataFrame::from_columns(
        table
            .columns
            .into_iter()
            .zip(cols)
            .map(|(n, vs)| Series::new(n, vs))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::DataType;

    #[test]
    fn reads_typed_frame() {
        let df = read_csv_str(
            "age,income,county\n34,1000.5,county1\n40,,county2\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(df.len(), 2);
        assert_eq!(df.column("age").unwrap().dtype(), DataType::Int);
        assert_eq!(df.column("income").unwrap().values()[1], Value::Null);
    }

    #[test]
    fn na_values_question_mark() {
        let df = read_csv_str(
            "smoker,complications\n?,3\nyes,2\n",
            &CsvOptions::default().with_na("?"),
        )
        .unwrap();
        assert_eq!(df.column("smoker").unwrap().values()[0], Value::Null);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("be_df_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, "a,b\n1,x\n2,y\n").unwrap();
        let df = read_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(df.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
