#![warn(missing_docs)]
//! A pandas-like eager dataframe library.
//!
//! This crate is the **baseline** of the paper's evaluation: the original
//! pipelines execute against pandas, and the SQL translation is benchmarked
//! against it. The implementation is deliberately faithful to pandas'
//! execution model rather than to a database's:
//!
//! * every operation **eagerly materializes** its full result (one new frame
//!   per pipeline line — the cost model the paper's SQL offloading beats),
//! * merges treat NULL as a joinable value (pandas semantics, paper §5.1.2),
//! * comparisons involving NULL yield `false` (NaN semantics), while
//!   arithmetic involving NULL yields NULL,
//! * aggregations skip NULLs (pandas `skipna=True` default).
//!
//! The API mirrors the pandas calls used by the mlinspect example pipelines:
//! `read_csv`, `merge`, `groupby().agg`, `__getitem__` projection/selection,
//! element-wise arithmetic and boolean operators, `__setitem__`, `dropna`,
//! `replace`, `isin`.

pub mod error;
pub mod frame;
pub mod groupby;
pub mod io;
pub mod join;
pub mod series;

pub use error::{DfError, Result};
pub use frame::DataFrame;
pub use groupby::{AggFunc, AggSpec, GroupBy};
pub use io::{read_csv, read_csv_str};
pub use join::JoinType;
pub use series::{ElemOp, Series};
