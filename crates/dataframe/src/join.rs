//! pandas `merge`.

use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::series::Series;
use etypes::Value;
use std::collections::HashMap;

/// Join types supported by the pipelines (`how=` argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Default pandas merge.
    Inner,
    /// Keep all left rows.
    Left,
    /// Keep all right rows.
    Right,
    /// Cartesian product (`how='cross'`).
    Cross,
}

impl JoinType {
    /// Parse the pandas `how=` string.
    pub fn parse(s: &str) -> Option<JoinType> {
        Some(match s {
            "inner" => JoinType::Inner,
            "left" => JoinType::Left,
            "right" => JoinType::Right,
            "cross" => JoinType::Cross,
            _ => return None,
        })
    }
}

impl DataFrame {
    /// pandas `left.merge(right, on=keys, how=...)`.
    ///
    /// Key columns appear once (from the left side except for pure right
    /// rows); non-key columns from both sides follow, left first. Name
    /// collisions on non-key columns get pandas' `_x`/`_y` suffixes. NULL
    /// keys join NULL keys, matching pandas (paper §5.1.2 mimics this in SQL
    /// with an `is null and is null` disjunct).
    pub fn merge(&self, right: &DataFrame, on: &[&str], how: JoinType) -> Result<DataFrame> {
        if how == JoinType::Cross {
            return self.cross_join(right);
        }
        for k in on {
            self.column(k)?;
            right.column(k)?;
        }
        if on.is_empty() {
            return Err(DfError::Invalid("merge requires join keys".to_string()));
        }

        // Hash the right side on the key tuple.
        let right_keys: Vec<&Series> = on.iter().map(|k| right.column(k).unwrap()).collect();
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for i in 0..right.len() {
            let key: Vec<Value> = right_keys.iter().map(|c| c.values()[i].clone()).collect();
            index.entry(key).or_default().push(i);
        }

        let left_keys: Vec<&Series> = on.iter().map(|k| self.column(k).unwrap()).collect();
        let mut pairs: Vec<(Option<usize>, Option<usize>)> = Vec::new();
        let mut right_matched = vec![false; right.len()];
        for i in 0..self.len() {
            let key: Vec<Value> = left_keys.iter().map(|c| c.values()[i].clone()).collect();
            match index.get(&key) {
                Some(rows) => {
                    for &j in rows {
                        right_matched[j] = true;
                        pairs.push((Some(i), Some(j)));
                    }
                }
                None => {
                    if how == JoinType::Left {
                        pairs.push((Some(i), None));
                    }
                }
            }
        }
        if how == JoinType::Right {
            for (j, matched) in right_matched.iter().enumerate() {
                if !matched {
                    pairs.push((None, Some(j)));
                }
            }
        }

        self.assemble(right, on, &pairs)
    }

    fn cross_join(&self, right: &DataFrame) -> Result<DataFrame> {
        let mut pairs = Vec::with_capacity(self.len() * right.len());
        for i in 0..self.len() {
            for j in 0..right.len() {
                pairs.push((Some(i), Some(j)));
            }
        }
        self.assemble(right, &[], &pairs)
    }

    fn assemble(
        &self,
        right: &DataFrame,
        on: &[&str],
        pairs: &[(Option<usize>, Option<usize>)],
    ) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        let pick = |col: &Series, side_left: bool| -> Vec<Value> {
            pairs
                .iter()
                .map(|(l, r)| {
                    let idx = if side_left { *l } else { *r };
                    idx.map_or(Value::Null, |i| col.values()[i].clone())
                })
                .collect()
        };

        // Key columns: left value, falling back to right for right-only rows.
        for k in on {
            let lcol = self.column(k)?;
            let rcol = right.column(k)?;
            let vals: Vec<Value> = pairs
                .iter()
                .map(|(l, r)| match (l, r) {
                    (Some(i), _) => lcol.values()[*i].clone(),
                    (None, Some(j)) => rcol.values()[*j].clone(),
                    (None, None) => Value::Null,
                })
                .collect();
            out.insert(Series::new(k.to_string(), vals))?;
        }

        let is_key = |name: &str| on.contains(&name);
        for col in self.columns() {
            if is_key(col.name()) {
                continue;
            }
            let name = if right.has_column(col.name()) && !is_key(col.name()) {
                format!("{}_x", col.name())
            } else {
                col.name().to_string()
            };
            out.insert(Series::new(name, pick(col, true)))?;
        }
        for col in right.columns() {
            if is_key(col.name()) {
                continue;
            }
            let name = if self.has_column(col.name()) {
                format!("{}_y", col.name())
            } else {
                col.name().to_string()
            };
            out.insert(Series::new(name, pick(col, false)))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patients() -> DataFrame {
        DataFrame::from_columns(vec![
            Series::new("ssn", vec!["s1".into(), "s2".into(), "s3".into()]),
            Series::new("race", vec!["r1".into(), "r2".into(), "r2".into()]),
        ])
        .unwrap()
    }

    fn histories() -> DataFrame {
        DataFrame::from_columns(vec![
            Series::new("ssn", vec!["s2".into(), "s3".into(), "s4".into()]),
            Series::new("smoker", vec!["yes".into(), "no".into(), "no".into()]),
        ])
        .unwrap()
    }

    #[test]
    fn inner_merge_on_key() {
        let m = patients()
            .merge(&histories(), &["ssn"], JoinType::Inner)
            .unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.column_names(), vec!["ssn", "race", "smoker"]);
        assert_eq!(
            m.column("ssn").unwrap().values(),
            &["s2".into(), "s3".into()]
        );
    }

    #[test]
    fn left_and_right_merge_pad_with_null() {
        let l = patients()
            .merge(&histories(), &["ssn"], JoinType::Left)
            .unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.column("smoker").unwrap().values()[0], Value::Null);

        let r = patients()
            .merge(&histories(), &["ssn"], JoinType::Right)
            .unwrap();
        assert_eq!(r.len(), 3);
        let ssns = r.column("ssn").unwrap();
        assert!(ssns.values().contains(&"s4".into()));
    }

    #[test]
    fn null_keys_join_each_other_like_pandas() {
        let a = DataFrame::from_columns(vec![
            Series::new("k", vec![Value::Null, "x".into()]),
            Series::new("va", vec![1.into(), 2.into()]),
        ])
        .unwrap();
        let b = DataFrame::from_columns(vec![
            Series::new("k", vec![Value::Null]),
            Series::new("vb", vec![10.into()]),
        ])
        .unwrap();
        let m = a.merge(&b, &["k"], JoinType::Inner).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.column("va").unwrap().values(), &[1.into()]);
    }

    #[test]
    fn duplicate_keys_multiply_rows() {
        let dup = DataFrame::from_columns(vec![
            Series::new("ssn", vec!["s2".into(), "s2".into()]),
            Series::new("extra", vec![1.into(), 2.into()]),
        ])
        .unwrap();
        let m = patients().merge(&dup, &["ssn"], JoinType::Inner).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn name_collisions_get_suffixes() {
        let a = DataFrame::from_columns(vec![
            Series::new("k", vec!["x".into()]),
            Series::new("v", vec![1.into()]),
        ])
        .unwrap();
        let b = DataFrame::from_columns(vec![
            Series::new("k", vec!["x".into()]),
            Series::new("v", vec![2.into()]),
        ])
        .unwrap();
        let m = a.merge(&b, &["k"], JoinType::Inner).unwrap();
        assert_eq!(m.column_names(), vec!["k", "v_x", "v_y"]);
    }

    #[test]
    fn cross_join() {
        let m = patients()
            .merge(&histories(), &[], JoinType::Cross)
            .unwrap();
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn merge_without_keys_is_error_for_inner() {
        assert!(patients()
            .merge(&histories(), &[], JoinType::Inner)
            .is_err());
    }
}
