//! `Series`: a single named column with element-wise operations.

use crate::error::{DfError, Result};
use etypes::{DataType, Value};
use std::collections::HashSet;

/// A named column of values, the unit pandas' `__getitem__` returns and
/// element-wise operators work on.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    values: Vec<Value>,
}

/// The element-wise binary operators the pipeline subset needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always float).
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `&` (NaN counts as false).
    And,
    /// `|` (NaN counts as false).
    Or,
}

impl ElemOp {
    /// True for the six comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            ElemOp::Lt | ElemOp::Gt | ElemOp::Le | ElemOp::Ge | ElemOp::Eq | ElemOp::NotEq
        )
    }
}

impl Series {
    /// Construct from a name and values.
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Series {
        Series {
            name: name.into(),
            values,
        }
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename, consuming self (pandas `rename`).
    pub fn with_name(mut self, name: impl Into<String>) -> Series {
        self.name = name.into();
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the raw values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Dominant (non-null) type of the column, `Text` for all-null.
    pub fn dtype(&self) -> DataType {
        self.values
            .iter()
            .find_map(Value::data_type)
            .unwrap_or(DataType::Text)
    }

    /// Element-wise operation against another series.
    ///
    /// NULL semantics follow pandas: comparisons with NULL yield `false`,
    /// arithmetic with NULL yields NULL, `&`/`|` treat NULL as false.
    pub fn binary(&self, op: ElemOp, other: &Series) -> Result<Series> {
        if self.len() != other.len() {
            return Err(DfError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| elem_binary(op, a, b))
            .collect::<Result<Vec<_>>>()?;
        Ok(Series::new(self.name.clone(), values))
    }

    /// Element-wise operation against a scalar (broadcast).
    pub fn binary_scalar(&self, op: ElemOp, scalar: &Value) -> Result<Series> {
        let values = self
            .values
            .iter()
            .map(|a| elem_binary(op, a, scalar))
            .collect::<Result<Vec<_>>>()?;
        Ok(Series::new(self.name.clone(), values))
    }

    /// Scalar on the left (`1.2 * series`).
    pub fn rbinary_scalar(&self, op: ElemOp, scalar: &Value) -> Result<Series> {
        let values = self
            .values
            .iter()
            .map(|b| elem_binary(op, scalar, b))
            .collect::<Result<Vec<_>>>()?;
        Ok(Series::new(self.name.clone(), values))
    }

    /// Element-wise negation (`-s`).
    pub fn neg(&self) -> Result<Series> {
        self.rbinary_scalar(ElemOp::Sub, &Value::Int(0))
    }

    /// Element-wise boolean inversion (`~mask`). NULL inverts to NULL.
    pub fn invert(&self) -> Result<Series> {
        let values = self
            .values
            .iter()
            .map(|v| match v {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(DfError::Invalid(format!("cannot invert {other}"))),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Series::new(self.name.clone(), values))
    }

    /// pandas `Series.isin`: membership mask. NULL is only `in` if the
    /// candidate list contains NULL.
    pub fn isin(&self, candidates: &[Value]) -> Series {
        let set: HashSet<&Value> = candidates.iter().collect();
        let values = self
            .values
            .iter()
            .map(|v| Value::Bool(set.contains(v)))
            .collect();
        Series::new(self.name.clone(), values)
    }

    /// pandas `Series.replace`: whole-value substitution.
    pub fn replace(&self, from: &Value, to: &Value) -> Series {
        let values = self
            .values
            .iter()
            .map(|v| if v == from { to.clone() } else { v.clone() })
            .collect();
        Series::new(self.name.clone(), values)
    }

    /// pandas `Series.fillna`.
    pub fn fillna(&self, fill: &Value) -> Series {
        let values = self
            .values
            .iter()
            .map(|v| if v.is_null() { fill.clone() } else { v.clone() })
            .collect();
        Series::new(self.name.clone(), values)
    }

    /// Boolean mask view of the series (errors on non-boolean non-null).
    pub fn as_mask(&self) -> Result<Vec<bool>> {
        self.values
            .iter()
            .map(|v| match v {
                Value::Bool(b) => Ok(*b),
                Value::Null => Ok(false),
                other => Err(DfError::Invalid(format!("non-boolean mask value {other}"))),
            })
            .collect()
    }

    /// Count of non-null entries (pandas `count`).
    pub fn count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// Mean of non-null entries.
    pub fn mean(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for v in &self.values {
            if let Ok(f) = v.as_f64() {
                sum += f;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Population standard deviation of non-null entries
    /// (matches SQL `stddev_pop`, which the StandardScaler translation uses).
    pub fn std_pop(&self) -> Option<f64> {
        let mean = self.mean()?;
        let mut ss = 0.0;
        let mut n = 0usize;
        for v in &self.values {
            if let Ok(f) = v.as_f64() {
                ss += (f - mean) * (f - mean);
                n += 1;
            }
        }
        (n > 0).then(|| (ss / n as f64).sqrt())
    }

    /// Minimum non-null value.
    pub fn min(&self) -> Option<&Value> {
        self.values.iter().filter(|v| !v.is_null()).min()
    }

    /// Maximum non-null value.
    pub fn max(&self) -> Option<&Value> {
        self.values.iter().filter(|v| !v.is_null()).max()
    }

    /// Distinct non-null values in first-seen order (pandas `unique` minus
    /// NaN).
    pub fn unique(&self) -> Vec<Value> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for v in &self.values {
            if !v.is_null() && seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        out
    }
}

fn elem_binary(op: ElemOp, a: &Value, b: &Value) -> Result<Value> {
    use ElemOp::*;
    if a.is_null() || b.is_null() {
        return Ok(match op {
            // pandas: NaN comparisons are False.
            Lt | Gt | Le | Ge | Eq | NotEq => Value::Bool(false),
            // pandas: boolean ops treat NaN as False.
            And | Or => {
                let av = matches!(a, Value::Bool(true));
                let bv = matches!(b, Value::Bool(true));
                Value::Bool(if op == And { av && bv } else { av || bv })
            }
            // pandas: arithmetic with NaN is NaN.
            _ => Value::Null,
        });
    }
    Ok(match op {
        Add => {
            if let (Value::Text(x), Value::Text(y)) = (a, b) {
                Value::Text(format!("{x}{y}"))
            } else {
                numeric(a, b, |x, y| x + y)?
            }
        }
        Sub => numeric(a, b, |x, y| x - y)?,
        Mul => numeric(a, b, |x, y| x * y)?,
        Div => Value::Float(a.as_f64()? / b.as_f64()?),
        Mod => numeric(a, b, |x, y| x % y)?,
        Lt => Value::Bool(a < b),
        Gt => Value::Bool(a > b),
        Le => Value::Bool(a <= b),
        Ge => Value::Bool(a >= b),
        Eq => Value::Bool(a == b),
        NotEq => Value::Bool(a != b),
        And => Value::Bool(a.as_bool()? && b.as_bool()?),
        Or => Value::Bool(a.as_bool()? || b.as_bool()?),
    })
}

fn numeric(a: &Value, b: &Value, f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    // Integer-preserving when both sides are integers and f is exact there.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let r = f(*x as f64, *y as f64);
        if r.fract() == 0.0 && r.abs() < 9.0e15 {
            return Ok(Value::Int(r as i64));
        }
        return Ok(Value::Float(r));
    }
    Ok(Value::Float(f(a.as_f64()?, b.as_f64()?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(vals: &[i64]) -> Series {
        Series::new("x", vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn arithmetic_preserves_int() {
        let r = s(&[1, 2]).binary(ElemOp::Add, &s(&[10, 20])).unwrap();
        assert_eq!(r.values(), &[Value::Int(11), Value::Int(22)]);
    }

    #[test]
    fn division_is_float() {
        let r = s(&[3]).binary(ElemOp::Div, &s(&[2])).unwrap();
        assert_eq!(r.values(), &[Value::Float(1.5)]);
    }

    #[test]
    fn null_comparison_is_false_null_arithmetic_is_null() {
        let a = Series::new("a", vec![Value::Null, Value::Int(5)]);
        let b = s(&[1, 1]);
        let cmp = a.binary(ElemOp::Gt, &b).unwrap();
        assert_eq!(cmp.values(), &[Value::Bool(false), Value::Bool(true)]);
        let add = a.binary(ElemOp::Add, &b).unwrap();
        assert_eq!(add.values()[0], Value::Null);
    }

    #[test]
    fn scalar_broadcast_both_sides() {
        let r = s(&[10])
            .binary_scalar(ElemOp::Mul, &Value::Float(1.2))
            .unwrap();
        assert_eq!(r.values(), &[Value::Float(12.0)]);
        let r = s(&[10])
            .rbinary_scalar(ElemOp::Sub, &Value::Int(3))
            .unwrap();
        assert_eq!(r.values(), &[Value::Int(-7)]);
    }

    #[test]
    fn isin_mask() {
        let counties = Series::new(
            "county",
            vec!["county1".into(), "county2".into(), Value::Null],
        );
        let mask = counties.isin(&["county2".into(), "county3".into()]);
        assert_eq!(
            mask.values(),
            &[Value::Bool(false), Value::Bool(true), Value::Bool(false)]
        );
    }

    #[test]
    fn replace_whole_values_only() {
        let sc = Series::new("t", vec!["Medium".into(), "MediumX".into()]);
        let r = sc.replace(&"Medium".into(), &"Low".into());
        assert_eq!(r.values(), &[Value::text("Low"), Value::text("MediumX")]);
    }

    #[test]
    fn aggregates_skip_null() {
        let a = Series::new("a", vec![Value::Int(2), Value::Null, Value::Int(4)]);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.std_pop(), Some(1.0));
        assert_eq!(a.min(), Some(&Value::Int(2)));
        assert_eq!(a.max(), Some(&Value::Int(4)));
    }

    #[test]
    fn unique_preserves_first_seen_order() {
        let a = Series::new(
            "a",
            vec!["b".into(), "a".into(), Value::Null, "b".into(), "c".into()],
        );
        assert_eq!(
            a.unique(),
            vec![Value::text("b"), Value::text("a"), Value::text("c")]
        );
    }

    #[test]
    fn invert_and_mask() {
        let m = Series::new(
            "m",
            vec![Value::Bool(true), Value::Null, Value::Bool(false)],
        );
        assert_eq!(m.as_mask().unwrap(), vec![true, false, false]);
        let inv = m.invert().unwrap();
        assert_eq!(
            inv.values(),
            &[Value::Bool(false), Value::Null, Value::Bool(true)]
        );
    }

    #[test]
    fn length_mismatch_is_error() {
        assert!(s(&[1]).binary(ElemOp::Add, &s(&[1, 2])).is_err());
    }

    #[test]
    fn string_concatenation() {
        let a = Series::new("a", vec!["x".into()]);
        let b = Series::new("b", vec!["y".into()]);
        assert_eq!(
            a.binary(ElemOp::Add, &b).unwrap().values(),
            &[Value::text("xy")]
        );
    }
}
