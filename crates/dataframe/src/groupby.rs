//! pandas-style group-by with named aggregations.

use crate::error::{DfError, Result};
use crate::frame::DataFrame;
use crate::series::Series;
use etypes::Value;
use std::collections::HashMap;

/// Aggregation functions (pandas spelling; see the paper's lookup table,
/// §5.1.5: `mean` ↔ `AVG`, `std` ↔ `stddev_pop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Arithmetic mean of non-null values (`AVG`).
    Mean,
    /// Sum of non-null values.
    Sum,
    /// Count of non-null values.
    Count,
    /// Minimum non-null value.
    Min,
    /// Maximum non-null value.
    Max,
    /// Population standard deviation (`STDDEV_POP`).
    Std,
}

impl AggFunc {
    /// Parse a pandas aggregation name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name {
            "mean" => AggFunc::Mean,
            "sum" => AggFunc::Sum,
            "count" => AggFunc::Count,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "std" => AggFunc::Std,
            _ => return None,
        })
    }

    /// The SQL aggregate this maps to (paper §5.1.5).
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Mean => "AVG",
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Std => "STDDEV_POP",
        }
    }
}

/// One named aggregation: output column, input column, function
/// (pandas `agg(out=('input', 'func'))`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Name of the output column.
    pub output: String,
    /// Column aggregated over.
    pub input: String,
    /// Aggregation function.
    pub func: AggFunc,
}

/// An in-flight group-by: holds the grouping keys until `agg` is called
/// (mirrors pandas returning a `DataFrameGroupBy` object, paper §5.1.5).
pub struct GroupBy<'a> {
    frame: &'a DataFrame,
    keys: Vec<String>,
}

impl<'a> GroupBy<'a> {
    pub(crate) fn new(frame: &'a DataFrame, keys: &[&str]) -> Result<GroupBy<'a>> {
        for k in keys {
            frame.column(k)?;
        }
        Ok(GroupBy {
            frame,
            keys: keys.iter().map(|k| k.to_string()).collect(),
        })
    }

    /// The grouping key columns.
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// Apply named aggregations, producing one row per distinct key
    /// combination (keys first, then aggregates, in spec order). Groups are
    /// emitted in first-seen order, like `sort=False`; callers that need
    /// determinism sort afterwards.
    pub fn agg(&self, specs: &[AggSpec]) -> Result<DataFrame> {
        for spec in specs {
            self.frame.column(&spec.input)?;
        }
        let key_cols: Vec<&Series> = self
            .keys
            .iter()
            .map(|k| self.frame.column(k))
            .collect::<Result<Vec<_>>>()?;

        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut group_rows: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.frame.len() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.values()[i].clone()).collect();
            let gid = *group_index.entry(key.clone()).or_insert_with(|| {
                group_keys.push(key);
                group_rows.push(Vec::new());
                group_keys.len() - 1
            });
            group_rows[gid].push(i);
        }

        let mut out = DataFrame::new();
        for (ki, key_name) in self.keys.iter().enumerate() {
            let vals = group_keys.iter().map(|k| k[ki].clone()).collect();
            out.insert(Series::new(key_name.clone(), vals))?;
        }
        for spec in specs {
            let col = self.frame.column(&spec.input)?;
            let vals = group_rows
                .iter()
                .map(|rows| aggregate(col, rows, spec.func))
                .collect();
            out.insert(Series::new(spec.output.clone(), vals))
                .map_err(|_| DfError::DuplicateColumn(spec.output.clone()))?;
        }
        Ok(out)
    }
}

fn aggregate(col: &Series, rows: &[usize], func: AggFunc) -> Value {
    let vals: Vec<&Value> = rows
        .iter()
        .map(|&i| &col.values()[i])
        .filter(|v| !v.is_null())
        .collect();
    match func {
        AggFunc::Count => Value::Int(vals.len() as i64),
        AggFunc::Min => vals
            .iter()
            .min()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Max => vals
            .iter()
            .max()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Sum => {
            if vals.is_empty() {
                return Value::Null;
            }
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(vals.iter().map(|v| v.as_i64().unwrap_or(0)).sum())
            } else {
                Value::Float(vals.iter().filter_map(|v| v.as_f64().ok()).sum())
            }
        }
        AggFunc::Mean => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64().ok()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Std => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64().ok()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                let ss: f64 = nums.iter().map(|x| (x - mean) * (x - mean)).sum();
                Value::Float((ss / nums.len() as f64).sqrt())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> DataFrame {
        DataFrame::from_columns(vec![
            Series::new(
                "age_group",
                vec!["g1".into(), "g2".into(), "g1".into(), "g2".into()],
            ),
            Series::new(
                "complications",
                vec![1.into(), 4.into(), 3.into(), Value::Null],
            ),
        ])
        .unwrap()
    }

    fn spec(out: &str, input: &str, f: AggFunc) -> AggSpec {
        AggSpec {
            output: out.into(),
            input: input.into(),
            func: f,
        }
    }

    #[test]
    fn mean_per_group_skips_null() {
        let df = demo();
        let agg = df
            .groupby(&["age_group"])
            .unwrap()
            .agg(&[spec("mean_complications", "complications", AggFunc::Mean)])
            .unwrap();
        let sorted = agg.sort_by(&["age_group"]).unwrap();
        assert_eq!(
            sorted.column("mean_complications").unwrap().values(),
            &[Value::Float(2.0), Value::Float(4.0)]
        );
    }

    #[test]
    fn count_is_non_null_count() {
        let df = demo();
        let agg = df
            .groupby(&["age_group"])
            .unwrap()
            .agg(&[spec("n", "complications", AggFunc::Count)])
            .unwrap()
            .sort_by(&["age_group"])
            .unwrap();
        assert_eq!(agg.column("n").unwrap().values(), &[2.into(), 1.into()]);
    }

    #[test]
    fn groups_in_first_seen_order() {
        let df = demo();
        let agg = df
            .groupby(&["age_group"])
            .unwrap()
            .agg(&[spec("m", "complications", AggFunc::Max)])
            .unwrap();
        assert_eq!(
            agg.column("age_group").unwrap().values(),
            &["g1".into(), "g2".into()]
        );
    }

    #[test]
    fn multiple_aggs_and_min_max_sum() {
        let df = demo();
        let agg = df
            .groupby(&["age_group"])
            .unwrap()
            .agg(&[
                spec("lo", "complications", AggFunc::Min),
                spec("hi", "complications", AggFunc::Max),
                spec("total", "complications", AggFunc::Sum),
            ])
            .unwrap()
            .sort_by(&["age_group"])
            .unwrap();
        assert_eq!(agg.column("lo").unwrap().values(), &[1.into(), 4.into()]);
        assert_eq!(agg.column("hi").unwrap().values(), &[3.into(), 4.into()]);
        assert_eq!(agg.column("total").unwrap().values(), &[4.into(), 4.into()]);
    }

    #[test]
    fn null_key_forms_its_own_group() {
        let df = DataFrame::from_columns(vec![
            Series::new("k", vec![Value::Null, "a".into(), Value::Null]),
            Series::new("v", vec![1.into(), 2.into(), 3.into()]),
        ])
        .unwrap();
        let agg = df
            .groupby(&["k"])
            .unwrap()
            .agg(&[spec("n", "v", AggFunc::Count)])
            .unwrap();
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn unknown_column_errors() {
        let df = demo();
        assert!(df.groupby(&["nope"]).is_err());
        assert!(df
            .groupby(&["age_group"])
            .unwrap()
            .agg(&[spec("x", "nope", AggFunc::Sum)])
            .is_err());
    }

    #[test]
    fn agg_func_sql_names_match_paper_lookup_table() {
        assert_eq!(AggFunc::parse("mean").unwrap().sql_name(), "AVG");
        assert_eq!(AggFunc::parse("std").unwrap().sql_name(), "STDDEV_POP");
        assert!(AggFunc::parse("mode").is_none());
    }
}
