//! Dataframe error type.

use std::fmt;

/// Result alias for dataframe operations.
pub type Result<T> = std::result::Result<T, DfError>;

/// Errors raised by dataframe operations.
#[derive(Debug)]
pub enum DfError {
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// A column with this name already exists where it must not.
    DuplicateColumn(String),
    /// Operands have incompatible lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// Value-level failure (type coercion etc.).
    Value(etypes::Error),
    /// Invalid argument to an operation.
    Invalid(String),
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            DfError::DuplicateColumn(c) => write!(f, "duplicate column '{c}'"),
            DfError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            DfError::Value(e) => write!(f, "{e}"),
            DfError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for DfError {}

impl From<etypes::Error> for DfError {
    fn from(e: etypes::Error) -> Self {
        DfError::Value(e)
    }
}
