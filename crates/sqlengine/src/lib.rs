#![warn(missing_docs)]
//! An embeddable SQL engine with PostgreSQL- and Umbra-like execution
//! profiles.
//!
//! This crate is the database substrate of the reproduction: the paper runs
//! its generated queries on PostgreSQL 12 (disk-based, with the CTE
//! optimization fence) and on Umbra (beyond-main-memory, compiling). We model
//! both with one engine and two [`EngineProfile`]s:
//!
//! * [`EngineProfile::disk_based`] — CTEs referenced by a query are
//!   **materialized** (PostgreSQL 12 semantics without `NOT MATERIALIZED`),
//!   and base-table / materialized-view scans pay a simulated per-page I/O
//!   latency through a buffer-pool accounting layer.
//! * [`EngineProfile::in_memory`] — CTEs and views are always inlined into
//!   one holistically optimized plan and scans run at memory speed.
//!
//! Feature coverage follows the paper's generated SQL (§3, §5): DDL,
//! `COPY ... FROM` CSV, CTEs, (materialized) views, inner/left/right/cross
//! joins with null-safe join predicates, grouped aggregation
//! (`count/sum/avg/min/max/stddev_pop/median/array_agg`), `DISTINCT`,
//! uncorrelated scalar subqueries, `unnest`, `ROW_NUMBER() OVER (ORDER BY)`,
//! `CASE`/`COALESCE`/`LEAST`/`GREATEST`/`array_fill`/`regexp_replace`, array
//! concatenation, `IN` lists, `ORDER BY` / `LIMIT`, and the `ctid` virtual
//! column that the paper's tuple tracking is built on.

pub mod ast;
pub mod binder;
pub mod cache;
pub mod catalog;
pub mod colexec;
pub mod deps;
pub mod durable;
pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod functions;
pub mod fuzz;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod profile;
pub mod storage;
pub mod token;
pub mod trace;

pub use cache::{PlanCache, PlanCacheStats};
pub use colexec::ExecMode;
pub use deps::{parse_sql, statement_deps, StatementDeps};
pub use durable::{DurableBackend, MemoryBackend, StorageBackend};
pub use engine::{Engine, EngineStats, ExecOutcome, Health};
pub use error::{Result, SqlError};
pub use parser::parse_param_values;
pub use profile::EngineProfile;
pub use storage::Relation;
pub use trace::{EngineTrace, OpProfile, Phase, QueryProfile};

// Storage types surface through the engine API (recovery reports, fsync
// policies), so re-export them: dependents need no direct `elephant-store`
// dependency.
pub use elephant_store::{
    CheckpointStats, FsyncPolicy, RecoveryReport, StoreStats, TableImage, TxnDecisionLog,
    WalHandle, WalRecord, WalStats, TXN_LOG_FILE,
};
