//! Vectorized hash equi-join.
//!
//! Both inputs are concatenated into single chunks (a hash join is a
//! pipeline breaker on its build side anyway), keys are evaluated as whole
//! columns, and the probe emits `(left, right)` index pairs in exactly the
//! row engine's output order; output batches are then gathered from the
//! pairs, with `None` slots padding outer-join misses with NULLs.

use super::kernels::{eval_col, gather_opt};
use super::{concat_chunks, exec_node, BATCH_ROWS};
use crate::error::Result;
use crate::exec::eval::{eval, truthy};
use crate::exec::ExecContext;
use crate::plan::{BExpr, EquiKey, JoinKind, PlanNode};
use etypes::chunk::Column;
use etypes::{ColumnChunk, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// Fill `key` with the row's composite key; `false` when a non-null-safe
/// key is NULL (such rows never match, mirroring `exec::join_key`). The
/// buffer is caller-owned so probing allocates nothing per row.
fn fill_row_key(key_cols: &[Rc<Column>], equi: &[EquiKey], i: usize, key: &mut Vec<Value>) -> bool {
    key.clear();
    for (kc, k) in key_cols.iter().zip(equi) {
        let v = kc.get(i);
        if v.is_null() && !k.null_safe {
            return false;
        }
        key.push(v);
    }
    true
}

/// The build-side hash table. The overwhelmingly common single-column
/// equi-join keys the map by a bare [`Value`] — no per-row `Vec`
/// allocation on either the build or the probe side; composite keys fall
/// back to `Vec<Value>` keys, probed through a reused buffer
/// (`Vec<Value>: Borrow<[Value]>` makes the lookup allocation-free too).
enum KeyTable {
    Single(HashMap<Value, Vec<usize>>),
    Multi(HashMap<Vec<Value>, Vec<usize>>),
}

pub(super) fn exec_join(
    left: &PlanNode,
    right: &PlanNode,
    kind: JoinKind,
    equi: &[EquiKey],
    residual: Option<&BExpr>,
    ctx: &ExecContext<'_>,
) -> Result<Vec<ColumnChunk>> {
    debug_assert!(kind != JoinKind::Cross && !equi.is_empty());
    let lchunk = concat_chunks(&exec_node(left, ctx)?);
    let rchunk = concat_chunks(&exec_node(right, ctx)?);

    let lsel: Vec<usize> = (0..lchunk.len()).collect();
    let rsel: Vec<usize> = (0..rchunk.len()).collect();
    let lkeys: Vec<Rc<Column>> = equi
        .iter()
        .map(|k| Ok(eval_col(&k.left, &lchunk, &lsel, ctx)?.materialize(lchunk.len())))
        .collect::<Result<_>>()?;
    let rkeys: Vec<Rc<Column>> = equi
        .iter()
        .map(|k| Ok(eval_col(&k.right, &rchunk, &rsel, ctx)?.materialize(rchunk.len())))
        .collect::<Result<_>>()?;

    // Build on right, probe with left (same as the row engine). The table
    // is pre-sized from the build-side row count so growth never rehashes.
    let table = if equi.len() == 1 {
        let null_safe = equi[0].null_safe;
        let mut t: HashMap<Value, Vec<usize>> = HashMap::with_capacity(rchunk.len());
        for j in 0..rchunk.len() {
            let v = rkeys[0].get(j);
            if v.is_null() && !null_safe {
                continue;
            }
            t.entry(v).or_default().push(j);
        }
        KeyTable::Single(t)
    } else {
        let mut t: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rchunk.len());
        let mut key = Vec::with_capacity(equi.len());
        for j in 0..rchunk.len() {
            if fill_row_key(&rkeys, equi, j, &mut key) {
                t.entry(std::mem::take(&mut key)).or_default().push(j);
                key.reserve(equi.len());
            }
        }
        KeyTable::Multi(t)
    };

    let mut pairs: Vec<(Option<usize>, Option<usize>)> = Vec::with_capacity(lchunk.len());
    let mut right_matched = vec![false; rchunk.len()];
    let mut probe_key: Vec<Value> = Vec::with_capacity(equi.len());
    for i in 0..lchunk.len() {
        ctx.tick(1)?;
        let matches = match &table {
            KeyTable::Single(t) => {
                let v = lkeys[0].get(i);
                if v.is_null() && !equi[0].null_safe {
                    None
                } else {
                    t.get(&v)
                }
            }
            KeyTable::Multi(t) => {
                if fill_row_key(&lkeys, equi, i, &mut probe_key) {
                    t.get(probe_key.as_slice())
                } else {
                    None
                }
            }
        };
        let mut any = false;
        if let Some(matches) = matches {
            for &j in matches {
                if let Some(res) = residual {
                    // Residuals see the combined row; defer to the row
                    // evaluator on a materialized pair (rare path).
                    let mut row = lchunk.get_row(i);
                    row.extend(rchunk.get_row(j));
                    if !truthy(&eval(res, &row, ctx)?) {
                        continue;
                    }
                }
                any = true;
                right_matched[j] = true;
                pairs.push((Some(i), Some(j)));
            }
        }
        if !any && matches!(kind, JoinKind::Left | JoinKind::Full) {
            pairs.push((Some(i), None));
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (j, matched) in right_matched.iter().enumerate() {
            if !matched {
                pairs.push((None, Some(j)));
            }
        }
    }

    let mut out = Vec::with_capacity(pairs.len().div_ceil(BATCH_ROWS));
    for window in pairs.chunks(BATCH_ROWS) {
        let lidx: Vec<Option<usize>> = window.iter().map(|p| p.0).collect();
        let ridx: Vec<Option<usize>> = window.iter().map(|p| p.1).collect();
        let mut cols = Vec::with_capacity(lchunk.width() + rchunk.width());
        for c in lchunk.columns() {
            cols.push(Rc::new(gather_opt(c, &lidx)));
        }
        for c in rchunk.columns() {
            cols.push(Rc::new(gather_opt(c, &ridx)));
        }
        out.push(ColumnChunk::new(cols, window.len()));
    }
    Ok(out)
}
