//! Vectorized hash equi-join.
//!
//! Both inputs are concatenated into single chunks (a hash join is a
//! pipeline breaker on its build side anyway), keys are evaluated as whole
//! columns, and the probe emits `(left, right)` index pairs in exactly the
//! row engine's output order; output batches are then gathered from the
//! pairs, with `None` slots padding outer-join misses with NULLs.

use super::kernels::{eval_col, gather_opt};
use super::{concat_chunks, exec_node, BATCH_ROWS};
use crate::error::Result;
use crate::exec::eval::{eval, truthy};
use crate::exec::ExecContext;
use crate::plan::{BExpr, EquiKey, JoinKind, PlanNode};
use etypes::chunk::Column;
use etypes::{ColumnChunk, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// The row's composite key, or `None` when a non-null-safe key is NULL
/// (such rows never match, mirroring `exec::join_key`).
fn row_key(key_cols: &[Rc<Column>], equi: &[EquiKey], i: usize) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(key_cols.len());
    for (kc, k) in key_cols.iter().zip(equi) {
        let v = kc.get(i);
        if v.is_null() && !k.null_safe {
            return None;
        }
        key.push(v);
    }
    Some(key)
}

pub(super) fn exec_join(
    left: &PlanNode,
    right: &PlanNode,
    kind: JoinKind,
    equi: &[EquiKey],
    residual: Option<&BExpr>,
    ctx: &ExecContext<'_>,
) -> Result<Vec<ColumnChunk>> {
    debug_assert!(kind != JoinKind::Cross && !equi.is_empty());
    let lchunk = concat_chunks(&exec_node(left, ctx)?);
    let rchunk = concat_chunks(&exec_node(right, ctx)?);

    let lsel: Vec<usize> = (0..lchunk.len()).collect();
    let rsel: Vec<usize> = (0..rchunk.len()).collect();
    let lkeys: Vec<Rc<Column>> = equi
        .iter()
        .map(|k| Ok(eval_col(&k.left, &lchunk, &lsel, ctx)?.materialize(lchunk.len())))
        .collect::<Result<_>>()?;
    let rkeys: Vec<Rc<Column>> = equi
        .iter()
        .map(|k| Ok(eval_col(&k.right, &rchunk, &rsel, ctx)?.materialize(rchunk.len())))
        .collect::<Result<_>>()?;

    // Build on right, probe with left (same as the row engine).
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rchunk.len());
    for j in 0..rchunk.len() {
        if let Some(k) = row_key(&rkeys, equi, j) {
            table.entry(k).or_default().push(j);
        }
    }

    let mut pairs: Vec<(Option<usize>, Option<usize>)> = Vec::new();
    let mut right_matched = vec![false; rchunk.len()];
    for i in 0..lchunk.len() {
        ctx.tick(1)?;
        let matches = row_key(&lkeys, equi, i).and_then(|k| table.get(&k));
        let mut any = false;
        if let Some(matches) = matches {
            for &j in matches {
                if let Some(res) = residual {
                    // Residuals see the combined row; defer to the row
                    // evaluator on a materialized pair (rare path).
                    let mut row = lchunk.get_row(i);
                    row.extend(rchunk.get_row(j));
                    if !truthy(&eval(res, &row, ctx)?) {
                        continue;
                    }
                }
                any = true;
                right_matched[j] = true;
                pairs.push((Some(i), Some(j)));
            }
        }
        if !any && matches!(kind, JoinKind::Left | JoinKind::Full) {
            pairs.push((Some(i), None));
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (j, matched) in right_matched.iter().enumerate() {
            if !matched {
                pairs.push((None, Some(j)));
            }
        }
    }

    let mut out = Vec::with_capacity(pairs.len().div_ceil(BATCH_ROWS));
    for window in pairs.chunks(BATCH_ROWS) {
        let lidx: Vec<Option<usize>> = window.iter().map(|p| p.0).collect();
        let ridx: Vec<Option<usize>> = window.iter().map(|p| p.1).collect();
        let mut cols = Vec::with_capacity(lchunk.width() + rchunk.width());
        for c in lchunk.columns() {
            cols.push(Rc::new(gather_opt(c, &lidx)));
        }
        for c in rchunk.columns() {
            cols.push(Rc::new(gather_opt(c, &ridx)));
        }
        out.push(ColumnChunk::new(cols, window.len()));
    }
    Ok(out)
}
