//! Vectorized aggregation.
//!
//! Group keys and aggregate arguments are evaluated once per batch as whole
//! columns, then accumulators ([`Acc`], shared with the row engine so both
//! produce bit-identical results) are fed per row. Global aggregates skip
//! the hash table entirely.

use super::kernels::{eval_col, Evaluated};
use super::{exec_node, rows_to_chunks};
use crate::error::Result;
use crate::exec::{Acc, ExecContext, Row};
use crate::plan::{AggCall, BExpr, PlanNode};
use etypes::{ColumnChunk, Value};
use std::collections::HashMap;

/// Evaluate each aggregate's argument (if any) as a dense column over the
/// whole batch.
fn arg_columns(
    aggs: &[AggCall],
    chunk: &ColumnChunk,
    sel: &[usize],
    ctx: &ExecContext<'_>,
) -> Result<Vec<Option<Evaluated>>> {
    aggs.iter()
        .map(|call| match &call.arg {
            Some(e) => Ok(Some(eval_col(e, chunk, sel, ctx)?)),
            None => Ok(None),
        })
        .collect()
}

pub(super) fn exec_aggregate(
    input: &PlanNode,
    group_exprs: &[BExpr],
    aggs: &[AggCall],
    ctx: &ExecContext<'_>,
) -> Result<Vec<ColumnChunk>> {
    let chunks = exec_node(input, ctx)?;
    let width = group_exprs.len() + aggs.len();

    if group_exprs.is_empty() {
        // Global aggregate: one accumulator set, no hash table.
        let mut accs: Vec<Acc> = aggs.iter().map(Acc::new).collect();
        for chunk in &chunks {
            if chunk.is_empty() {
                continue;
            }
            let sel: Vec<usize> = (0..chunk.len()).collect();
            let args = arg_columns(aggs, chunk, &sel, ctx)?;
            for i in 0..chunk.len() {
                for (acc, arg) in accs.iter_mut().zip(&args) {
                    acc.update(arg.as_ref().map(|a| a.get(i)))?;
                }
            }
        }
        // Over empty input this still yields one row of defaults, like the
        // row engine.
        let row: Row = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![ColumnChunk::from_rows(&[row], width)]);
    }

    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for chunk in &chunks {
        if chunk.is_empty() {
            continue;
        }
        let sel: Vec<usize> = (0..chunk.len()).collect();
        let key_cols: Vec<Evaluated> = group_exprs
            .iter()
            .map(|g| eval_col(g, chunk, &sel, ctx))
            .collect::<Result<_>>()?;
        let args = arg_columns(aggs, chunk, &sel, ctx)?;
        for i in 0..chunk.len() {
            let key: Vec<Value> = key_cols.iter().map(|k| k.get(i)).collect();
            let accs = match groups.get_mut(&key) {
                Some(a) => a,
                None => {
                    order.push(key.clone());
                    groups
                        .entry(key)
                        .or_insert_with(|| aggs.iter().map(Acc::new).collect())
                }
            };
            for (acc, arg) in accs.iter_mut().zip(&args) {
                acc.update(arg.as_ref().map(|a| a.get(i)))?;
            }
        }
    }

    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded in order");
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        rows.push(row);
    }
    Ok(rows_to_chunks(&rows, width))
}
