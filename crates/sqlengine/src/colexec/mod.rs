//! Vectorized columnar execution.
//!
//! A second execution subsystem beside [`crate::exec`]: plans run
//! batch-at-a-time over [`ColumnChunk`]s (typed vectors plus null bitmaps,
//! the same `ELSNP001` page layout snapshots use on disk) instead of
//! row-at-a-time over `Vec<Value>`. Scan, Filter, Project, hash Join,
//! Aggregate, Sort, Limit, Distinct, and Values are vectorized; any other
//! operator at the top of a subtree bridges that whole subtree back through
//! the row engine (`colexec_fallbacks` counts the bridges), so every query
//! the row engine answers is answered here too — identically.
//!
//! Filters produce *selection vectors* (strictly increasing row indices into
//! a chunk) instead of copying survivors eagerly; a chunk is only gathered
//! when the selection is not the identity. Both engines share the same
//! bookkeeping contract: per-node `rows_processed` / cost-model charges /
//! cancellation ticks, and per-node profiles keyed by plan-node address so
//! `EXPLAIN ANALYZE` renders honest per-operator rows, batches, and
//! inclusive times in either mode.

mod agg;
mod join;
mod kernels;

use crate::error::{Result, SqlError};
use crate::exec::{execute, ExecContext, Row};
use crate::plan::{JoinKind, PlanNode, PlanRoot, ScanSource, CTID_SENTINEL};
use etypes::chunk::{Column, ColumnData, NullBitmap};
use etypes::ColumnChunk;
use kernels::{eval_col, gather_chunk, truthy_selection};
use std::rc::Rc;

/// Target rows per [`ColumnChunk`]; matches the cancellation tick quantum so
/// a batch is also the unit of cooperative scheduling.
pub(crate) const BATCH_ROWS: usize = 1024;

/// Which execution subsystem runs queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// The row-at-a-time executor ([`crate::exec`]); the default.
    #[default]
    Row,
    /// The batch-at-a-time columnar executor, bridging unvectorized
    /// subtrees back to the row engine.
    Columnar,
    /// Columnar when every operator in the plan is vectorized, row
    /// otherwise (never pays the fallback bridge).
    Auto,
}

impl ExecMode {
    /// Stable lowercase name (used in `STATS`, `SET exec_mode`, and
    /// plan-cache keys).
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Row => "row",
            ExecMode::Columnar => "columnar",
            ExecMode::Auto => "auto",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<ExecMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "row" => Ok(ExecMode::Row),
            "columnar" => Ok(ExecMode::Columnar),
            "auto" => Ok(ExecMode::Auto),
            other => Err(format!(
                "unknown exec mode '{other}' (expected row, columnar, or auto)"
            )),
        }
    }
}

/// True when every operator in the plan (CTE bodies included) has a
/// vectorized implementation, i.e. columnar execution would never bridge
/// back to the row engine. `Auto` mode runs columnar exactly in this case.
pub(crate) fn fully_vectorized(root: &PlanRoot) -> bool {
    fn walk(p: &PlanNode) -> bool {
        node_vectorized(p) && crate::explain::node_children(p).iter().all(|k| walk(k))
    }
    root.ctes.iter().all(|c| walk(&c.plan)) && walk(&root.body)
}

/// True when this node itself (not its inputs) has a vectorized
/// implementation.
fn node_vectorized(plan: &PlanNode) -> bool {
    match plan {
        PlanNode::Unnest { .. } | PlanNode::WindowRowNumber { .. } => false,
        // Cross products and outer joins without equi keys take the row
        // engine's nested-loop path.
        PlanNode::Join { kind, equi, .. } => *kind != JoinKind::Cross && !equi.is_empty(),
        _ => true,
    }
}

/// Execute a fully bound query with the columnar engine: materialize CTEs in
/// order (batch-at-a-time, then spilled to rows exactly like the row
/// engine's temp pages), then run the body and flatten the final batches.
pub fn execute_root(ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    for (i, cte) in ctx.root.ctes.iter().enumerate() {
        let chunks = exec_node(&cte.plan, ctx)?;
        let rows = chunks_to_rows(&chunks);
        {
            let mut stats = ctx.stats.borrow_mut();
            if cte.shared {
                stats.shared_scans += 1;
            } else {
                stats.ctes_materialized += 1;
            }
            stats.pages_written += ctx.profile.pages_for(rows.len());
        }
        ctx.profile.charge_io(rows.len());
        ctx.store_cte_rows(i, rows);
    }
    let chunks = exec_node(&ctx.root.body, ctx)?;
    Ok(chunks_to_rows(&chunks))
}

/// Execute one plan node to batches.
///
/// Output invariant: the returned vector is non-empty; an empty result is
/// one zero-row chunk of the node's output width, so downstream operators
/// always see the arity and `EXPLAIN ANALYZE` always sees `batches>=1` for
/// vectorized nodes.
pub(crate) fn exec_node(plan: &PlanNode, ctx: &ExecContext<'_>) -> Result<Vec<ColumnChunk>> {
    if !node_vectorized(plan) {
        return exec_fallback(plan, ctx);
    }
    // Inclusive timing, like the row engine: started before children run.
    let timer = ctx.profiling().then(std::time::Instant::now);
    let chunks = match plan {
        PlanNode::Scan {
            source, projection, ..
        } => exec_scan(source, projection, ctx)?,
        PlanNode::Filter { input, predicate } => {
            let chunks = exec_node(input, ctx)?;
            let mut out = Vec::with_capacity(chunks.len());
            for chunk in &chunks {
                if chunk.is_empty() {
                    continue;
                }
                let sel: Vec<usize> = (0..chunk.len()).collect();
                let pred = eval_col(predicate, chunk, &sel, ctx)?;
                let keep = truthy_selection(&pred, chunk.len());
                if keep.is_empty() {
                    continue;
                }
                if keep.len() == chunk.len() {
                    // Everything survived: reuse the input columns (Rc).
                    out.push(chunk.clone());
                } else {
                    out.push(gather_chunk(chunk, &keep));
                }
            }
            out
        }
        PlanNode::Project { input, exprs, .. } => {
            let chunks = exec_node(input, ctx)?;
            let mut out = Vec::with_capacity(chunks.len());
            for chunk in &chunks {
                let sel: Vec<usize> = (0..chunk.len()).collect();
                let cols = exprs
                    .iter()
                    .map(|e| Ok(eval_col(e, chunk, &sel, ctx)?.materialize(chunk.len())))
                    .collect::<Result<Vec<_>>>()?;
                out.push(ColumnChunk::new(cols, chunk.len()));
            }
            out
        }
        PlanNode::Join {
            left,
            right,
            kind,
            equi,
            residual,
            ..
        } => join::exec_join(left, right, *kind, equi, residual.as_ref(), ctx)?,
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
            ..
        } => agg::exec_aggregate(input, group_exprs, aggs, ctx)?,
        PlanNode::Sort { input, keys } => {
            let chunks = exec_node(input, ctx)?;
            let big = concat_chunks(&chunks);
            let n = big.len();
            let sel: Vec<usize> = (0..n).collect();
            let key_cols: Vec<Rc<Column>> = keys
                .iter()
                .map(|(e, _)| Ok(eval_col(e, &big, &sel, ctx)?.materialize(n)))
                .collect::<Result<Vec<_>>>()?;
            let mut idx: Vec<usize> = (0..n).collect();
            // Stable sort over original order = the row engine's tie
            // behaviour.
            idx.sort_by(|&a, &b| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = crate::exec::null_last_cmp(&key_cols[i].get(a), &key_cols[i].get(b));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            idx.chunks(BATCH_ROWS)
                .map(|window| gather_chunk(&big, window))
                .collect()
        }
        PlanNode::Limit { input, n } => {
            let chunks = exec_node(input, ctx)?;
            let mut out = Vec::new();
            let mut remaining = *n as usize;
            for chunk in &chunks {
                if remaining == 0 {
                    break;
                }
                if chunk.len() <= remaining {
                    remaining -= chunk.len();
                    out.push(chunk.clone());
                } else {
                    let sel: Vec<usize> = (0..remaining).collect();
                    out.push(gather_chunk(chunk, &sel));
                    remaining = 0;
                }
            }
            out
        }
        PlanNode::Distinct { input } => {
            let chunks = exec_node(input, ctx)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for chunk in &chunks {
                let keep: Vec<usize> = (0..chunk.len())
                    .filter(|&i| seen.insert(chunk.get_row(i)))
                    .collect();
                if keep.is_empty() {
                    continue;
                }
                if keep.len() == chunk.len() {
                    out.push(chunk.clone());
                } else {
                    out.push(gather_chunk(chunk, &keep));
                }
            }
            out
        }
        PlanNode::Values { rows, schema } => rows_to_chunks(rows, schema.len()),
        PlanNode::Unnest { .. } | PlanNode::WindowRowNumber { .. } => {
            unreachable!("unvectorized nodes take the fallback bridge")
        }
    };
    let chunks = ensure_nonempty(chunks, plan.schema().len());
    let rows: usize = chunks.iter().map(ColumnChunk::len).sum();
    {
        let mut stats = ctx.stats.borrow_mut();
        stats.rows_processed += rows as u64;
        stats.batches_executed += chunks.len() as u64;
    }
    ctx.profile.charge_rows(rows);
    ctx.tick(rows)?;
    if let Some(t) = timer {
        ctx.record_node_profile(
            plan as *const PlanNode as usize,
            rows as u64,
            chunks.len() as u64,
            t.elapsed(),
        );
    }
    Ok(chunks)
}

/// Bridge an unvectorized subtree through the row engine and re-batch its
/// rows. The row engine does its own stats/profile bookkeeping for every
/// node in the subtree, so this records only the bridge itself.
fn exec_fallback(plan: &PlanNode, ctx: &ExecContext<'_>) -> Result<Vec<ColumnChunk>> {
    ctx.stats.borrow_mut().colexec_fallbacks += 1;
    let rows = execute(plan, ctx)?;
    Ok(rows_to_chunks(&rows, plan.schema().len()))
}

fn exec_scan(
    source: &ScanSource,
    projection: &[usize],
    ctx: &ExecContext<'_>,
) -> Result<Vec<ColumnChunk>> {
    // One closure per source keeps the borrow of the catalog (or the CTE
    // Rc) alive only while batching.
    let batch = |rows: &[Row]| -> Vec<ColumnChunk> {
        let mut out = Vec::with_capacity(rows.len().div_ceil(BATCH_ROWS));
        let mut start = 0;
        while start < rows.len() {
            let end = (start + BATCH_ROWS).min(rows.len());
            let window = &rows[start..end];
            let cols: Vec<Rc<Column>> = projection
                .iter()
                .map(|&c| {
                    Rc::new(if c == CTID_SENTINEL {
                        // Row ids are global, not per-batch.
                        Column::new(
                            ColumnData::Int((start..end).map(|r| r as i64).collect()),
                            NullBitmap::new_valid(window.len()),
                        )
                    } else {
                        Column::from_rows(window, c)
                    })
                })
                .collect();
            out.push(ColumnChunk::new(cols, window.len()));
            start = end;
        }
        out
    };
    match source {
        ScanSource::Table(name) => {
            let table = ctx
                .catalog
                .table(name)
                .ok_or_else(|| SqlError::exec(format!("table '{name}' disappeared")))?;
            ctx.stats.borrow_mut().pages_read += ctx.profile.pages_for(table.data.rows.len());
            ctx.profile.charge_io(table.data.rows.len());
            Ok(batch(&table.data.rows))
        }
        ScanSource::MaterializedView(name) => {
            let view = ctx
                .catalog
                .view(name)
                .ok_or_else(|| SqlError::exec(format!("view '{name}' disappeared")))?;
            let data = view
                .materialized
                .as_ref()
                .ok_or_else(|| SqlError::exec(format!("view '{name}' is not materialized")))?;
            ctx.stats.borrow_mut().pages_read += ctx.profile.pages_for(data.rows.len());
            ctx.profile.charge_io(data.rows.len());
            Ok(batch(&data.rows))
        }
        ScanSource::Cte(i) => {
            let rows = ctx.cte_rows(*i)?;
            ctx.stats.borrow_mut().pages_read += ctx.profile.pages_for(rows.len());
            ctx.profile.charge_io(rows.len());
            Ok(batch(&rows))
        }
    }
}

/// A zero-row chunk of the given width (the canonical empty result).
fn empty_chunk(width: usize) -> ColumnChunk {
    let cols = (0..width)
        .map(|_| Rc::new(Column::from_values(&[])))
        .collect();
    ColumnChunk::new(cols, 0)
}

fn ensure_nonempty(chunks: Vec<ColumnChunk>, width: usize) -> Vec<ColumnChunk> {
    if chunks.is_empty() {
        vec![empty_chunk(width)]
    } else {
        chunks
    }
}

/// Re-batch rows into chunks of at most [`BATCH_ROWS`] (empty input becomes
/// one zero-row chunk).
pub(crate) fn rows_to_chunks(rows: &[Row], width: usize) -> Vec<ColumnChunk> {
    if rows.is_empty() {
        return vec![empty_chunk(width)];
    }
    rows.chunks(BATCH_ROWS)
        .map(|window| ColumnChunk::from_rows(window, width))
        .collect()
}

/// Flatten batches back to rows (the engine's result representation).
pub(crate) fn chunks_to_rows(chunks: &[ColumnChunk]) -> Vec<Row> {
    chunks.iter().flat_map(ColumnChunk::to_rows).collect()
}

/// Concatenate batches into one chunk (pipeline breakers: Sort, Join
/// build/probe sides).
pub(crate) fn concat_chunks(chunks: &[ColumnChunk]) -> ColumnChunk {
    if chunks.len() == 1 {
        return chunks[0].clone();
    }
    let width = chunks[0].width();
    let len = chunks.iter().map(ColumnChunk::len).sum();
    let cols = (0..width)
        .map(|c| {
            let parts: Vec<&Column> = chunks.iter().map(|ch| ch.column(c).as_ref()).collect();
            Rc::new(kernels::concat_columns(&parts))
        })
        .collect();
    ColumnChunk::new(cols, len)
}
