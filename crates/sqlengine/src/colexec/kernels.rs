//! Vectorized expression evaluation over columnar chunks.
//!
//! [`eval_col`] evaluates one bound expression for every row named by a
//! *selection vector* (`sel`, indices into the chunk) and returns either a
//! dense column aligned with the selection or a scalar broadcast over it.
//! Lazy SQL semantics are preserved exactly by *splitting* the selection
//! instead of masking results after the fact: the right side of `AND`/`OR`,
//! CASE arms, and IN-list items are only ever evaluated for the rows the
//! row-at-a-time engine would have evaluated them for, so runtime errors
//! (division by zero, bad casts) fire for precisely the same rows.
//!
//! Comparison and arithmetic over int/float columns run branch-light typed
//! fast paths; every other shape funnels through the row engine's
//! [`binary`] / [`eval`] so the two engines cannot disagree.

use crate::ast::{BinaryOp, UnaryOp};
use crate::error::{Result, SqlError};
use crate::exec::eval::{binary, eval, three_valued_and, three_valued_or, truthy};
use crate::exec::ExecContext;
use crate::plan::BExpr;
use etypes::chunk::{Column, ColumnData, NullBitmap};
use etypes::{ColumnChunk, Value};
use std::cmp::Ordering;
use std::rc::Rc;

/// The result of evaluating one expression over a selection: a dense
/// column (one slot per selected row) or one value broadcast over all of
/// them.
pub(crate) enum Evaluated {
    /// Dense per-selected-row values.
    Col(Rc<Column>),
    /// The same value for every selected row.
    Scalar(Value),
}

impl Evaluated {
    /// The value for dense position `i` (an index into the selection, not
    /// the chunk).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Value {
        match self {
            Evaluated::Col(c) => c.get(i),
            Evaluated::Scalar(v) => v.clone(),
        }
    }

    /// Force a dense column of `n` slots (broadcasting a scalar).
    pub(crate) fn materialize(self, n: usize) -> Rc<Column> {
        match self {
            Evaluated::Col(c) => c,
            Evaluated::Scalar(v) => {
                let cells = vec![v; n];
                Rc::new(Column::from_values(&cells))
            }
        }
    }
}

/// An empty dense column (zero selected rows).
fn empty_col() -> Evaluated {
    Evaluated::Col(Rc::new(Column::from_values(&[])))
}

/// Incremental builder for boolean result columns.
struct BoolBuilder {
    data: Vec<bool>,
    nulls: NullBitmap,
}

impl BoolBuilder {
    fn new(n: usize) -> BoolBuilder {
        BoolBuilder {
            data: vec![false; n],
            nulls: NullBitmap::new_valid(n),
        }
    }

    #[inline]
    fn set(&mut self, i: usize, v: bool) {
        self.data[i] = v;
    }

    #[inline]
    fn set_null(&mut self, i: usize) {
        self.nulls.set_null(i);
    }

    fn finish(self) -> Evaluated {
        Evaluated::Col(Rc::new(Column::new(
            ColumnData::Bool(self.data),
            self.nulls,
        )))
    }
}

/// Copy the selected rows of `col` into a new dense column.
pub(crate) fn gather(col: &Column, sel: &[usize]) -> Column {
    let mut nulls = NullBitmap::new_valid(sel.len());
    for (i, &r) in sel.iter().enumerate() {
        if col.is_null(r) {
            nulls.set_null(i);
        }
    }
    let data = match col.data() {
        ColumnData::Int(v) => ColumnData::Int(sel.iter().map(|&r| v[r]).collect()),
        ColumnData::Float(v) => ColumnData::Float(sel.iter().map(|&r| v[r]).collect()),
        ColumnData::Bool(v) => ColumnData::Bool(sel.iter().map(|&r| v[r]).collect()),
        ColumnData::Text(v) => ColumnData::Text(sel.iter().map(|&r| v[r].clone()).collect()),
        ColumnData::Generic(v) => ColumnData::Generic(sel.iter().map(|&r| v[r].clone()).collect()),
    };
    Column::new(data, nulls)
}

/// [`gather`] with optional indices: `None` slots become NULL (outer-join
/// padding).
pub(crate) fn gather_opt(col: &Column, sel: &[Option<usize>]) -> Column {
    let mut nulls = NullBitmap::new_valid(sel.len());
    for (i, r) in sel.iter().enumerate() {
        match r {
            Some(r) if !col.is_null(*r) => {}
            _ => nulls.set_null(i),
        }
    }
    let data = match col.data() {
        ColumnData::Int(v) => ColumnData::Int(sel.iter().map(|r| r.map_or(0, |r| v[r])).collect()),
        ColumnData::Float(v) => {
            ColumnData::Float(sel.iter().map(|r| r.map_or(0.0, |r| v[r])).collect())
        }
        ColumnData::Bool(v) => {
            ColumnData::Bool(sel.iter().map(|r| r.is_some_and(|r| v[r])).collect())
        }
        ColumnData::Text(v) => ColumnData::Text(
            sel.iter()
                .map(|r| r.map_or_else(String::new, |r| v[r].clone()))
                .collect(),
        ),
        ColumnData::Generic(v) => ColumnData::Generic(
            sel.iter()
                .map(|r| r.map_or(Value::Null, |r| v[r].clone()))
                .collect(),
        ),
    };
    Column::new(data, nulls)
}

/// Keep only the selected rows of every column in `chunk`.
pub(crate) fn gather_chunk(chunk: &ColumnChunk, sel: &[usize]) -> ColumnChunk {
    let cols = chunk
        .columns()
        .iter()
        .map(|c| Rc::new(gather(c, sel)))
        .collect();
    ColumnChunk::new(cols, sel.len())
}

/// Concatenate columns end-to-end (same logical column across batches).
pub(crate) fn concat_columns(cols: &[&Column]) -> Column {
    let total: usize = cols.iter().map(|c| c.len()).sum();
    let same_tag = cols
        .windows(2)
        .all(|w| w[0].data().tag() == w[1].data().tag());
    if !same_tag {
        let mut cells = Vec::with_capacity(total);
        for c in cols {
            for i in 0..c.len() {
                cells.push(c.get(i));
            }
        }
        return Column::from_values(&cells);
    }
    let mut nulls = NullBitmap::new_valid(total);
    let mut off = 0;
    for c in cols {
        for i in 0..c.len() {
            if c.is_null(i) {
                nulls.set_null(off + i);
            }
        }
        off += c.len();
    }
    let data = match cols[0].data() {
        ColumnData::Int(_) => ColumnData::Int(
            cols.iter()
                .flat_map(|c| match c.data() {
                    ColumnData::Int(v) => v.iter().copied(),
                    _ => unreachable!("tag checked"),
                })
                .collect(),
        ),
        ColumnData::Float(_) => ColumnData::Float(
            cols.iter()
                .flat_map(|c| match c.data() {
                    ColumnData::Float(v) => v.iter().copied(),
                    _ => unreachable!("tag checked"),
                })
                .collect(),
        ),
        ColumnData::Bool(_) => ColumnData::Bool(
            cols.iter()
                .flat_map(|c| match c.data() {
                    ColumnData::Bool(v) => v.iter().copied(),
                    _ => unreachable!("tag checked"),
                })
                .collect(),
        ),
        ColumnData::Text(_) => ColumnData::Text(
            cols.iter()
                .flat_map(|c| match c.data() {
                    ColumnData::Text(v) => v.iter().cloned(),
                    _ => unreachable!("tag checked"),
                })
                .collect(),
        ),
        ColumnData::Generic(_) => ColumnData::Generic(
            cols.iter()
                .flat_map(|c| match c.data() {
                    ColumnData::Generic(v) => v.iter().cloned(),
                    _ => unreachable!("tag checked"),
                })
                .collect(),
        ),
    };
    Column::new(data, nulls)
}

/// Dense indices (into the selection) whose value is exactly `TRUE` — the
/// rows a WHERE keeps.
pub(crate) fn truthy_selection(pred: &Evaluated, n: usize) -> Vec<usize> {
    match pred {
        Evaluated::Scalar(v) => {
            if truthy(v) {
                (0..n).collect()
            } else {
                Vec::new()
            }
        }
        Evaluated::Col(c) => match c.data() {
            ColumnData::Bool(v) => {
                let nulls = c.nulls();
                if nulls.all_valid() {
                    (0..n).filter(|&i| v[i]).collect()
                } else {
                    (0..n).filter(|&i| v[i] && !nulls.is_null(i)).collect()
                }
            }
            _ => (0..n).filter(|&i| truthy(&c.get(i))).collect(),
        },
    }
}

/// Evaluate `expr` for every row of `chunk` named by `sel`, in selection
/// order. The result is dense over `sel` (or a broadcast scalar).
pub(crate) fn eval_col(
    expr: &BExpr,
    chunk: &ColumnChunk,
    sel: &[usize],
    ctx: &ExecContext<'_>,
) -> Result<Evaluated> {
    if sel.is_empty() {
        // No selected rows: nothing may be evaluated (and no error may
        // fire), exactly like the row engine skipping every row.
        return Ok(empty_col());
    }
    let n = sel.len();
    Ok(match expr {
        BExpr::Col(i) => {
            if n == chunk.len() {
                // Selections are strictly increasing subsets of 0..len, so
                // a full-length selection is the identity.
                Evaluated::Col(Rc::clone(chunk.column(*i)))
            } else {
                Evaluated::Col(Rc::new(gather(chunk.column(*i), sel)))
            }
        }
        BExpr::Lit(v) => Evaluated::Scalar(v.clone()),
        // Parameters are substituted for literals before execution
        // (`PlanRoot::bind_params`); reaching one here is an engine bug.
        BExpr::Param(n) => {
            return Err(SqlError::exec(format!(
                "unbound parameter ${n} reached the columnar executor"
            )))
        }
        BExpr::Binary { op, left, right } => match op {
            BinaryOp::And => {
                let l = eval_col(left, chunk, sel, ctx)?;
                if let Evaluated::Scalar(Value::Bool(false)) = &l {
                    return Ok(Evaluated::Scalar(Value::Bool(false)));
                }
                // Rows where the left side is FALSE short-circuit; only the
                // rest see the right side.
                let need: Vec<usize> = (0..n).filter(|&i| l.get(i) != Value::Bool(false)).collect();
                let sub_sel: Vec<usize> = need.iter().map(|&i| sel[i]).collect();
                let r = eval_col(right, chunk, &sub_sel, ctx)?;
                let mut out = BoolBuilder::new(n);
                for (k, &i) in need.iter().enumerate() {
                    match three_valued_and(&l.get(i), &r.get(k)) {
                        Value::Bool(b) => out.set(i, b),
                        _ => out.set_null(i),
                    }
                }
                out.finish()
            }
            BinaryOp::Or => {
                let l = eval_col(left, chunk, sel, ctx)?;
                if let Evaluated::Scalar(Value::Bool(true)) = &l {
                    return Ok(Evaluated::Scalar(Value::Bool(true)));
                }
                let need: Vec<usize> = (0..n).filter(|&i| l.get(i) != Value::Bool(true)).collect();
                let sub_sel: Vec<usize> = need.iter().map(|&i| sel[i]).collect();
                let r = eval_col(right, chunk, &sub_sel, ctx)?;
                let mut out = BoolBuilder::new(n);
                for i in 0..n {
                    out.set(i, true);
                }
                for (k, &i) in need.iter().enumerate() {
                    match three_valued_or(&l.get(i), &r.get(k)) {
                        Value::Bool(b) => out.set(i, b),
                        _ => {
                            out.set(i, false);
                            out.set_null(i);
                        }
                    }
                }
                out.finish()
            }
            _ => {
                let l = eval_col(left, chunk, sel, ctx)?;
                let r = eval_col(right, chunk, sel, ctx)?;
                binary_vec(*op, &l, &r, n)?
            }
        },
        BExpr::Unary { op, operand } => {
            let v = eval_col(operand, chunk, sel, ctx)?;
            if let Evaluated::Scalar(s) = &v {
                return Ok(Evaluated::Scalar(unary_one(*op, s)?));
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(unary_one(*op, &v.get(i))?);
            }
            Evaluated::Col(Rc::new(Column::from_values(&out)))
        }
        BExpr::Func { func, args } => {
            let arg_cols: Vec<Evaluated> = args
                .iter()
                .map(|a| eval_col(a, chunk, sel, ctx))
                .collect::<Result<_>>()?;
            let mut out = Vec::with_capacity(n);
            let mut vals = Vec::with_capacity(args.len());
            for i in 0..n {
                vals.clear();
                for a in &arg_cols {
                    vals.push(a.get(i));
                }
                out.push(func.eval(&vals)?);
            }
            Evaluated::Col(Rc::new(Column::from_values(&out)))
        }
        BExpr::Case { whens, else_expr } => {
            let mut out = vec![Value::Null; n];
            let mut remaining: Vec<usize> = (0..n).collect();
            for (cond, value) in whens {
                if remaining.is_empty() {
                    break;
                }
                let sub_sel: Vec<usize> = remaining.iter().map(|&i| sel[i]).collect();
                let c = eval_col(cond, chunk, &sub_sel, ctx)?;
                let mut matched = Vec::new();
                let mut rest = Vec::new();
                for (k, &i) in remaining.iter().enumerate() {
                    if truthy(&c.get(k)) {
                        matched.push(i);
                    } else {
                        rest.push(i);
                    }
                }
                if !matched.is_empty() {
                    let msel: Vec<usize> = matched.iter().map(|&i| sel[i]).collect();
                    let v = eval_col(value, chunk, &msel, ctx)?;
                    for (k, &i) in matched.iter().enumerate() {
                        out[i] = v.get(k);
                    }
                }
                remaining = rest;
            }
            if let Some(e) = else_expr {
                if !remaining.is_empty() {
                    let esel: Vec<usize> = remaining.iter().map(|&i| sel[i]).collect();
                    let v = eval_col(e, chunk, &esel, ctx)?;
                    for (k, &i) in remaining.iter().enumerate() {
                        out[i] = v.get(k);
                    }
                }
            }
            Evaluated::Col(Rc::new(Column::from_values(&out)))
        }
        BExpr::Cast { expr, ty } => {
            let v = eval_col(expr, chunk, sel, ctx)?;
            if let Evaluated::Scalar(s) = &v {
                return Ok(Evaluated::Scalar(s.clone().cast(ty)?));
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(v.get(i).cast(ty)?);
            }
            Evaluated::Col(Rc::new(Column::from_values(&out)))
        }
        BExpr::InList {
            expr,
            list,
            negated,
        } => {
            if !list.iter().all(|item| matches!(item, BExpr::Lit(_))) {
                // Non-literal candidates: defer to the row engine per row so
                // lazy evaluation order (and its errors) match exactly.
                return eval_rowwise(
                    &BExpr::InList {
                        expr: expr.clone(),
                        list: list.clone(),
                        negated: *negated,
                    },
                    chunk,
                    sel,
                    ctx,
                );
            }
            let lits: Vec<&Value> = list
                .iter()
                .map(|item| match item {
                    BExpr::Lit(v) => v,
                    _ => unreachable!("checked above"),
                })
                .collect();
            let v = eval_col(expr, chunk, sel, ctx)?;
            let mut out = BoolBuilder::new(n);
            for i in 0..n {
                let vi = v.get(i);
                if vi.is_null() {
                    out.set_null(i);
                    continue;
                }
                let mut saw_null = false;
                let mut found = false;
                for c in &lits {
                    if c.is_null() {
                        saw_null = true;
                    } else if **c == vi {
                        found = true;
                        break;
                    }
                }
                if found {
                    out.set(i, !negated);
                } else if saw_null {
                    out.set_null(i);
                } else {
                    out.set(i, *negated);
                }
            }
            out.finish()
        }
        BExpr::IsNull { expr, negated } => {
            let v = eval_col(expr, chunk, sel, ctx)?;
            match &v {
                Evaluated::Scalar(s) => Evaluated::Scalar(Value::Bool(s.is_null() != *negated)),
                Evaluated::Col(c) => {
                    let mut out = BoolBuilder::new(n);
                    for i in 0..n {
                        out.set(i, c.is_null(i) != *negated);
                    }
                    out.finish()
                }
            }
        }
        BExpr::Subplan(i) => Evaluated::Scalar(ctx.subplan_value(*i)?),
    })
}

/// Per-row fallback: materialize each selected row and defer to the row
/// engine's evaluator (exact semantics by construction).
fn eval_rowwise(
    expr: &BExpr,
    chunk: &ColumnChunk,
    sel: &[usize],
    ctx: &ExecContext<'_>,
) -> Result<Evaluated> {
    let mut out = Vec::with_capacity(sel.len());
    for &r in sel {
        let row = chunk.get_row(r);
        out.push(eval(expr, &row, ctx)?);
    }
    Ok(Evaluated::Col(Rc::new(Column::from_values(&out))))
}

fn unary_one(op: UnaryOp, v: &Value) -> Result<Value> {
    use crate::error::SqlError;
    Ok(match op {
        UnaryOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            other => Value::Float(-other.as_f64()?),
        },
        UnaryOp::Not => match v {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => return Err(SqlError::exec(format!("NOT of non-boolean {other}"))),
        },
    })
}

/// One side of a numeric fast path.
enum NumSide<'a> {
    IntCol(&'a [i64], &'a NullBitmap),
    FloatCol(&'a [f64], &'a NullBitmap),
    IntConst(i64),
    FloatConst(f64),
}

impl NumSide<'_> {
    #[inline]
    fn is_null(&self, i: usize) -> bool {
        match self {
            NumSide::IntCol(_, n) | NumSide::FloatCol(_, n) => n.is_null(i),
            _ => false,
        }
    }

    #[inline]
    fn int_at(&self, i: usize) -> i64 {
        match self {
            NumSide::IntCol(v, _) => v[i],
            NumSide::IntConst(c) => *c,
            _ => unreachable!("int access on float side"),
        }
    }

    #[inline]
    fn f64_at(&self, i: usize) -> f64 {
        match self {
            NumSide::IntCol(v, _) => v[i] as f64,
            NumSide::FloatCol(v, _) => v[i],
            NumSide::IntConst(c) => *c as f64,
            NumSide::FloatConst(c) => *c,
        }
    }

    fn is_int(&self) -> bool {
        matches!(self, NumSide::IntCol(..) | NumSide::IntConst(_))
    }
}

fn num_side<'a>(e: &'a Evaluated) -> Option<NumSide<'a>> {
    match e {
        Evaluated::Col(c) => match c.data() {
            ColumnData::Int(v) => Some(NumSide::IntCol(v, c.nulls())),
            ColumnData::Float(v) => Some(NumSide::FloatCol(v, c.nulls())),
            _ => None,
        },
        Evaluated::Scalar(Value::Int(i)) => Some(NumSide::IntConst(*i)),
        Evaluated::Scalar(Value::Float(f)) => Some(NumSide::FloatConst(*f)),
        _ => None,
    }
}

/// Vectorized binary operator (everything except AND/OR, which need lazy
/// selection splitting and are handled in [`eval_col`]).
fn binary_vec(op: BinaryOp, l: &Evaluated, r: &Evaluated, n: usize) -> Result<Evaluated> {
    use BinaryOp::*;
    // A NULL scalar operand makes every row NULL for all non-Concat
    // operators (the row engine checks nulls before anything can error).
    if op != Concat
        && (matches!(l, Evaluated::Scalar(Value::Null))
            || matches!(r, Evaluated::Scalar(Value::Null)))
    {
        return Ok(Evaluated::Scalar(Value::Null));
    }
    if let (Evaluated::Scalar(a), Evaluated::Scalar(b)) = (l, r) {
        return Ok(Evaluated::Scalar(binary(op, a, b)?));
    }
    // Typed fast paths over int/float columns.
    if let (Some(a), Some(b)) = (num_side(l), num_side(r)) {
        match op {
            Eq | NotEq | Lt | Gt | Le | Ge => {
                let both_int = a.is_int() && b.is_int();
                let mut out = BoolBuilder::new(n);
                for i in 0..n {
                    if a.is_null(i) || b.is_null(i) {
                        out.set_null(i);
                        continue;
                    }
                    // Value::cmp semantics: int/int compares exactly, any
                    // float side compares by f64 total order.
                    let ord = if both_int {
                        a.int_at(i).cmp(&b.int_at(i))
                    } else {
                        a.f64_at(i).total_cmp(&b.f64_at(i))
                    };
                    out.set(
                        i,
                        match op {
                            Eq => ord == Ordering::Equal,
                            NotEq => ord != Ordering::Equal,
                            Lt => ord == Ordering::Less,
                            Gt => ord == Ordering::Greater,
                            Le => ord != Ordering::Greater,
                            Ge => ord != Ordering::Less,
                            _ => unreachable!("comparison op"),
                        },
                    );
                }
                return Ok(out.finish());
            }
            Add | Sub | Mul => {
                let f = |x: f64, y: f64| match op {
                    Add => x + y,
                    Sub => x - y,
                    _ => x * y,
                };
                if a.is_int() && b.is_int() {
                    // Int arithmetic runs in f64 and narrows back when the
                    // result is integral in range (`eval::arith`); a single
                    // overflowing row widens just that row to float, so the
                    // output is built as values.
                    let mut out = Vec::with_capacity(n);
                    for i in 0..n {
                        if a.is_null(i) || b.is_null(i) {
                            out.push(Value::Null);
                            continue;
                        }
                        let x = f(a.int_at(i) as f64, b.int_at(i) as f64);
                        out.push(if x.fract() == 0.0 && x.abs() < 9.0e15 {
                            Value::Int(x as i64)
                        } else {
                            Value::Float(x)
                        });
                    }
                    return Ok(Evaluated::Col(Rc::new(Column::from_values(&out))));
                }
                let mut nulls = NullBitmap::new_valid(n);
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    if a.is_null(i) || b.is_null(i) {
                        nulls.set_null(i);
                        out.push(0.0);
                    } else {
                        out.push(f(a.f64_at(i), b.f64_at(i)));
                    }
                }
                return Ok(Evaluated::Col(Rc::new(Column::new(
                    ColumnData::Float(out),
                    nulls,
                ))));
            }
            _ => {}
        }
    }
    // Generic path: per-row values through the row engine's operator.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(binary(op, &l.get(i), &r.get(i))?);
    }
    Ok(Evaluated::Col(Rc::new(Column::from_values(&out))))
}
