//! Pluggable storage backends: volatile (the default) or WAL-backed.
//!
//! The engine funnels every catalog-visible mutation through a
//! [`StorageBackend`]. [`MemoryBackend`] discards them (the original,
//! Umbra-like volatile engine); [`DurableBackend`] writes them to an
//! `elephant-store` write-ahead log before the statement is acknowledged
//! and can fold the whole catalog into a columnar snapshot on `CHECKPOINT`.
//!
//! The backend deals in [`TableImage`]s — schema, serial counters, and rows
//! in ctid order — which round-trip losslessly to and from the engine's
//! [`Table`] representation, so a recovered engine reproduces ctid
//! assignment exactly (the paper's inspection joins are keyed on ctid).

use crate::catalog::Catalog;
use crate::error::Result;
use crate::storage::{Relation, Table};
use elephant_store::{
    CheckpointStats, FsyncPolicy, RecoveryReport, Store, StoreConfig, StoreStats, TableImage,
    WalHandle, WalRecord,
};
use std::path::Path;

/// Where acknowledged mutations go.
pub trait StorageBackend {
    /// Record one mutation. Called *after* the in-memory apply succeeded
    /// and *before* the statement is acknowledged to the caller; durable
    /// backends must not return until the record is as safe as their fsync
    /// policy promises. An `Err` obliges the caller to roll the in-memory
    /// apply back (the engine does, then degrades to read-only): a failed
    /// log must leave neither memory nor replay with the mutation.
    fn log(&mut self, record: &WalRecord) -> Result<()>;

    /// Snapshot the given catalog and truncate the log. `None` means the
    /// backend has nothing to checkpoint (volatile).
    fn checkpoint(&mut self, catalog: &Catalog) -> Result<Option<CheckpointStats>>;

    /// What recovery found when this backend was opened, if it recovers.
    fn recovery_report(&self) -> Option<&RecoveryReport>;

    /// Live storage counters, if the backend keeps any.
    fn store_stats(&self) -> Option<StoreStats>;

    /// True when mutations survive a process kill.
    fn is_durable(&self) -> bool;

    /// The backend's replication surface (WAL + snapshot paths and the
    /// committed-LSN watermark); `None` when there is nothing to ship.
    fn wal_handle(&self) -> Option<WalHandle> {
        None
    }

    /// Open a group-commit window: under an `always` fsync policy,
    /// subsequent [`StorageBackend::log`] calls defer their fsync *and*
    /// acknowledgment until [`StorageBackend::end_group`] issues one fsync
    /// for the whole batch. A no-op for volatile backends and lax fsync
    /// policies.
    fn begin_group(&mut self) {}

    /// Close the group-commit window; returns how many deferred records
    /// the closing fsync acknowledged (0 when nothing was deferred). On
    /// `Err`, every deferred record was cut back out of the log and the
    /// caller must unwind the matching in-memory effects.
    fn end_group(&mut self) -> Result<u64> {
        Ok(0)
    }

    /// Durably stage this engine's slice of a cross-shard transaction: a
    /// single `PREPARE` frame, fsynced regardless of policy, holding the
    /// captured records. Volatile backends accept and discard it.
    fn log_txn_prepare(&mut self, _txn_id: u64, _records: Vec<WalRecord>) -> Result<()> {
        Ok(())
    }

    /// Append + fsync the `COMMIT` outcome marker for a prepared group.
    fn log_txn_commit(&mut self, _txn_id: u64) -> Result<()> {
        Ok(())
    }

    /// Append + fsync the `ABORT` outcome marker for a prepared group.
    fn log_txn_abort(&mut self, _txn_id: u64) -> Result<()> {
        Ok(())
    }
}

/// The volatile backend: every operation is a no-op.
#[derive(Debug, Default)]
pub struct MemoryBackend;

impl StorageBackend for MemoryBackend {
    fn log(&mut self, _record: &WalRecord) -> Result<()> {
        Ok(())
    }

    fn checkpoint(&mut self, _catalog: &Catalog) -> Result<Option<CheckpointStats>> {
        Ok(None)
    }

    fn recovery_report(&self) -> Option<&RecoveryReport> {
        None
    }

    fn store_stats(&self) -> Option<StoreStats> {
        None
    }

    fn is_durable(&self) -> bool {
        false
    }
}

/// The WAL-backed backend.
#[derive(Debug)]
pub struct DurableBackend {
    store: Store,
    recovery: RecoveryReport,
}

impl DurableBackend {
    /// Open (or create) the store under `dir`, recovering whatever it
    /// holds. Returns the backend plus the recovered tables for the caller
    /// to install into its catalog.
    pub fn open(dir: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<(DurableBackend, Vec<Table>)> {
        DurableBackend::open_with_decisions(dir, fsync, std::collections::HashMap::new())
    }

    /// [`DurableBackend::open`] with the coordinator's 2PC verdict map:
    /// recovery resolves any in-doubt prepared group against it (commit
    /// decision → apply, otherwise presumed abort).
    pub fn open_with_decisions(
        dir: impl AsRef<Path>,
        fsync: FsyncPolicy,
        txn_decisions: std::collections::HashMap<u64, bool>,
    ) -> Result<(DurableBackend, Vec<Table>)> {
        let config = StoreConfig::new(dir.as_ref())
            .with_fsync(fsync)
            .with_txn_decisions(txn_decisions);
        let (store, images, recovery) = Store::open(config)?;
        let tables = images.into_iter().map(image_to_table).collect();
        Ok((DurableBackend { store, recovery }, tables))
    }
}

impl StorageBackend for DurableBackend {
    fn log(&mut self, record: &WalRecord) -> Result<()> {
        self.store.log(record)?;
        Ok(())
    }

    fn checkpoint(&mut self, catalog: &Catalog) -> Result<Option<CheckpointStats>> {
        // This runs on the executor thread: a typed error degrades one
        // checkpoint, a panic would take the whole server down.
        let mut images: Vec<TableImage> = Vec::new();
        for name in catalog.table_names() {
            let table = catalog.table(name).ok_or_else(|| {
                crate::error::SqlError::catalog(format!(
                    "table '{name}' vanished from the catalog mid-checkpoint"
                ))
            })?;
            images.push(table_to_image(table));
        }
        let refs: Vec<&TableImage> = images.iter().collect();
        Ok(Some(self.store.checkpoint(&refs)?))
    }

    fn recovery_report(&self) -> Option<&RecoveryReport> {
        Some(&self.recovery)
    }

    fn store_stats(&self) -> Option<StoreStats> {
        Some(self.store.stats())
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn wal_handle(&self) -> Option<WalHandle> {
        Some(self.store.wal_handle())
    }

    fn begin_group(&mut self) {
        self.store.begin_group();
    }

    fn end_group(&mut self) -> Result<u64> {
        Ok(self.store.end_group()?)
    }

    fn log_txn_prepare(&mut self, txn_id: u64, records: Vec<WalRecord>) -> Result<()> {
        self.store.log_txn_prepare(txn_id, records)?;
        Ok(())
    }

    fn log_txn_commit(&mut self, txn_id: u64) -> Result<()> {
        self.store.log_txn_commit(txn_id)?;
        Ok(())
    }

    fn log_txn_abort(&mut self, txn_id: u64) -> Result<()> {
        self.store.log_txn_abort(txn_id)?;
        Ok(())
    }
}

/// Convert a recovered image into a live table (ctid order preserved).
pub(crate) fn image_to_table(img: TableImage) -> Table {
    Table {
        name: img.name,
        data: Relation {
            columns: img.columns,
            types: img.types,
            rows: img.rows,
        },
        serial_next: img.serial_next,
    }
}

/// Clone a live table into a snapshot image.
pub(crate) fn table_to_image(table: &Table) -> TableImage {
    TableImage {
        name: table.name.clone(),
        columns: table.data.columns.clone(),
        types: table.data.types.clone(),
        serial_next: table.serial_next.clone(),
        rows: table.data.rows.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::{DataType, Value};

    #[test]
    fn image_round_trips_through_table() {
        let img = TableImage {
            name: "t".into(),
            columns: vec!["id".into(), "v".into()],
            types: vec![DataType::Serial, DataType::Text],
            serial_next: vec![(0, 4)],
            rows: vec![
                vec![Value::Int(1), Value::text("a")],
                vec![Value::Int(3), Value::Null],
            ],
        };
        let table = image_to_table(img.clone());
        assert_eq!(table.serial_next, vec![(0, 4)]);
        assert_eq!(table_to_image(&table), img);
    }

    #[test]
    fn memory_backend_is_inert() {
        let mut b = MemoryBackend;
        assert!(!b.is_durable());
        assert!(b.log(&WalRecord::DropTable { name: "x".into() }).is_ok());
        assert!(b.checkpoint(&Catalog::new()).unwrap().is_none());
        assert!(b.recovery_report().is_none());
        assert!(b.store_stats().is_none());
    }
}
