//! SQL token vocabulary.

use etypes::Value;
use std::fmt;

/// A token with its 1-based source line (for error messages in multi-line
/// generated queries).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind/payload.
    pub kind: Tok,
    /// 1-based line.
    pub line: usize,
}

/// Token kinds. Keywords are lexed as `Word` and classified by the parser so
/// that non-reserved words can still be identifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare (unquoted) word, stored lower-cased; could be keyword or ident.
    Word(String),
    /// `"Quoted"` identifier, case preserved.
    QuotedIdent(String),
    /// Literal value (number, string, boolean handled as Word).
    Literal(Value),
    /// Positional parameter placeholder `$1`, `$2`, ... (1-based).
    Param(usize),
    /// Positional star `*`.
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||` string/array concatenation.
    Concat,
    /// `::` cast.
    DoubleColon,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "{w}"),
            Tok::QuotedIdent(w) => write!(f, "\"{w}\""),
            Tok::Literal(v) => write!(f, "{}", v.sql_literal()),
            Tok::Param(n) => write!(f, "${n}"),
            Tok::Star => write!(f, "*"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semicolon => write!(f, ";"),
            Tok::Dot => write!(f, "."),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Concat => write!(f, "||"),
            Tok::DoubleColon => write!(f, "::"),
            Tok::Eq => write!(f, "="),
            Tok::NotEq => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::Le => write!(f, "<="),
            Tok::Ge => write!(f, ">="),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}
