//! The engine façade: parse → bind → optimize → execute.

use crate::ast::Statement;
use crate::binder::bind_select;
use crate::cache::{collect_table_deps, CachedPlan, PlanCache, PlanCacheStats};
use crate::catalog::{Catalog, ViewDef};
use crate::colexec::{self, ExecMode};
use crate::durable::{DurableBackend, MemoryBackend, StorageBackend};
use crate::error::{Result, SqlError};
use crate::exec::{execute_root, ExecContext, ExecStats};
use crate::optimizer::optimize;
use crate::profile::EngineProfile;
use crate::storage::{Relation, Table};
use crate::trace::{EngineTrace, Phase, QueryProfile};
use elephant_store::{
    CheckpointStats, FsyncPolicy, RecoveryReport, StoreStats, TableImage, WalHandle, WalRecord,
};
use etypes::{CsvOptions, DataType, Value};
use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Accumulated engine counters (sums over all executed queries).
pub type EngineStats = ExecStats;

/// The engine's durability health.
///
/// A durable engine starts `Healthy`. The first WAL append or fsync failure
/// rolls the in-memory mutation back and degrades the engine to
/// `ReadOnly`: reads and inspection keep serving, writes fail fast with
/// [`SqlError::ReadOnly`] instead of silently diverging memory from disk. A
/// successful [`Engine::checkpoint`] re-arms to `Healthy` — the checkpoint
/// rewrites the snapshot from (consistent) memory and truncates the WAL,
/// discarding any torn tail the failure left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// Writes are accepted and logged.
    Healthy,
    /// Writes are refused; carries the cause of the degradation.
    ReadOnly {
        /// Human-readable description of the failure that degraded us.
        reason: String,
    },
}

impl Health {
    /// One-line render for `STATS` / diagnostics.
    pub fn render(&self) -> String {
        match self {
            Health::Healthy => "healthy".to_string(),
            Health::ReadOnly { reason } => format!("read_only ({reason})"),
        }
    }
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Result rows for SELECTs, `None` for DDL/DML.
    pub relation: Option<Relation>,
    /// Rows inserted/copied for DML.
    pub rows_affected: usize,
}

/// An embedded SQL engine instance.
///
/// ```
/// use sqlengine::{Engine, EngineProfile};
/// let mut e = Engine::new(EngineProfile::in_memory());
/// e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2);").unwrap();
/// let out = e.execute("SELECT count(*) AS n FROM t").unwrap();
/// assert_eq!(out.relation.unwrap().rows[0][0], etypes::Value::Int(2));
/// ```
pub struct Engine {
    catalog: Catalog,
    profile: EngineProfile,
    stats: EngineStats,
    queries_run: u64,
    plan_cache: PlanCache,
    prepared: HashMap<String, String>,
    backend: Box<dyn StorageBackend>,
    trace: EngineTrace,
    capture_profiles: bool,
    last_profile: Option<QueryProfile>,
    health: Health,
    /// When set, mutations bypass the WAL *and* the read-only gate: the
    /// inspection path recreates its tables on every run, so logging them
    /// would only bloat the WAL — and refusing them would take inspection
    /// down with the first durability failure.
    unlogged: bool,
    statement_timeout: Option<Duration>,
    /// Set by [`Engine::pin_read_only`]: the read-only state is a *role*
    /// (replica serving shipped WAL), not a recoverable failure, so writes
    /// are refused up front — even on volatile engines, which never reach
    /// the WAL-side health gate — and `CHECKPOINT` does not re-arm.
    pinned_read_only: bool,
    /// Checkpoint automatically once the WAL grows past this many bytes.
    auto_checkpoint_wal_bytes: Option<u64>,
    /// Auto-checkpoints taken so far (surfaced in `STATS`).
    auto_checkpoints: u64,
    /// Which execution subsystem runs queries (row, columnar, or auto).
    exec_mode: ExecMode,
    /// True between [`Engine::begin_commit_group`] and
    /// [`Engine::end_commit_group`]: logged mutations record an undo entry
    /// so a failed group fsync can unwind them all.
    in_commit_group: bool,
    /// Undo entries for mutations whose WAL frames are deferred in the open
    /// group window, in apply order.
    group_undo: Vec<GroupUndo>,
    /// Bumped whenever `group_undo` is retired without unwinding (group
    /// fsync succeeded, or a checkpoint made the entries snapshot-durable).
    /// Callers holding per-statement marks compare epochs to know whether
    /// "this statement deferred its commit" is still true.
    group_epoch: u64,
    /// While `Some`, [`Engine::log_durable`] diverts records here instead of
    /// the backend: the 2PC prepare path runs statements normally, captures
    /// their WAL records, and stages the batch as one `PREPARE` frame.
    txn_capture: Option<Vec<WalRecord>>,
    /// A prepared-but-undecided cross-shard transaction: its in-memory
    /// effects are visible, its WAL records sit in a fsynced `PREPARE`
    /// frame, and these undo entries unwind it on abort.
    prepared_txn: Option<PreparedTxn>,
}

/// See [`Engine::prepare_txn`].
struct PreparedTxn {
    txn_id: u64,
    undo: Vec<GroupUndo>,
}

/// How to undo one logged-but-not-yet-group-committed mutation. Mirrors the
/// per-statement rollback paths exactly: cut appended rows back out,
/// drop an unlogged CREATE, resurrect an unlogged DROP.
enum GroupUndo {
    /// `CREATE TABLE name` — undo by dropping it.
    Create {
        /// The created table's name.
        name: String,
    },
    /// `DROP TABLE` — undo by recreating the saved table.
    Drop {
        /// The dropped table, rows and serials included.
        saved: Table,
    },
    /// `INSERT`/`COPY` — undo by truncating back to the pre-statement row
    /// count and restoring serial counters.
    Append {
        /// Target table.
        table: String,
        /// Row count before the statement.
        first_new_row: usize,
        /// Serial counters before the statement.
        saved_serials: Vec<(usize, i64)>,
    },
}

impl Engine {
    /// Create a volatile engine with the given execution profile.
    pub fn new(profile: EngineProfile) -> Engine {
        Engine::with_backend(profile, Box::new(MemoryBackend))
    }

    /// Create a durable engine backed by a WAL + snapshot store in `dir`,
    /// recovering whatever a previous life left there: DDL and DML are
    /// logged before they are acknowledged, and [`Engine::checkpoint`]
    /// compacts the log into a columnar snapshot. (Views are not persisted;
    /// recreate them after a restart.)
    pub fn open_durable(
        profile: EngineProfile,
        dir: impl AsRef<Path>,
        fsync: FsyncPolicy,
    ) -> Result<Engine> {
        Engine::open_durable_with_decisions(profile, dir, fsync, HashMap::new())
    }

    /// [`Engine::open_durable`] with the coordinator's 2PC verdict map:
    /// recovery resolves in-doubt prepared groups against it (commit
    /// decision → apply, otherwise presumed abort).
    pub fn open_durable_with_decisions(
        profile: EngineProfile,
        dir: impl AsRef<Path>,
        fsync: FsyncPolicy,
        txn_decisions: HashMap<u64, bool>,
    ) -> Result<Engine> {
        let (backend, tables) = DurableBackend::open_with_decisions(dir, fsync, txn_decisions)?;
        let mut engine = Engine::with_backend(profile, Box::new(backend));
        for table in tables {
            engine.catalog.create_table(table)?;
        }
        Ok(engine)
    }

    fn with_backend(profile: EngineProfile, backend: Box<dyn StorageBackend>) -> Engine {
        Engine {
            catalog: Catalog::new(),
            profile,
            stats: EngineStats::default(),
            queries_run: 0,
            plan_cache: PlanCache::default(),
            prepared: HashMap::new(),
            backend,
            trace: EngineTrace::default(),
            capture_profiles: false,
            last_profile: None,
            health: Health::Healthy,
            unlogged: false,
            statement_timeout: None,
            pinned_read_only: false,
            auto_checkpoint_wal_bytes: None,
            auto_checkpoints: 0,
            exec_mode: ExecMode::default(),
            in_commit_group: false,
            group_undo: Vec::new(),
            group_epoch: 0,
            txn_capture: None,
            prepared_txn: None,
        }
    }

    /// Open a group-commit window: until [`Engine::end_commit_group`],
    /// logged mutations on an `always`-fsync durable backend defer their
    /// fsync *and* their durability acknowledgment to the window's single
    /// closing fsync. Each such mutation records an undo entry so the whole
    /// window can be unwound if that fsync fails. A no-op on volatile
    /// engines and lax fsync policies (their appends never fsync per
    /// record, so there is nothing to defer).
    pub fn begin_commit_group(&mut self) {
        self.in_commit_group = true;
        self.backend.begin_group();
    }

    /// Close the group-commit window with one fsync; returns how many
    /// deferred WAL records it acknowledged. On failure every deferred
    /// record was already cut out of the log, so the matching in-memory
    /// effects are unwound here (in reverse apply order), dependent cached
    /// plans are invalidated, and the engine degrades to
    /// [`Health::ReadOnly`] — the same contract as a failed per-statement
    /// append.
    pub fn end_commit_group(&mut self) -> Result<u64> {
        self.in_commit_group = false;
        match self.backend.end_group() {
            Ok(n) => {
                if !self.group_undo.is_empty() {
                    self.group_undo.clear();
                    self.group_epoch += 1;
                }
                Ok(n)
            }
            Err(e) => {
                let undo = std::mem::take(&mut self.group_undo);
                self.unwind_undo(undo);
                self.group_epoch += 1;
                if !self.pinned_read_only {
                    self.health = Health::ReadOnly {
                        reason: e.to_string(),
                    };
                }
                Err(e)
            }
        }
    }

    /// Unwind a list of undo entries in reverse apply order: the shared
    /// rollback path for a failed group fsync, a failed 2PC prepare, and a
    /// 2PC abort. Mirrors the per-statement rollback paths exactly.
    fn unwind_undo(&mut self, undo: Vec<GroupUndo>) {
        for entry in undo.into_iter().rev() {
            match entry {
                GroupUndo::Create { name } => {
                    let _ = self.catalog.drop(&name, false, true);
                    self.plan_cache.invalidate_table(&name);
                }
                GroupUndo::Drop { saved } => {
                    let name = saved.name.clone();
                    let _ = self.catalog.create_table(saved);
                    self.plan_cache.invalidate_table(&name);
                }
                GroupUndo::Append {
                    table,
                    first_new_row,
                    saved_serials,
                } => self.rollback_append(&table, first_new_row, saved_serials),
            }
        }
    }

    /// Statements whose durability is deferred in the open group window.
    pub fn group_pending(&self) -> usize {
        self.group_undo.len()
    }

    /// See [`Engine::end_commit_group`]: marks taken under an older epoch
    /// refer to entries that were already retired (committed or
    /// snapshot-covered), not to anything a group failure would unwind.
    pub fn group_epoch(&self) -> u64 {
        self.group_epoch
    }

    /// Phase one of two-phase commit, participant side: execute this
    /// shard's slice of a cross-shard transaction and durably **prepare**
    /// it. The statements run through the normal per-statement validation
    /// and rollback paths, but their WAL records are captured and staged as
    /// a single `PREPARE{txn_id, records}` frame, fsynced before this
    /// returns — once it returns Ok, the coordinator may decide commit.
    /// The in-memory effects stay visible; [`Engine::commit_prepared`]
    /// retires them and [`Engine::abort_prepared`] unwinds them. Returns
    /// the total rows affected.
    ///
    /// At most one transaction can be prepared at a time: the caller (the
    /// shard executor) blocks for the coordinator's decision, so a second
    /// prepare cannot arrive while one is pending.
    pub fn prepare_txn(&mut self, txn_id: u64, sql: &str) -> Result<usize> {
        if self.prepared_txn.is_some() {
            return Err(SqlError::exec(
                "a transaction is already prepared and undecided",
            ));
        }
        if self.in_commit_group {
            return Err(SqlError::exec(
                "2PC prepare inside an open group-commit window",
            ));
        }
        if let Health::ReadOnly { reason } = &self.health {
            return Err(SqlError::ReadOnly(reason.clone()));
        }
        self.txn_capture = Some(Vec::new());
        let saved_undo = std::mem::take(&mut self.group_undo);
        let result = self.execute_script(sql);
        let captured = self.txn_capture.take().unwrap_or_default();
        let undo = std::mem::replace(&mut self.group_undo, saved_undo);
        match result {
            Ok(outcomes) => {
                if !captured.is_empty() {
                    if let Err(e) = self.backend.log_txn_prepare(txn_id, captured) {
                        // The prepare never became durable: unwind the
                        // in-memory effects and degrade, the same contract
                        // as a failed per-statement append.
                        self.unwind_undo(undo);
                        if !self.pinned_read_only {
                            self.health = Health::ReadOnly {
                                reason: e.to_string(),
                            };
                        }
                        return Err(e);
                    }
                }
                let rows = outcomes.iter().map(|o| o.rows_affected).sum();
                self.prepared_txn = Some(PreparedTxn { txn_id, undo });
                Ok(rows)
            }
            Err(e) => {
                // A statement failed mid-slice: earlier statements already
                // applied in memory but nothing reached the WAL, so unwind
                // them and vote abort by reporting the error.
                self.unwind_undo(undo);
                Err(e)
            }
        }
    }

    /// Phase two, commit: append + fsync the `COMMIT` outcome marker and
    /// retire the prepared transaction's undo entries. On a marker append
    /// failure the in-memory effects are **kept** — the coordinator already
    /// durably decided commit, recovery will apply the group from the
    /// prepare frame plus the decision log — but the engine degrades to
    /// read-only until a checkpoint reconciles disk with memory.
    pub fn commit_prepared(&mut self, txn_id: u64) -> Result<()> {
        let txn = self
            .prepared_txn
            .take()
            .ok_or_else(|| SqlError::exec("no prepared transaction to commit"))?;
        if txn.txn_id != txn_id {
            let have = txn.txn_id;
            self.prepared_txn = Some(txn);
            return Err(SqlError::exec(format!(
                "commit for txn {txn_id} but txn {have} is prepared"
            )));
        }
        self.group_epoch += 1;
        if let Err(e) = self.backend.log_txn_commit(txn_id) {
            if !self.pinned_read_only {
                self.health = Health::ReadOnly {
                    reason: e.to_string(),
                };
            }
            return Err(e);
        }
        Ok(())
    }

    /// Phase two, abort: unwind the prepared transaction's in-memory
    /// effects (reverse apply order), then append the `ABORT` outcome
    /// marker. The unwind happens regardless of the marker append's fate:
    /// presumed-abort guarantees recovery discards the group either way, so
    /// memory must match that outcome now.
    pub fn abort_prepared(&mut self, txn_id: u64) -> Result<()> {
        let txn = self
            .prepared_txn
            .take()
            .ok_or_else(|| SqlError::exec("no prepared transaction to abort"))?;
        if txn.txn_id != txn_id {
            let have = txn.txn_id;
            self.prepared_txn = Some(txn);
            return Err(SqlError::exec(format!(
                "abort for txn {txn_id} but txn {have} is prepared"
            )));
        }
        self.unwind_undo(txn.undo);
        self.group_epoch += 1;
        if let Err(e) = self.backend.log_txn_abort(txn_id) {
            if !self.pinned_read_only {
                self.health = Health::ReadOnly {
                    reason: e.to_string(),
                };
            }
            return Err(e);
        }
        Ok(())
    }

    /// The id of the currently prepared-but-undecided transaction, if any.
    pub fn prepared_txn_id(&self) -> Option<u64> {
        self.prepared_txn.as_ref().map(|t| t.txn_id)
    }

    /// Record how to undo a mutation whose WAL frame is deferred in the
    /// open group window. Outside a window — or when nothing was actually
    /// logged (volatile backend, unlogged mode) — there is nothing a group
    /// failure could unwind, so nothing is recorded.
    fn note_group_undo(&mut self, undo: GroupUndo) {
        if self.unlogged {
            return;
        }
        // Inside a 2PC prepare capture, *every* mutation records its undo
        // (abort must unwind even on a volatile backend); inside a plain
        // group window, only durably logged mutations can be unwound by a
        // failed group fsync.
        if self.txn_capture.is_some() || (self.in_commit_group && self.backend.is_durable()) {
            self.group_undo.push(undo);
        }
    }

    /// The active execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Select which execution subsystem runs queries. Cached plans are
    /// keyed by `(mode, sql)`, so switching modes never re-executes a plan
    /// whose Auto decision was made under the other mode.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The engine's durability health. Volatile engines are always
    /// [`Health::Healthy`] (there is no disk to diverge from).
    pub fn health(&self) -> &Health {
        &self.health
    }

    /// Pin the engine into [`Health::ReadOnly`] permanently: replicas serve
    /// reads and apply shipped WAL records, but refuse every client write —
    /// including on volatile backends, where the WAL-side health gate never
    /// fires — and no `CHECKPOINT` re-arms them. There is deliberately no
    /// unpin: promotion means restarting in leader mode.
    pub fn pin_read_only(&mut self, reason: impl Into<String>) {
        self.health = Health::ReadOnly {
            reason: reason.into(),
        };
        self.pinned_read_only = true;
    }

    /// True when [`Engine::pin_read_only`] was called.
    pub fn is_pinned_read_only(&self) -> bool {
        self.pinned_read_only
    }

    /// Checkpoint automatically once the WAL file grows past `bytes`
    /// (checked after each logged mutation). Bounds both recovery time and
    /// replication-bootstrap size. `None` disables the policy.
    pub fn set_auto_checkpoint_wal_bytes(&mut self, bytes: Option<u64>) {
        self.auto_checkpoint_wal_bytes = bytes.filter(|b| *b > 0);
    }

    /// Auto-checkpoints taken since open.
    pub fn auto_checkpoints(&self) -> u64 {
        self.auto_checkpoints
    }

    /// The durable backend's replication surface (WAL + snapshot paths and
    /// the committed-LSN watermark); `None` on volatile engines.
    pub fn wal_handle(&self) -> Option<WalHandle> {
        self.backend.wal_handle()
    }

    /// Bypass the WAL and the read-only gate for subsequent mutations
    /// (the inspection path: its tables are recreated on every run, so
    /// they are deliberately not durable). Restore with `false`.
    pub fn set_unlogged(&mut self, unlogged: bool) {
        self.unlogged = unlogged;
    }

    /// Whether mutations currently bypass the WAL.
    pub fn unlogged(&self) -> bool {
        self.unlogged
    }

    /// Enforce a per-statement wall-clock budget: statements whose
    /// execution exceeds it are cancelled cooperatively and fail with
    /// [`SqlError::Timeout`]. `None` disables the budget.
    pub fn set_statement_timeout(&mut self, timeout: Option<Duration>) {
        self.statement_timeout = timeout;
    }

    /// The configured per-statement timeout.
    pub fn statement_timeout(&self) -> Option<Duration> {
        self.statement_timeout
    }

    /// Per-phase latency histograms (lex/parse/bind/optimize/execute and,
    /// when durable, WAL-append/fsync). Tracing is on by default.
    pub fn trace(&self) -> &EngineTrace {
        &self.trace
    }

    /// Turn phase-span recording on or off (the overhead bench's baseline).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Reset the per-phase histograms (between benchmark rounds).
    pub fn reset_trace(&mut self) {
        self.trace.reset();
    }

    /// Install (or clear) the distributed-trace correlation context for the
    /// next command; while set, each phase sample is also captured per
    /// statement for the server's span tree.
    pub fn set_trace_context(&mut self, ctx: Option<etypes::TraceContext>) {
        self.trace.set_context(ctx);
    }

    /// Drain the `(phase, µs)` samples captured since the trace context was
    /// installed.
    pub fn take_phase_spans(&mut self) -> Vec<(crate::trace::Phase, u64)> {
        self.trace.take_statement_spans()
    }

    /// Capture a per-operator [`QueryProfile`] for every query from now on
    /// (slow-query logging); `EXPLAIN ANALYZE` captures one regardless.
    pub fn set_capture_profiles(&mut self, on: bool) {
        self.capture_profiles = on;
    }

    /// The operator profile of the most recent query, when capture was on.
    pub fn last_profile(&self) -> Option<&QueryProfile> {
        self.last_profile.as_ref()
    }

    /// The active profile.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of SELECT queries executed.
    pub fn queries_run(&self) -> u64 {
        self.queries_run
    }

    /// Reset statistics (between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
        self.queries_run = 0;
    }

    /// Direct catalog access (tests, tooling).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (bulk-loading helpers). Changes made through
    /// this handle bypass the WAL: on a durable engine they are volatile
    /// until the next [`Engine::checkpoint`].
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// True when this engine logs mutations to durable storage.
    pub fn is_durable(&self) -> bool {
        self.backend.is_durable()
    }

    /// What recovery found when a durable engine was opened; `None` on
    /// volatile engines.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.backend.recovery_report()
    }

    /// Live storage counters (WAL appends, fsyncs, checkpoints); `None` on
    /// volatile engines.
    pub fn storage_stats(&self) -> Option<StoreStats> {
        self.backend.store_stats()
    }

    /// Snapshot every base table and truncate the WAL. Returns `None` on a
    /// volatile engine (nothing to checkpoint). Materialized state created
    /// through [`Engine::catalog_mut`] becomes durable here too.
    ///
    /// A successful checkpoint re-arms a [`Health::ReadOnly`] engine: the
    /// snapshot was written from memory (which rollback kept consistent)
    /// and the WAL — torn tail and all — was truncated, so the failure
    /// that degraded us has been compacted away. A failed checkpoint
    /// leaves both the health state and the previous snapshot untouched.
    pub fn checkpoint(&mut self) -> Result<Option<CheckpointStats>> {
        if self.txn_capture.is_some() || self.prepared_txn.is_some() {
            // The snapshot would capture (and the WAL truncation would
            // orphan) a transaction whose verdict is not known yet.
            return Err(SqlError::exec(
                "cannot checkpoint while a transaction is prepared but undecided",
            ));
        }
        let stats = self.backend.checkpoint(&self.catalog)?;
        if stats.is_some() && self.health != Health::Healthy && !self.pinned_read_only {
            self.health = Health::Healthy;
        }
        if stats.is_some() && !self.group_undo.is_empty() {
            // The snapshot covers every deferred mutation (it was written
            // from memory, which includes them) and the WAL layer advanced
            // its watermark over them at truncation — they are durable now,
            // so a later group failure must not unwind them.
            self.group_undo.clear();
            self.group_epoch += 1;
        }
        Ok(stats)
    }

    /// Apply one shipped WAL record to the catalog (the replication
    /// follower's write path). Bypasses the WAL and the read-only gate —
    /// the record *is* the leader's log — and mirrors the recovery replay
    /// in `elephant-store` exactly: inserts land verbatim (rows were logged
    /// post-serial-fill, so ctids and serial counters reproduce), updates
    /// and deletes address rows by ctid. DDL invalidates dependent cached
    /// plans, exactly as the leader's own DDL did.
    pub fn apply_wal_record(&mut self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::CreateTable {
                name,
                columns,
                types,
            } => {
                self.catalog
                    .create_table(Table::empty(name.clone(), columns, types))?;
                self.plan_cache.invalidate_table(&name);
            }
            WalRecord::DropTable { name } => {
                self.catalog.drop(&name, false, false)?;
                self.plan_cache.invalidate_table(&name);
            }
            WalRecord::Insert { table, rows } => {
                let t = self
                    .catalog
                    .table_mut(&table)
                    .ok_or_else(|| SqlError::catalog(format!("unknown table '{table}'")))?;
                let width = t.data.columns.len();
                for row in &rows {
                    if row.len() != width {
                        return Err(SqlError::exec(format!(
                            "replicated row arity {} vs table '{table}' arity {width}",
                            row.len()
                        )));
                    }
                }
                for row in &rows {
                    for (idx, next) in &mut t.serial_next {
                        if let Some(Value::Int(v)) = row.get(*idx) {
                            *next = (*next).max(v + 1);
                        }
                    }
                }
                t.data.rows.extend(rows);
            }
            WalRecord::Update { table, rows } => {
                let t = self
                    .catalog
                    .table_mut(&table)
                    .ok_or_else(|| SqlError::catalog(format!("unknown table '{table}'")))?;
                for (ctid, row) in rows {
                    let slot = t.data.rows.get_mut(ctid as usize).ok_or_else(|| {
                        SqlError::exec(format!("update of missing ctid {ctid} in '{table}'"))
                    })?;
                    *slot = row;
                }
            }
            WalRecord::Delete { table, ctids } => {
                let t = self
                    .catalog
                    .table_mut(&table)
                    .ok_or_else(|| SqlError::catalog(format!("unknown table '{table}'")))?;
                let mut ids: Vec<usize> = ctids.iter().map(|c| *c as usize).collect();
                ids.sort_unstable();
                ids.dedup();
                for id in ids.into_iter().rev() {
                    if id >= t.data.rows.len() {
                        return Err(SqlError::exec(format!(
                            "delete of missing ctid {id} in '{table}'"
                        )));
                    }
                    t.data.rows.remove(id);
                }
            }
            WalRecord::TxnPrepare { txn_id, .. }
            | WalRecord::TxnCommit { txn_id }
            | WalRecord::TxnAbort { txn_id }
            | WalRecord::TxnDecision { txn_id, .. } => {
                // Replication is single-shard only and 2PC is multi-shard
                // only, so a shipped transaction marker is a protocol
                // violation, not something to apply.
                return Err(SqlError::exec(format!(
                    "transaction marker for txn {txn_id} cannot be replicated"
                )));
            }
        }
        Ok(())
    }

    /// Replace the whole catalog with the given table images (replication
    /// snapshot bootstrap). Views and every cached plan are dropped: the
    /// follower's state is now whatever the leader's snapshot says it is.
    pub fn reset_from_images(&mut self, images: Vec<TableImage>) -> Result<()> {
        let names: Vec<String> = self
            .catalog
            .table_names()
            .into_iter()
            .map(String::from)
            .collect();
        for name in names {
            self.catalog.drop(&name, false, false)?;
        }
        self.catalog.clear_views();
        for image in images {
            self.catalog
                .create_table(crate::durable::image_to_table(image))?;
        }
        self.plan_cache.invalidate();
        Ok(())
    }

    /// Export the named base tables as [`TableImage`]s (schema, serial
    /// counters, rows in ctid order) — the scatter phase of a cross-shard
    /// read: the owning shard clones its tables so a coordinator can run
    /// the full query over identical data. Views cannot be exported.
    pub fn export_table_images(&self, names: &[String]) -> Result<Vec<TableImage>> {
        names
            .iter()
            .map(|n| {
                self.catalog
                    .table(n)
                    .map(crate::durable::table_to_image)
                    .ok_or_else(|| SqlError::catalog(format!("unknown table '{n}'")))
            })
            .collect()
    }

    /// Install a shipped table image as a transient catalog table — the
    /// gather phase of a cross-shard read. Bypasses the WAL (the owning
    /// shard already made the data durable); pair with
    /// [`Engine::remove_foreign_table`] once the query has run.
    pub fn install_foreign_table(&mut self, image: TableImage) -> Result<()> {
        let name = image.name.clone();
        self.catalog
            .create_table(crate::durable::image_to_table(image))?;
        self.plan_cache.invalidate_table(&name);
        Ok(())
    }

    /// Remove a table installed by [`Engine::install_foreign_table`],
    /// invalidating any plan cached against it meanwhile.
    pub fn remove_foreign_table(&mut self, name: &str) {
        let _ = self.catalog.drop(name, false, true);
        self.plan_cache.invalidate_table(name);
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let mut outcomes = self.execute_script(sql)?;
        outcomes
            .pop()
            .ok_or_else(|| SqlError::exec("empty statement"))
    }

    /// Execute a `;`-separated script, returning one outcome per statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<ExecOutcome>> {
        let statements = self.parse_traced(sql)?;
        let mut outcomes = Vec::with_capacity(statements.len());
        for stmt in statements {
            outcomes.push(self.execute_statement(stmt)?);
        }
        Ok(outcomes)
    }

    /// Lex and parse with each phase attributed to its own trace histogram.
    fn parse_traced(&mut self, sql: &str) -> Result<Vec<Statement>> {
        let t = self.trace.timer();
        let tokens = crate::lexer::tokenize(sql)?;
        self.trace.record(Phase::Lex, t);
        let t = self.trace.timer();
        let statements = crate::parser::parse_tokens(tokens)?;
        self.trace.record(Phase::Parse, t);
        Ok(statements)
    }

    /// [`Engine::parse_traced`] for a single statement.
    fn parse_one_traced(&mut self, sql: &str) -> Result<Statement> {
        let mut stmts = self.parse_traced(sql)?;
        match stmts.len() {
            1 => Ok(stmts.remove(0)),
            n => Err(SqlError::parse(1, format!("expected 1 statement, got {n}"))),
        }
    }

    /// Log one mutation, attributing the whole append (fsync included) to
    /// the WAL-append phase and the fsync share to its own phase.
    ///
    /// This is also the health gate: a [`Health::ReadOnly`] engine refuses
    /// the log *before* touching the backend, and a backend failure
    /// transitions the engine to read-only. Either way an `Err` obliges
    /// the caller to roll the already-applied in-memory mutation back —
    /// every call site does, so memory never diverges from what replay
    /// will reconstruct. Unlogged mode (inspection) bypasses both.
    fn log_durable(&mut self, record: &WalRecord) -> Result<()> {
        if self.unlogged || !self.backend.is_durable() {
            return Ok(());
        }
        if let Health::ReadOnly { reason } = &self.health {
            return Err(SqlError::ReadOnly(reason.clone()));
        }
        if let Some(captured) = &mut self.txn_capture {
            // 2PC prepare capture: the record is staged, not appended — it
            // becomes durable inside the single PREPARE frame.
            captured.push(record.clone());
            return Ok(());
        }
        let result = if self.trace.enabled() {
            let before = self
                .backend
                .store_stats()
                .map(|s| (s.wal.fsyncs, s.wal.fsync_us));
            let started = Instant::now();
            let result = self.backend.log(record);
            self.trace
                .record_duration(Phase::WalAppend, started.elapsed());
            if let (Some((fsyncs, fsync_us)), Some(after)) = (before, self.backend.store_stats()) {
                if after.wal.fsyncs > fsyncs {
                    self.trace
                        .record_us(Phase::Fsync, after.wal.fsync_us.saturating_sub(fsync_us));
                }
            }
            result
        } else {
            self.backend.log(record)
        };
        if let Err(e) = result {
            self.health = Health::ReadOnly {
                reason: e.to_string(),
            };
            return Err(e);
        }
        Ok(())
    }

    /// Execute one parsed statement.
    pub fn execute_statement(&mut self, stmt: Statement) -> Result<ExecOutcome> {
        let is_table_write = statement_writes_tables(&stmt);
        if is_table_write && self.pinned_read_only && !self.unlogged {
            if let Health::ReadOnly { reason } = &self.health {
                return Err(SqlError::ReadOnly(reason.clone()));
            }
        }
        let outcome = self.execute_statement_inner(stmt)?;
        if is_table_write && !self.unlogged {
            self.maybe_auto_checkpoint();
        }
        Ok(outcome)
    }

    /// Checkpoint when the WAL has outgrown the configured budget. The
    /// triggering statement already succeeded and is durable, so a failed
    /// auto-checkpoint is not its failure: compaction is retried after the
    /// next logged write (and `log_durable` degrades health on real WAL
    /// faults anyway).
    fn maybe_auto_checkpoint(&mut self) {
        if self.txn_capture.is_some() {
            // A checkpoint mid-prepare would snapshot uncommitted state.
            return;
        }
        let Some(budget) = self.auto_checkpoint_wal_bytes else {
            return;
        };
        let Some(stats) = self.backend.store_stats() else {
            return;
        };
        if stats.wal.bytes >= budget && self.checkpoint().map(|s| s.is_some()).unwrap_or(false) {
            self.auto_checkpoints += 1;
        }
    }

    fn execute_statement_inner(&mut self, stmt: Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let (names, types): (Vec<String>, Vec<DataType>) =
                    columns.into_iter().map(|c| (c.name, c.ty)).unzip();
                self.catalog.create_table(Table::empty(
                    name.clone(),
                    names.clone(),
                    types.clone(),
                ))?;
                if let Err(e) = self.log_durable(&WalRecord::CreateTable {
                    name: name.clone(),
                    columns: names,
                    types,
                }) {
                    // Unlogged DDL must not outlive the failed statement:
                    // replay would never recreate it.
                    let _ = self.catalog.drop(&name, false, true);
                    return Err(e);
                }
                self.note_group_undo(GroupUndo::Create { name: name.clone() });
                self.plan_cache.invalidate_table(&name);
                Ok(no_rows(0))
            }
            Statement::Drop {
                name,
                is_view,
                if_exists,
            } => {
                // Keep a copy so a failed WAL append can resurrect the
                // table: an unlogged drop would survive in memory but not
                // in replay.
                let saved = (!is_view)
                    .then(|| self.catalog.table(&name).cloned())
                    .flatten();
                self.catalog.drop(&name, is_view, if_exists)?;
                if let Some(saved) = saved {
                    if let Err(e) = self.log_durable(&WalRecord::DropTable { name: name.clone() }) {
                        let _ = self.catalog.create_table(saved);
                        return Err(e);
                    }
                    self.note_group_undo(GroupUndo::Drop { saved });
                }
                self.plan_cache.invalidate_table(&name);
                Ok(no_rows(0))
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => self.insert(&table, columns.as_deref(), &values),
            Statement::Copy {
                table,
                columns,
                path,
                delimiter,
                null_str,
                header,
            } => {
                let mut opts = CsvOptions {
                    delimiter,
                    header,
                    na_values: Vec::new(),
                };
                if !null_str.is_empty() {
                    opts.na_values.push(null_str);
                }
                let csv = etypes::read_csv(&path, &opts)?;
                self.copy_rows(&table, columns.as_deref(), csv)
            }
            Statement::CreateView {
                name,
                query,
                materialized,
            } => {
                let data = if materialized {
                    Some(Rc::new(self.run_query(&query)?))
                } else {
                    // Validate eagerly so errors surface at CREATE time.
                    bind_select(&self.catalog, &self.profile, &query)?;
                    None
                };
                self.catalog.create_view(ViewDef {
                    name: name.clone(),
                    query,
                    materialized: data,
                })?;
                self.plan_cache.invalidate_table(&name);
                Ok(no_rows(0))
            }
            Statement::Select(query) => {
                let relation = self.run_select_cached(&query)?;
                Ok(ExecOutcome {
                    relation: Some(relation),
                    rows_affected: 0,
                })
            }
            Statement::Explain { analyze, query } => {
                let text = if analyze {
                    let (_, profile) = self.run_query_profiled(&query)?;
                    profile.render()
                } else {
                    let (mut root, _) = bind_select(&self.catalog, &self.profile, &query)?;
                    if self.profile.enable_optimizer {
                        optimize(&mut root);
                    }
                    crate::explain::render_plan(&root)
                };
                let rows: Vec<Vec<Value>> = text.lines().map(|l| vec![Value::text(l)]).collect();
                Ok(ExecOutcome {
                    relation: Some(Relation::new(
                        vec!["QUERY PLAN".to_string()],
                        vec![DataType::Text],
                        rows,
                    )?),
                    rows_affected: 0,
                })
            }
        }
    }

    /// Execute a plain SELECT through the plan cache when it normalizes:
    /// literal constants in top-level WHERE comparisons are lifted into `$n`
    /// placeholders (see [`crate::cache::normalize_select_literals`]) so
    /// point lookups differing only in their constants share one cached
    /// parameterized plan. Queries that don't normalize run unbound as
    /// before.
    fn run_select_cached(&mut self, query: &crate::ast::Query) -> Result<Relation> {
        let Some((normalized, values)) = crate::cache::normalize_select_literals(query) else {
            return self.run_query(query);
        };
        // Keyed on the normalized AST (Debug form), prefixed so the keys can
        // never collide with raw-SQL keys from PREPARE/query_cached.
        let key = format!("{}\u{1f}ast\u{1f}{:?}", self.exec_mode, normalized);
        let cached = match self.plan_cache.get(&key) {
            Some(hit) => hit,
            None => {
                let plan = self.plan_query(&normalized)?;
                self.plan_cache.insert(key, plan.clone());
                plan
            }
        };
        self.run_cached(&cached, &values)
    }

    /// Bind, optimize and execute a query to a [`Relation`].
    pub fn run_query(&mut self, query: &crate::ast::Query) -> Result<Relation> {
        let t = self.trace.timer();
        let (mut root, schema) = bind_select(&self.catalog, &self.profile, query)?;
        self.trace.record(Phase::Bind, t);
        if self.profile.enable_optimizer {
            let t = self.trace.timer();
            optimize(&mut root);
            self.trace.record(Phase::Optimize, t);
        }
        self.run_bound(&root, &schema)
    }

    /// Run a query with operator profiling forced on, returning both the
    /// result and its [`QueryProfile`] (the `EXPLAIN ANALYZE` path).
    fn run_query_profiled(
        &mut self,
        query: &crate::ast::Query,
    ) -> Result<(Relation, QueryProfile)> {
        let prev = self.capture_profiles;
        self.capture_profiles = true;
        let result = self.run_query(query);
        self.capture_profiles = prev;
        let relation = result?;
        let profile = self
            .last_profile
            .clone()
            .ok_or_else(|| SqlError::exec("operator profiling captured nothing"))?;
        Ok((relation, profile))
    }

    /// Execute an already bound + optimized plan.
    fn run_bound(
        &mut self,
        root: &crate::plan::PlanRoot,
        schema: &crate::plan::Schema,
    ) -> Result<Relation> {
        let mut ctx = ExecContext::new(&self.catalog, &self.profile, root);
        if self.capture_profiles {
            ctx.enable_profiling();
        }
        if let Some(timeout) = self.statement_timeout {
            ctx.set_deadline(Instant::now() + timeout, timeout.as_millis() as u64);
        }
        let columnar = match self.exec_mode {
            ExecMode::Row => false,
            ExecMode::Columnar => true,
            ExecMode::Auto => colexec::fully_vectorized(root),
        };
        let started = (self.trace.enabled() || self.capture_profiles).then(Instant::now);
        let rows = if columnar {
            colexec::execute_root(&ctx)?
        } else {
            execute_root(&ctx)?
        };
        let elapsed_us = started.map(|t| t.elapsed().as_micros() as u64);
        if let Some(us) = elapsed_us {
            self.trace.record_us(Phase::Execute, us);
        }
        let run_stats = ctx.stats.borrow().clone();
        self.stats.pages_read += run_stats.pages_read;
        self.stats.pages_written += run_stats.pages_written;
        self.stats.ctes_materialized += run_stats.ctes_materialized;
        self.stats.shared_scans += run_stats.shared_scans;
        self.stats.rows_processed += run_stats.rows_processed;
        self.stats.batches_executed += run_stats.batches_executed;
        self.stats.colexec_fallbacks += run_stats.colexec_fallbacks;
        self.queries_run += 1;
        if let Some(profiles) = ctx.take_profiles() {
            self.last_profile = Some(crate::explain::build_query_profile(
                root,
                &profiles,
                elapsed_us.unwrap_or(0),
                rows.len() as u64,
            ));
        }
        Relation::new(schema.names(), schema.types(), rows)
    }

    /// The plan-cache key for `sql` under the current execution mode. Modes
    /// share the cache but not entries: `Auto`'s columnar-or-row decision is
    /// taken per execution, so a plan prepared under one mode must not serve
    /// another.
    fn cache_key(&self, sql: &str) -> String {
        format!("{}\u{1f}{sql}", self.exec_mode)
    }

    /// Plan `sql` (which must be a single SELECT) into the plan cache
    /// without executing it, unless already cached. Returns true when
    /// planning happened, false on a cache hit.
    pub fn prepare_cached(&mut self, sql: &str) -> Result<bool> {
        let key = self.cache_key(sql);
        if self.plan_cache.contains(&key) {
            return Ok(false);
        }
        let plan = self.plan_select(sql)?;
        self.plan_cache.insert(key, plan);
        Ok(true)
    }

    /// Run a single SELECT through the LRU plan cache: parse + bind +
    /// optimize only on a miss, re-execute the cached plan on a hit.
    pub fn query_cached(&mut self, sql: &str) -> Result<Relation> {
        self.query_cached_with(sql, &[])
    }

    /// Run a single SELECT through the plan cache, binding `$n` placeholders
    /// to `params` (1-based: `$1` takes `params[0]`). The parameter count
    /// must match the highest placeholder in the statement exactly.
    pub fn query_cached_with(&mut self, sql: &str, params: &[Value]) -> Result<Relation> {
        let key = self.cache_key(sql);
        let cached = match self.plan_cache.get(&key) {
            Some(hit) => hit,
            None => {
                let plan = self.plan_select(sql)?;
                self.plan_cache.insert(key, plan.clone());
                plan
            }
        };
        self.run_cached(&cached, params)
    }

    /// Execute a cached plan: parameter-free plans run the shared `Rc`
    /// directly; parameterized plans are cloned with every `$n` substituted
    /// by its value before execution, so no runtime path ever sees an
    /// unbound parameter.
    fn run_cached(&mut self, cached: &CachedPlan, params: &[Value]) -> Result<Relation> {
        if cached.params != params.len() {
            return Err(SqlError::bind(format!(
                "statement needs {} parameter{}, got {}",
                cached.params,
                if cached.params == 1 { "" } else { "s" },
                params.len()
            )));
        }
        if cached.params == 0 {
            // Clone the Rc so execution does not borrow the cache.
            let root = Rc::clone(&cached.root);
            self.run_bound(&root, &cached.schema)
        } else {
            let bound = cached.root.bind_params(params);
            self.run_bound(&bound, &cached.schema)
        }
    }

    fn plan_select(&mut self, sql: &str) -> Result<CachedPlan> {
        let stmt = self.parse_one_traced(sql)?;
        let Statement::Select(query) = stmt else {
            return Err(SqlError::bind(
                "only SELECT statements can be prepared/cached",
            ));
        };
        self.plan_query(&query)
    }

    /// Bind + optimize an already parsed SELECT into a cacheable plan.
    fn plan_query(&mut self, query: &crate::ast::Query) -> Result<CachedPlan> {
        let t = self.trace.timer();
        let (mut root, schema) = bind_select(&self.catalog, &self.profile, query)?;
        self.trace.record(Phase::Bind, t);
        if self.profile.enable_optimizer {
            let t = self.trace.timer();
            optimize(&mut root);
            self.trace.record(Phase::Optimize, t);
        }
        let tables = collect_table_deps(query, &root);
        let params = root.max_param();
        Ok(CachedPlan {
            root: Rc::new(root),
            schema,
            tables,
            params,
        })
    }

    /// Register a named prepared statement (PostgreSQL `PREPARE name AS
    /// SELECT ...`): validated and planned eagerly into the plan cache.
    pub fn prepare(&mut self, name: impl Into<String>, sql: impl Into<String>) -> Result<()> {
        let (name, sql) = (name.into(), sql.into());
        self.prepare_cached(&sql)?;
        self.prepared.insert(name, sql);
        Ok(())
    }

    /// Execute a named prepared statement through the plan cache.
    pub fn execute_prepared(&mut self, name: &str) -> Result<Relation> {
        self.execute_prepared_with(name, &[])
    }

    /// Execute a named prepared statement, binding `$n` placeholders to
    /// `params` (the `EXECUTE name (v1, v2, ...)` form).
    pub fn execute_prepared_with(&mut self, name: &str, params: &[Value]) -> Result<Relation> {
        let sql = self
            .prepared
            .get(name)
            .cloned()
            .ok_or_else(|| SqlError::bind(format!("unknown prepared statement '{name}'")))?;
        self.query_cached_with(&sql, params)
    }

    /// Drop a named prepared statement (PostgreSQL `DEALLOCATE`). The plan
    /// may stay cached; only the name binding is removed.
    pub fn deallocate(&mut self, name: &str) -> Result<()> {
        self.prepared
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SqlError::bind(format!("unknown prepared statement '{name}'")))
    }

    /// Plan-cache hit/miss counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Per-table targeted plan-cache invalidation counts (sorted by name).
    pub fn plan_cache_table_invalidations(&self) -> Vec<(String, u64)> {
        self.plan_cache.table_invalidations()
    }

    /// Render the optimized plan of a SELECT (EXPLAIN).
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        let stmt = crate::parser::parse_statement(sql)?;
        let Statement::Select(query) = stmt else {
            return Err(SqlError::bind("EXPLAIN supports SELECT statements only"));
        };
        let (mut root, _) = bind_select(&self.catalog, &self.profile, &query)?;
        if self.profile.enable_optimizer {
            optimize(&mut root);
        }
        Ok(crate::explain::render_plan(&root))
    }

    /// Execute a SELECT and render its plan annotated with per-operator
    /// runtime statistics (`EXPLAIN ANALYZE`).
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        let (_, profile) = self.query_profiled(sql)?;
        Ok(profile.render())
    }

    /// Run a single SELECT with operator profiling, returning the result
    /// and its [`QueryProfile`].
    pub fn query_profiled(&mut self, sql: &str) -> Result<(Relation, QueryProfile)> {
        let stmt = self.parse_one_traced(sql)?;
        let Statement::Select(query) = stmt else {
            return Err(SqlError::bind(
                "EXPLAIN ANALYZE supports SELECT statements only",
            ));
        };
        self.run_query_profiled(&query)
    }

    /// Parse and run a single SELECT, returning its relation.
    pub fn query(&mut self, sql: &str) -> Result<Relation> {
        let outcome = self.execute(sql)?;
        outcome
            .relation
            .ok_or_else(|| SqlError::exec("statement did not produce rows"))
    }

    fn insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        values: &[Vec<crate::ast::Expr>],
    ) -> Result<ExecOutcome> {
        // Evaluate the literal expressions with a throwaway context.
        let empty_root = crate::plan::PlanRoot {
            ctes: Vec::new(),
            subplans: Vec::new(),
            body: crate::plan::PlanNode::Values {
                rows: Vec::new(),
                schema: crate::plan::Schema::default(),
            },
        };
        let mut evaluated: Vec<Vec<Value>> = Vec::with_capacity(values.len());
        {
            let ctx = ExecContext::new(&self.catalog, &self.profile, &empty_root);
            let binder_schema = crate::plan::Schema::default();
            for row in values {
                let mut out = Vec::with_capacity(row.len());
                for e in row {
                    // Bind against an empty schema: literals and expressions
                    // over literals only.
                    let mut b = BindShim {
                        catalog: &self.catalog,
                        profile: &self.profile,
                    };
                    let bexpr = b.bind_const(e, &binder_schema)?;
                    out.push(crate::exec::eval::eval(&bexpr, &[], &ctx)?);
                }
                evaluated.push(out);
            }
        }

        let table_ref = self
            .catalog
            .table_mut(table)
            .ok_or_else(|| SqlError::catalog(format!("unknown table '{table}'")))?;
        let width = table_ref.data.columns.len();
        let first_new_row = table_ref.data.rows.len();
        let saved_serials = table_ref.serial_next.clone();
        let mut count = 0usize;
        for row in evaluated {
            let full_row = match columns {
                None => {
                    if row.len() != width {
                        return Err(SqlError::exec(format!(
                            "INSERT arity {} vs table arity {width}",
                            row.len()
                        )));
                    }
                    row
                }
                Some(cols) => {
                    let mut full = vec![Value::Null; width];
                    for (c, v) in cols.iter().zip(row) {
                        let idx = table_ref.data.column_index(c).ok_or_else(|| {
                            SqlError::bind(format!("unknown column '{c}' in INSERT"))
                        })?;
                        full[idx] = v;
                    }
                    full
                }
            };
            table_ref.append(full_row)?;
            count += 1;
        }
        // Log the rows as stored (post serial-fill/coercion) so replay
        // reproduces the exact in-memory state, ctids included.
        if count > 0 && (self.backend.is_durable() || self.txn_capture.is_some()) {
            let rows = table_ref.data.rows[first_new_row..].to_vec();
            if let Err(e) = self.log_durable(&WalRecord::Insert {
                table: table.to_string(),
                rows,
            }) {
                self.rollback_append(table, first_new_row, saved_serials);
                return Err(e);
            }
            self.note_group_undo(GroupUndo::Append {
                table: table.to_string(),
                first_new_row,
                saved_serials,
            });
        }
        self.profile.charge_io(count);
        self.stats.pages_written += self.profile.pages_for(count);
        Ok(no_rows(count))
    }

    /// Undo an in-memory append whose WAL record failed to land: cut the
    /// rows back out and restore the serial counters, so the visible state
    /// matches what replay will reconstruct.
    fn rollback_append(
        &mut self,
        table: &str,
        first_new_row: usize,
        saved_serials: Vec<(usize, i64)>,
    ) {
        if let Some(t) = self.catalog.table_mut(table) {
            t.data.rows.truncate(first_new_row);
            t.serial_next = saved_serials;
        }
    }

    /// Bulk-load parsed CSV content into an existing table (the COPY path,
    /// also used directly by benchmarks to skip the filesystem).
    pub fn copy_rows(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        csv: etypes::CsvTable,
    ) -> Result<ExecOutcome> {
        let table_ref = self
            .catalog
            .table_mut(table)
            .ok_or_else(|| SqlError::catalog(format!("unknown table '{table}'")))?;
        let width = table_ref.data.columns.len();
        let target_indices: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    table_ref
                        .data
                        .column_index(c)
                        .ok_or_else(|| SqlError::bind(format!("unknown column '{c}' in COPY")))
                })
                .collect::<Result<Vec<_>>>()?,
            None => (0..width).collect(),
        };
        let first_new_row = table_ref.data.rows.len();
        let saved_serials = table_ref.serial_next.clone();
        let mut count = 0usize;
        for row in csv.rows {
            if row.len() != target_indices.len() {
                return Err(SqlError::exec(format!(
                    "COPY row arity {} vs column list arity {}",
                    row.len(),
                    target_indices.len()
                )));
            }
            let mut full = vec![Value::Null; width];
            for (&idx, v) in target_indices.iter().zip(row) {
                full[idx] = v;
            }
            table_ref.append(full)?;
            count += 1;
        }
        if count > 0 && (self.backend.is_durable() || self.txn_capture.is_some()) {
            let rows = table_ref.data.rows[first_new_row..].to_vec();
            if let Err(e) = self.log_durable(&WalRecord::Insert {
                table: table.to_string(),
                rows,
            }) {
                self.rollback_append(table, first_new_row, saved_serials);
                return Err(e);
            }
            self.note_group_undo(GroupUndo::Append {
                table: table.to_string(),
                first_new_row,
                saved_serials,
            });
        }
        self.profile.charge_io(count);
        self.stats.pages_written += self.profile.pages_for(count);
        Ok(no_rows(count))
    }

    /// Load CSV text through the COPY path (convenience for tests/pipelines).
    pub fn copy_from_str(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        csv_text: &str,
        opts: &CsvOptions,
    ) -> Result<ExecOutcome> {
        let csv = etypes::read_csv_str(csv_text, opts)?;
        self.copy_rows(table, columns, csv)
    }
}

/// Minimal binder for constant INSERT expressions (no FROM scope).
struct BindShim<'a> {
    catalog: &'a Catalog,
    profile: &'a EngineProfile,
}

impl<'a> BindShim<'a> {
    fn bind_const(
        &mut self,
        e: &crate::ast::Expr,
        schema: &crate::plan::Schema,
    ) -> Result<crate::plan::BExpr> {
        // Reuse the full binder by wrapping the expression in SELECT <e>.
        let query = crate::ast::Query {
            ctes: Vec::new(),
            body: crate::ast::SelectBody {
                distinct: false,
                projection: vec![crate::ast::SelectItem::Expr {
                    expr: e.clone(),
                    alias: None,
                }],
                from: None,
                selection: None,
                group_by: Vec::new(),
                having: None,
                order_by: Vec::new(),
                limit: None,
            },
        };
        let _ = schema;
        let (root, _) = bind_select(self.catalog, self.profile, &query)?;
        // Extract the single projection expression.
        match root.body {
            crate::plan::PlanNode::Project { exprs, .. } if root.subplans.is_empty() => Ok(exprs
                .into_iter()
                .next()
                .ok_or_else(|| SqlError::bind("empty INSERT expression"))?),
            _ => Err(SqlError::bind("INSERT values must be constant expressions")),
        }
    }
}

fn no_rows(n: usize) -> ExecOutcome {
    ExecOutcome {
        relation: None,
        rows_affected: n,
    }
}

/// True for statements that mutate base tables (what the WAL would log).
/// View DDL stays out: views are volatile, engine-local, and never shipped
/// to replicas, so a pinned read-only engine may still manage them.
fn statement_writes_tables(stmt: &Statement) -> bool {
    match stmt {
        Statement::CreateTable { .. } | Statement::Insert { .. } | Statement::Copy { .. } => true,
        Statement::Drop { is_view, .. } => !is_view,
        Statement::CreateView { .. } | Statement::Select(_) | Statement::Explain { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineProfile::in_memory())
    }

    fn pg() -> Engine {
        Engine::new(EngineProfile::disk_based_no_latency())
    }

    #[test]
    fn create_insert_select() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (a int, b text); INSERT INTO t VALUES (1, 'x'), (2, 'y');",
        )
        .unwrap();
        let r = e.query("SELECT b FROM t WHERE a > 1").unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("y")]]);
    }

    #[test]
    fn paper_listing_1_ratio_measurement() {
        // Verbatim structure of Listing 1 (bias ratio with RIGHT OUTER JOIN).
        let mut e = pg();
        e.execute_script(
            "CREATE TABLE data (a int, s int); INSERT INTO data (values (1,1), (1,2));",
        )
        .unwrap();
        let r = e
            .query(
                "WITH orig AS (SELECT ctid, a, s FROM data),
                 curr AS (SELECT ctid, s FROM orig WHERE s > 1),
                 orig_count AS (SELECT s, count(*) AS cnt FROM orig GROUP BY s),
                 curr_count AS (SELECT s, count(*) AS cnt FROM curr GROUP BY s),
                 orig_ratio AS (SELECT s, (cnt*1.0 / (select count(*) FROM orig)) AS ratio FROM orig_count),
                 curr_ratio AS (SELECT s, (cnt*1.0/(select sum(cnt) FROM curr_count)) AS ratio FROM curr_count)
                 SELECT o.s, o.ratio - COALESCE(c.ratio, 0) AS bias_change
                 FROM curr_ratio c RIGHT OUTER JOIN orig_ratio o ON o.s = c.s",
            )
            .unwrap();
        let mut rows = r.sorted_rows();
        rows.sort();
        // s=1: orig ratio 0.5, curr ratio 0 -> change 0.5
        // s=2: orig ratio 0.5, curr ratio 1.0 -> change -0.5
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Int(1), Value::Float(0.5)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Float(-0.5)]);
    }

    #[test]
    fn ctid_tracking_survives_projection() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE d (a int, s int); INSERT INTO d VALUES (1, 10), (2, 20), (3, 30);",
        )
        .unwrap();
        // Project s away, then restore it via ctid join (paper Listing 2).
        let r = e
            .query(
                "WITH orig AS (SELECT ctid AS id, a, s FROM d),
                 curr AS (SELECT id, a FROM orig WHERE a >= 2)
                 SELECT o.s FROM curr c JOIN orig o ON c.id = o.id",
            )
            .unwrap();
        assert_eq!(
            r.sorted_rows(),
            vec![vec![Value::Int(20)], vec![Value::Int(30)]]
        );
    }

    #[test]
    fn array_agg_and_unnest_round_trip() {
        // Listing 3's aggregated-ctid pattern.
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE d (s int, v int);
             INSERT INTO d VALUES (1, 10), (1, 20), (2, 30);",
        )
        .unwrap();
        let r = e
            .query(
                "WITH curr AS (SELECT array_agg(ctid) AS ids, s FROM d GROUP BY s)
                 SELECT s, count(*) AS cnt
                 FROM (SELECT unnest(ids) AS id, s FROM curr) c GROUP BY s",
            )
            .unwrap();
        assert_eq!(
            r.sorted_rows(),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)]
            ]
        );
    }

    #[test]
    fn views_inline_and_materialized() {
        let mut e = pg();
        e.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2), (3);
             CREATE VIEW v AS SELECT a * 2 AS d FROM t;
             CREATE MATERIALIZED VIEW mv AS SELECT a * 10 AS x FROM t;",
        )
        .unwrap();
        assert_eq!(
            e.query("SELECT sum(d) AS s FROM v").unwrap().rows[0][0],
            Value::Int(12)
        );
        assert_eq!(
            e.query("SELECT max(x) AS m FROM mv").unwrap().rows[0][0],
            Value::Int(30)
        );
        // Materialized views are frozen at creation time.
        e.execute("INSERT INTO t VALUES (100)").unwrap();
        assert_eq!(
            e.query("SELECT max(x) AS m FROM mv").unwrap().rows[0][0],
            Value::Int(30)
        );
        assert_eq!(
            e.query("SELECT sum(d) AS s FROM v").unwrap().rows[0][0],
            Value::Int(212)
        );
    }

    #[test]
    fn cte_materialization_depends_on_profile() {
        let sql = "WITH c AS (SELECT a FROM t) SELECT x.a FROM c x JOIN c y ON x.a = y.a";
        let setup = "CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2);";

        let mut postgres = pg();
        postgres.execute_script(setup).unwrap();
        postgres.query(sql).unwrap();
        // PostgreSQL profile: one CTE materialized despite two references.
        assert_eq!(postgres.stats().ctes_materialized, 1);

        let mut umbra = engine();
        umbra.execute_script(setup).unwrap();
        umbra.query(sql).unwrap();
        assert_eq!(umbra.stats().ctes_materialized, 0);
    }

    #[test]
    fn unreferenced_ctes_are_never_evaluated() {
        // The paper's CTE mode ships the whole translated prefix with every
        // query; PostgreSQL only evaluates the CTEs the query actually uses.
        let mut e = pg();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
            .unwrap();
        e.query(
            "WITH unused AS (SELECT a FROM t), used AS (SELECT a FROM t)
             SELECT a FROM used",
        )
        .unwrap();
        assert_eq!(e.stats().ctes_materialized, 1);
    }

    #[test]
    fn shared_scans_deduplicate_repeated_inline_references() {
        // In-memory profile: a CTE referenced twice becomes one shared scan
        // (Umbra's DAG plans), never a fenced materialization.
        let mut e = engine();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2);")
            .unwrap();
        let r = e
            .query("WITH c AS (SELECT a FROM t) SELECT x.a FROM c x JOIN c y ON x.a = y.a")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(e.stats().ctes_materialized, 0);
        assert_eq!(e.stats().shared_scans, 1);
    }

    #[test]
    fn shared_view_scans_deduplicate_too() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2), (3);
             CREATE VIEW v AS SELECT a * 2 AS d FROM t;",
        )
        .unwrap();
        let r = e
            .query("SELECT x.d FROM v x JOIN v y ON x.d = y.d ORDER BY x.d")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(e.stats().shared_scans, 1);
    }

    #[test]
    fn not_materialized_overrides_fence() {
        let mut e = pg();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
            .unwrap();
        e.query("WITH c AS NOT MATERIALIZED (SELECT a FROM t) SELECT a FROM c")
            .unwrap();
        assert_eq!(e.stats().ctes_materialized, 0);
    }

    #[test]
    fn copy_from_string_and_null_handling() {
        let mut e = engine();
        e.execute("CREATE TABLE p (\"smoker\" text, \"complications\" int, \"ssn\" text)")
            .unwrap();
        e.copy_from_str(
            "p",
            None,
            "smoker,complications,ssn\n?,3,s1\nyes,,s2\n",
            &CsvOptions::default().with_na("?"),
        )
        .unwrap();
        let r = e
            .query("SELECT count(*) AS n FROM p WHERE smoker IS NULL")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
        let r = e.query("SELECT count(complications) AS n FROM p").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
    }

    #[test]
    fn insert_with_column_list_fills_serial() {
        let mut e = engine();
        e.execute("CREATE TABLE t (index_ serial, v text)").unwrap();
        e.execute("INSERT INTO t (v) VALUES ('a'), ('b')").unwrap();
        let r = e.query("SELECT index_, v FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
        assert_eq!(r.rows[1][0], Value::Int(2));
    }

    #[test]
    fn null_safe_join_condition() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE a (k text, va int); INSERT INTO a VALUES (NULL, 1), ('x', 2);
             CREATE TABLE b (k text, vb int); INSERT INTO b VALUES (NULL, 10);",
        )
        .unwrap();
        // Plain equality: NULL does not join.
        let r = e
            .query("SELECT va, vb FROM a INNER JOIN b ON a.k = b.k")
            .unwrap();
        assert!(r.rows.is_empty());
        // Paper §5.1.2 pandas-compatible form.
        let r = e
            .query(
                "SELECT va, vb FROM a INNER JOIN b ON a.k = b.k OR (a.k IS NULL AND b.k IS NULL)",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1), Value::Int(10)]]);
    }

    #[test]
    fn imputer_most_frequent_subquery() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (smoker text);
             INSERT INTO t VALUES ('yes'), ('no'), ('yes'), (NULL);",
        )
        .unwrap();
        let r = e
            .query(
                "SELECT COALESCE(smoker, (SELECT smoker FROM t WHERE smoker IS NOT NULL
                  GROUP BY smoker ORDER BY count(*) DESC, smoker LIMIT 1)) AS smoker FROM t",
            )
            .unwrap();
        assert_eq!(r.rows[3][0], Value::text("yes"));
    }

    #[test]
    fn one_hot_shape_with_row_number_and_array_ops() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (c text); INSERT INTO t VALUES ('b'), ('a'), ('b');")
            .unwrap();
        let r = e
            .query(
                "WITH fit AS (
                   SELECT v, ROW_NUMBER() OVER (ORDER BY v) - 1 AS pos,
                          (SELECT count(DISTINCT c) FROM t) AS n
                   FROM (SELECT DISTINCT c AS v FROM t) d
                 )
                 SELECT t.c, array_fill(0, pos::int) || ARRAY[1] || array_fill(0, (n - pos - 1)::int) AS onehot
                 FROM t JOIN fit ON t.c = fit.v",
            )
            .unwrap();
        let find = |c: &str| r.rows.iter().find(|row| row[0] == Value::text(c)).unwrap()[1].clone();
        assert_eq!(find("a"), Value::Array(vec![Value::Int(1), Value::Int(0)]));
        assert_eq!(find("b"), Value::Array(vec![Value::Int(0), Value::Int(1)]));
    }

    #[test]
    fn standard_scaler_and_kbins_sql_shapes() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (x double precision); INSERT INTO t VALUES (1.0), (2.0), (3.0), (4.0);",
        )
        .unwrap();
        // Standard scaler (paper Listing 17): (x - avg) / stddev_pop.
        let r = e
            .query(
                "SELECT (x - (SELECT avg(x) FROM t)) / (SELECT stddev_pop(x) FROM t) AS z FROM t",
            )
            .unwrap();
        let z0 = r.rows[0][0].as_f64().unwrap();
        assert!((z0 + 1.3416407864998738).abs() < 1e-9);
        // KBins (Listing 18, 4 bins).
        let r = e
            .query(
                "SELECT LEAST(GREATEST(FLOOR((x - (SELECT min(x) FROM t)) /
                   ((SELECT (max(x) - min(x)) * 1.0 / 4 FROM t))), 0), 3) AS bin FROM t",
            )
            .unwrap();
        let bins: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
        assert_eq!(bins, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn binarize_case_statement() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (label int); INSERT INTO t VALUES (49), (50), (51);")
            .unwrap();
        let r = e
            .query("SELECT (CASE WHEN (label >= 50) THEN 1 ELSE 0 END) AS label FROM t")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(1)]
            ]
        );
    }

    #[test]
    fn regexp_replace_whole_word() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (label text); INSERT INTO t VALUES ('Medium'), ('High'), ('MediumRare');",
        )
        .unwrap();
        let r = e
            .query("SELECT REGEXP_REPLACE(\"label\", '^Medium$', 'Low') AS label FROM t")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::text("Low")],
                vec![Value::text("High")],
                vec![Value::text("MediumRare")]
            ]
        );
    }

    #[test]
    fn dropna_translation_shape() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (a int, b text);
             INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL);",
        )
        .unwrap();
        let r = e
            .query("SELECT * FROM t WHERE NOT (a IS NULL) AND NOT (b IS NULL)")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn select_star_excludes_ctid_but_ctid_selectable() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (7);")
            .unwrap();
        let star = e.query("SELECT * FROM t").unwrap();
        assert_eq!(star.columns, vec!["a"]);
        let with_ctid = e.query("SELECT *, ctid AS t_ctid FROM t").unwrap();
        assert_eq!(with_ctid.columns, vec!["a", "t_ctid"]);
        assert_eq!(with_ctid.rows[0][1], Value::Int(0));
    }

    #[test]
    fn group_by_with_having_and_aliases() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (g text, v int);
             INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 10);",
        )
        .unwrap();
        let r = e
            .query("SELECT g, sum(v) AS total FROM t GROUP BY g HAVING count(*) > 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::text("a"), Value::Int(3)]]);
    }

    #[test]
    fn median_aggregate() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (v int); INSERT INTO t VALUES (1), (2), (10);")
            .unwrap();
        assert_eq!(
            e.query("SELECT median(v) AS m FROM t").unwrap().rows[0][0],
            Value::Float(2.0)
        );
    }

    #[test]
    fn order_by_null_handling_and_limit() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (v int); INSERT INTO t VALUES (2), (NULL), (1);")
            .unwrap();
        let r = e.query("SELECT v FROM t ORDER BY v").unwrap();
        assert_eq!(
            r.rows,
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Null]]
        );
        let r = e.query("SELECT v FROM t ORDER BY v DESC LIMIT 1").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Null]]);
    }

    #[test]
    fn errors_are_reported() {
        let mut e = engine();
        assert!(e.query("SELECT * FROM missing").is_err());
        e.execute("CREATE TABLE t (a int)").unwrap();
        assert!(e.query("SELECT b FROM t").is_err());
        assert!(e.execute("CREATE TABLE t (a int)").is_err());
    }

    #[test]
    fn cross_join_comma_syntax() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE a (x int); INSERT INTO a VALUES (1), (2);
             CREATE TABLE b (y int); INSERT INTO b VALUES (10);",
        )
        .unwrap();
        let r = e.query("SELECT x, y FROM a, b").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn plan_cache_hits_on_repeated_query() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2);")
            .unwrap();
        let sql = "SELECT a FROM t WHERE a > 1";
        let first = e.query_cached(sql).unwrap();
        let second = e.query_cached(sql).unwrap();
        assert_eq!(first, second);
        let stats = e.plan_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn point_lookups_differing_only_in_literals_share_one_plan() {
        // The regression this guards: before literal normalization, every
        // distinct constant planned from scratch — 100 lookups, 100
        // misses, a cold cache forever. Normalized, the first lookup
        // plans `a = $1` and the other 99 bind it.
        let mut e = engine();
        e.execute("CREATE TABLE t (a int, b text)").unwrap();
        let values: Vec<String> = (0..100).map(|i| format!("({i}, 'v{i}')")).collect();
        e.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
            .unwrap();
        for i in 0..100 {
            let r = e.query(&format!("SELECT b FROM t WHERE a = {i}")).unwrap();
            assert_eq!(r.rows, vec![vec![Value::text(format!("v{i}"))]]);
        }
        let stats = e.plan_cache_stats();
        assert!(
            stats.hits >= 99,
            "point lookups did not share a parameterized plan: {stats:?}"
        );
        assert_eq!(stats.misses, 1, "{stats:?}");
    }

    #[test]
    fn cached_plan_sees_new_rows() {
        // Plans reference tables by name, so DML needs no invalidation.
        let mut e = engine();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
            .unwrap();
        let sql = "SELECT count(*) AS n FROM t";
        assert_eq!(e.query_cached(sql).unwrap().rows[0][0], Value::Int(1));
        e.execute("INSERT INTO t VALUES (2), (3)").unwrap();
        assert_eq!(e.query_cached(sql).unwrap().rows[0][0], Value::Int(3));
        assert_eq!(e.plan_cache_stats().hits, 1);
    }

    #[test]
    fn ddl_invalidates_plan_cache() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
            .unwrap();
        e.query_cached("SELECT a FROM t").unwrap();
        assert_eq!(e.plan_cache_len(), 1);
        e.execute("DROP TABLE t").unwrap();
        assert_eq!(e.plan_cache_len(), 0);
        // Re-planning after the drop reports the missing table.
        assert!(e.query_cached("SELECT a FROM t").is_err());
    }

    #[test]
    fn prepared_statements_round_trip() {
        let mut e = engine();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (5), (7);")
            .unwrap();
        e.prepare("q", "SELECT max(a) AS m FROM t").unwrap();
        assert_eq!(e.execute_prepared("q").unwrap().rows[0][0], Value::Int(7));
        assert_eq!(e.execute_prepared("q").unwrap().rows[0][0], Value::Int(7));
        assert!(e.plan_cache_stats().hits >= 1);
        e.deallocate("q").unwrap();
        assert!(e.execute_prepared("q").is_err());
        assert!(e.deallocate("q").is_err());
    }

    #[test]
    fn only_select_is_cacheable() {
        let mut e = engine();
        assert!(e.prepare("p", "CREATE TABLE t (a int)").is_err());
        assert!(e.query_cached("CREATE TABLE t (a int)").is_err());
    }

    #[test]
    fn targeted_invalidation_keeps_unrelated_plans() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1);
             CREATE TABLE u (b int); INSERT INTO u VALUES (2);",
        )
        .unwrap();
        e.query_cached("SELECT a FROM t").unwrap();
        e.query_cached("SELECT b FROM u").unwrap();
        assert_eq!(e.plan_cache_len(), 2);
        e.execute("DROP TABLE t").unwrap();
        // Only the plan reading t is evicted.
        assert_eq!(e.plan_cache_len(), 1);
        e.query_cached("SELECT b FROM u").unwrap();
        assert_eq!(e.plan_cache_stats().hits, 1);
        assert_eq!(
            e.plan_cache_table_invalidations(),
            vec![("t".to_string(), 1)]
        );
    }

    #[test]
    fn view_drop_invalidates_plans_reading_it() {
        // Inline views vanish from the bound plan; the AST walk must still
        // record the dependency so DROP VIEW evicts the plan.
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1);
             CREATE VIEW v AS SELECT a * 2 AS d FROM t;",
        )
        .unwrap();
        e.query_cached("SELECT d FROM v").unwrap();
        assert_eq!(e.plan_cache_len(), 1);
        e.execute("DROP VIEW v").unwrap();
        assert_eq!(e.plan_cache_len(), 0);
        assert!(e.query_cached("SELECT d FROM v").is_err());
    }

    #[test]
    fn table_under_inlined_view_invalidates_too() {
        // The plan walk catches the base table hidden under the view.
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1);
             CREATE VIEW v AS SELECT a FROM t;",
        )
        .unwrap();
        e.query_cached("SELECT a FROM v").unwrap();
        e.execute("DROP TABLE t").unwrap();
        assert_eq!(e.plan_cache_len(), 0);
    }

    #[test]
    fn subquery_dependencies_are_tracked() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1);
             CREATE TABLE s (b int); INSERT INTO s VALUES (5);",
        )
        .unwrap();
        e.query_cached("SELECT a FROM t WHERE a < (SELECT max(b) FROM s)")
            .unwrap();
        e.execute("DROP TABLE s").unwrap();
        assert_eq!(e.plan_cache_len(), 0, "scalar-subquery dep evicted");
    }

    fn durable_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sqlengine-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_engine_recovers_tables_and_serials() {
        let dir = durable_dir("roundtrip");
        {
            let mut e =
                Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
            assert!(e.is_durable());
            e.execute_script(
                "CREATE TABLE t (index_ serial, v text);
                 INSERT INTO t (v) VALUES ('a'), ('b');",
            )
            .unwrap();
        }
        let mut e =
            Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
        let report = e.recovery_report().unwrap().clone();
        assert_eq!(report.wal_records_applied, 2);
        let r = e.query("SELECT index_, v FROM t ORDER BY index_").unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::text("a")],
                vec![Value::Int(2), Value::text("b")]
            ]
        );
        // Serial counter resumes where it left off.
        e.execute("INSERT INTO t (v) VALUES ('c')").unwrap();
        let r = e.query("SELECT max(index_) AS m FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn durable_engine_checkpoint_and_wal_tail() {
        let dir = durable_dir("ckpt");
        {
            let mut e =
                Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
            e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2);")
                .unwrap();
            let stats = e.checkpoint().unwrap().expect("durable engine");
            assert_eq!(stats.tables, 1);
            assert_eq!(stats.rows, 2);
            e.execute("INSERT INTO t VALUES (3)").unwrap();
        }
        let mut e =
            Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
        let report = e.recovery_report().unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_rows, 2);
        assert_eq!(report.wal_records_applied, 1);
        let r = e.query("SELECT count(*) AS n FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert!(e.storage_stats().is_some());
    }

    #[test]
    fn durable_engine_drop_table_replays() {
        let dir = durable_dir("drop");
        {
            let mut e =
                Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
            e.execute_script(
                "CREATE TABLE keep (a int); INSERT INTO keep VALUES (1);
                 CREATE TABLE gone (b int); INSERT INTO gone VALUES (2);
                 DROP TABLE gone;",
            )
            .unwrap();
            // DROP TABLE IF EXISTS of a missing table must not log.
            e.execute("DROP TABLE IF EXISTS never_existed").unwrap();
        }
        let mut e =
            Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
        assert_eq!(e.catalog().table_names(), vec!["keep"]);
        assert!(e.query("SELECT b FROM gone").is_err());
        assert!(e.recovery_report().unwrap().notes.is_empty());
    }

    #[test]
    fn volatile_engine_has_no_storage() {
        let e = engine();
        assert!(!e.is_durable());
        assert!(e.recovery_report().is_none());
        assert!(e.storage_stats().is_none());
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut e = engine();
        e.execute_script(
            "CREATE TABLE a (k int); INSERT INTO a VALUES (1), (2);
             CREATE TABLE b (k int, v text); INSERT INTO b VALUES (1, 'x');",
        )
        .unwrap();
        let r = e
            .query("SELECT a.k, v FROM a LEFT JOIN b ON a.k = b.k ORDER BY a.k")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Int(2), Value::Null]
            ]
        );
    }

    // ---- tracing & EXPLAIN ANALYZE ----------------------------------------

    /// Orders/customers fixture for the join+filter+agg profile tests.
    fn analyze_fixture(mut e: Engine) -> Engine {
        e.execute_script(
            "CREATE TABLE orders (id int, cust int, amount int);
             INSERT INTO orders VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30), (4, 3, 5);
             CREATE TABLE custs (id int, region text);
             INSERT INTO custs VALUES (1, 'n'), (2, 's'), (3, 'n');",
        )
        .unwrap();
        e
    }

    const ANALYZE_SQL: &str = "WITH big AS (SELECT cust, amount FROM orders WHERE amount > 9)
         SELECT region, count(*) AS n
         FROM big INNER JOIN custs ON big.cust = custs.id
         GROUP BY region";

    /// Operator row counts must equal the cardinalities the same engine
    /// reports through plain queries, under both CTE personalities.
    fn assert_analyze_cardinalities(mut e: Engine) {
        let count = |e: &mut Engine, sql: &str| -> u64 {
            match &e.query(sql).unwrap().rows[0][0] {
                Value::Int(n) => *n as u64,
                other => panic!("expected int count, got {other:?}"),
            }
        };
        let scan_rows = count(&mut e, "SELECT count(*) FROM orders");
        let filter_rows = count(&mut e, "SELECT count(*) FROM orders WHERE amount > 9");
        let join_rows = count(
            &mut e,
            "SELECT count(*) FROM orders INNER JOIN custs ON orders.cust = custs.id
             WHERE amount > 9",
        );

        let (rel, profile) = e.query_profiled(ANALYZE_SQL).unwrap();
        assert_eq!(rel.rows.len(), 2, "two regions survive");
        assert_eq!(profile.result_rows, rel.rows.len() as u64);
        assert_eq!(profile.find("Scan Table orders").unwrap().rows, scan_rows);
        assert_eq!(profile.find("Filter").unwrap().rows, filter_rows);
        let join = profile.find("InnerJoin").unwrap();
        assert_eq!(join.rows, join_rows);
        let agg = profile.find("Aggregate").unwrap();
        assert_eq!(agg.rows, rel.rows.len() as u64);
        assert_eq!(agg.rows_in, join_rows, "aggregate consumes the join output");
        for op in &profile.ops {
            assert!(op.executed, "every operator ran: {}", op.label);
        }
    }

    #[test]
    fn explain_analyze_cardinalities_materialized_ctes() {
        let e = analyze_fixture(pg());
        assert_analyze_cardinalities(e);
        // The CTE block itself is visible with its materialized cardinality.
        let mut e = analyze_fixture(pg());
        let (_, profile) = e.query_profiled(ANALYZE_SQL).unwrap();
        let cte = profile.find("CTE 0 [big] (materialized)").unwrap();
        assert_eq!(cte.rows, 3);
        assert!(cte.executed);
    }

    #[test]
    fn explain_analyze_cardinalities_inlined_ctes() {
        let e = analyze_fixture(engine());
        assert_analyze_cardinalities(e);
        // Inlining leaves no CTE block in the profile.
        let mut e = analyze_fixture(engine());
        let (_, profile) = e.query_profiled(ANALYZE_SQL).unwrap();
        assert!(profile.find("CTE").is_none());
    }

    #[test]
    fn explain_analyze_statement_renders_annotated_plan() {
        let mut e = analyze_fixture(pg());
        let rel = e.query(&format!("EXPLAIN ANALYZE {ANALYZE_SQL}")).unwrap();
        assert_eq!(rel.columns, vec!["QUERY PLAN"]);
        let text: Vec<String> = rel
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Text(s) => s.clone(),
                other => panic!("plan line should be text, got {other:?}"),
            })
            .collect();
        let text = text.join("\n");
        assert!(
            text.contains("CTE 0 [big] (materialized) (rows=3"),
            "{text}"
        );
        assert!(
            text.contains("Aggregate groups=1 aggs=[count(*)] (rows=2"),
            "{text}"
        );
        assert!(text.contains("time="), "{text}");
        assert!(text.contains("Execution: rows=2"), "{text}");

        // Plain EXPLAIN through the statement path matches Engine::explain.
        let plain = e.query(&format!("EXPLAIN {ANALYZE_SQL}")).unwrap();
        let plain: Vec<String> = plain
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Text(s) => s.clone(),
                other => panic!("plan line should be text, got {other:?}"),
            })
            .collect();
        assert_eq!(plain.join("\n"), e.explain(ANALYZE_SQL).unwrap().trim_end());
    }

    #[test]
    fn phase_trace_accumulates_and_can_be_disabled() {
        let mut e = analyze_fixture(engine());
        assert!(e.trace().enabled());
        // The fixture script already recorded lex/parse and execute samples.
        assert!(e.trace().phase(Phase::Lex).count() >= 1);
        assert!(e.trace().phase(Phase::Parse).count() >= 1);
        let executes = e.trace().phase(Phase::Execute).count();
        e.query(ANALYZE_SQL).unwrap();
        assert_eq!(e.trace().phase(Phase::Execute).count(), executes + 1);
        assert!(e.trace().phase(Phase::Bind).count() >= 1);
        assert!(e.trace().phase(Phase::Optimize).count() >= 1);
        let stats = e.trace().render_stats();
        assert!(stats.contains("phase_execute_count"), "{stats}");

        e.set_tracing(false);
        e.reset_trace();
        e.query(ANALYZE_SQL).unwrap();
        assert_eq!(e.trace().phase(Phase::Execute).count(), 0);
        assert!(e.trace().render_stats().is_empty());
    }

    #[test]
    fn durable_engine_traces_wal_phases() {
        let dir = durable_dir("trace_wal");
        let mut e =
            Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Always).unwrap();
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2);")
            .unwrap();
        assert!(e.trace().phase(Phase::WalAppend).count() >= 2);
        assert!(e.trace().phase(Phase::Fsync).count() >= 2);
        let wal = e.storage_stats().unwrap().wal;
        assert!(wal.append_us >= wal.fsync_us);
    }
}
