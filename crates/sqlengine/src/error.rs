//! SQL engine error type.

use std::fmt;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Errors raised while parsing, binding or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// Lexer/parser failure.
    Parse {
        /// Byte offset-derived line (1-based) where the failure occurred.
        line: usize,
        /// Description.
        message: String,
    },
    /// Name-resolution or typing failure.
    Bind(String),
    /// Runtime execution failure.
    Exec(String),
    /// Catalog errors: unknown/duplicate tables and views.
    Catalog(String),
    /// Propagated value-layer error.
    Value(etypes::Error),
    /// Propagated I/O error (COPY).
    Io(std::io::Error),
    /// Durable-storage failure (WAL append, checkpoint, recovery).
    Storage(elephant_store::StoreError),
    /// The engine is degraded to read-only (a prior durability failure);
    /// carries the reason. Writes are refused until a checkpoint re-arms.
    ReadOnly(String),
    /// The statement exceeded its configured timeout and was cancelled
    /// cooperatively by the executor.
    Timeout {
        /// The configured per-statement budget in milliseconds.
        ms: u64,
    },
}

impl SqlError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn bind(message: impl Into<String>) -> SqlError {
        SqlError::Bind(message.into())
    }

    pub(crate) fn exec(message: impl Into<String>) -> SqlError {
        SqlError::Exec(message.into())
    }

    pub(crate) fn catalog(message: impl Into<String>) -> SqlError {
        SqlError::Catalog(message.into())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { line, message } => write!(f, "parse error (line {line}): {message}"),
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::Catalog(m) => write!(f, "catalog error: {m}"),
            SqlError::Value(e) => write!(f, "value error: {e}"),
            SqlError::Io(e) => write!(f, "io error: {e}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::ReadOnly(reason) => write!(f, "read_only: {reason}"),
            SqlError::Timeout { ms } => write!(f, "statement timeout after {ms} ms"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<etypes::Error> for SqlError {
    fn from(e: etypes::Error) -> Self {
        SqlError::Value(e)
    }
}

impl From<std::io::Error> for SqlError {
    fn from(e: std::io::Error) -> Self {
        SqlError::Io(e)
    }
}

impl From<elephant_store::StoreError> for SqlError {
    fn from(e: elephant_store::StoreError) -> Self {
        SqlError::Storage(e)
    }
}
