//! An LRU plan cache: parse + bind + optimize once, re-execute many times.
//!
//! The serving layer's `PREPARE`/`EXECUTE` verbs (and any embedded caller
//! using [`crate::Engine::query_cached`]) skip the whole query frontend on
//! repeated statements. Entries are keyed by the exact SQL text and hold the
//! fully bound and optimized [`PlanRoot`] plus its output schema; plans
//! reference base tables by name, so data changes (INSERT/COPY) never
//! invalidate them, while DDL (CREATE/DROP of tables or views) clears the
//! cache wholesale — the PostgreSQL approach of invalidating on catalog
//! changes, simplified to a full flush.

use crate::plan::{PlanRoot, Schema};
use std::collections::VecDeque;
use std::rc::Rc;

/// A cached, ready-to-execute query plan.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The bound + optimized plan (shared so execution can proceed while
    /// the cache keeps its copy).
    pub root: Rc<PlanRoot>,
    /// Output schema of the plan body.
    pub schema: Schema,
}

/// Hit/miss counters (monotonic; survive invalidation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Full flushes triggered by DDL.
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Least-recently-used plan cache keyed by SQL text.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// LRU order: least-recently used at the front.
    entries: VecDeque<(String, CachedPlan)>,
    stats: PlanCacheStats,
}

/// Default number of cached plans per engine.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Create a cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            stats: PlanCacheStats::default(),
        }
    }

    /// Look up `sql`, bumping the entry to most-recently-used and counting a
    /// hit; counts a miss when absent.
    pub fn get(&mut self, sql: &str) -> Option<CachedPlan> {
        match self.entries.iter().position(|(k, _)| k == sql) {
            Some(i) => {
                let entry = self.entries.remove(i).expect("position was valid");
                let plan = entry.1.clone();
                self.entries.push_back(entry);
                self.stats.hits += 1;
                Some(plan)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching LRU order or counters (used by PREPARE to test
    /// whether planning is needed).
    pub fn contains(&self, sql: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == sql)
    }

    /// Insert a freshly planned query, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, sql: impl Into<String>, plan: CachedPlan) {
        let sql = sql.into();
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == sql) {
            self.entries.remove(i);
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.stats.evictions += 1;
        }
        self.entries.push_back((sql, plan));
    }

    /// Drop every entry (DDL invalidation); counters survive.
    pub fn invalidate(&mut self) {
        if !self.entries.is_empty() {
            self.stats.invalidations += 1;
        }
        self.entries.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotonic hit/miss/eviction counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanNode;

    fn dummy_plan() -> CachedPlan {
        CachedPlan {
            root: Rc::new(PlanRoot {
                ctes: Vec::new(),
                subplans: Vec::new(),
                body: PlanNode::Values {
                    rows: Vec::new(),
                    schema: Schema::default(),
                },
            }),
            schema: Schema::default(),
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = PlanCache::new(4);
        assert!(c.get("SELECT 1").is_none());
        c.insert("SELECT 1", dummy_plan());
        assert!(c.get("SELECT 1").is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert("a", dummy_plan());
        c.insert("b", dummy_plan());
        assert!(c.get("a").is_some()); // refresh 'a'; 'b' is now LRU
        c.insert("c", dummy_plan()); // evicts 'b'
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
        assert!(c.contains("c"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_clears_but_keeps_counters() {
        let mut c = PlanCache::new(4);
        c.insert("a", dummy_plan());
        let _ = c.get("a");
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn reinsert_replaces_existing_entry() {
        let mut c = PlanCache::new(2);
        c.insert("a", dummy_plan());
        c.insert("a", dummy_plan());
        assert_eq!(c.len(), 1);
    }
}
