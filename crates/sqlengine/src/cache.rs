//! An LRU plan cache: parse + bind + optimize once, re-execute many times.
//!
//! The serving layer's `PREPARE`/`EXECUTE` verbs (and any embedded caller
//! using [`crate::Engine::query_cached`]) skip the whole query frontend on
//! repeated statements. Entries are keyed by the exact SQL text and hold the
//! fully bound and optimized [`PlanRoot`] plus its output schema; plans
//! reference base tables by name, so data changes (INSERT/COPY) never
//! invalidate them. DDL invalidates per dependency: every entry records
//! which catalog objects it reads ([`CachedPlan::tables`] — base tables,
//! views, and materialized views, collected from both the query text and
//! the bound plan so tables hidden under inlined views are included), and
//! `CREATE`/`DROP` of an object evicts only the entries that depend on it.
//! Per-table eviction counts are kept for observability
//! ([`PlanCache::table_invalidations`]).

use crate::ast;
use crate::plan::{PlanNode, PlanRoot, ScanSource, Schema};
use etypes::Value;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

/// A cached, ready-to-execute query plan.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The bound + optimized plan (shared so execution can proceed while
    /// the cache keeps its copy).
    pub root: Rc<PlanRoot>,
    /// Output schema of the plan body.
    pub schema: Schema,
    /// Names of catalog objects (tables, views) this plan reads; DDL on any
    /// of them invalidates the entry. Sorted and deduplicated.
    pub tables: Vec<String>,
    /// Highest `$n` placeholder in the plan (0 when the plan takes no
    /// parameters and can be executed directly from the shared `root`).
    pub params: usize,
}

impl CachedPlan {
    /// True when this plan reads the named catalog object.
    pub fn depends_on(&self, name: &str) -> bool {
        self.tables
            .binary_search_by(|t| t.as_str().cmp(name))
            .is_ok()
    }
}

/// Hit/miss counters (monotonic; survive invalidation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by DDL invalidation (full flushes count every entry
    /// they drop; targeted invalidation counts only the dependents).
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Least-recently-used plan cache keyed by SQL text.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// LRU order: least-recently used at the front.
    entries: VecDeque<(String, CachedPlan)>,
    stats: PlanCacheStats,
    /// Entries dropped per table name by targeted invalidation.
    table_invalidations: HashMap<String, u64>,
}

/// Default number of cached plans per engine.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Create a cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            stats: PlanCacheStats::default(),
            table_invalidations: HashMap::new(),
        }
    }

    /// Look up `sql`, bumping the entry to most-recently-used and counting a
    /// hit; counts a miss when absent.
    pub fn get(&mut self, sql: &str) -> Option<CachedPlan> {
        match self.entries.iter().position(|(k, _)| k == sql) {
            Some(i) => {
                let entry = self.entries.remove(i).expect("position was valid");
                let plan = entry.1.clone();
                self.entries.push_back(entry);
                self.stats.hits += 1;
                Some(plan)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching LRU order or counters (used by PREPARE to test
    /// whether planning is needed).
    pub fn contains(&self, sql: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == sql)
    }

    /// Insert a freshly planned query, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, sql: impl Into<String>, plan: CachedPlan) {
        let sql = sql.into();
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == sql) {
            self.entries.remove(i);
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.stats.evictions += 1;
        }
        self.entries.push_back((sql, plan));
    }

    /// Drop every entry (wholesale invalidation); counters survive.
    pub fn invalidate(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Drop only the entries that depend on the named catalog object
    /// (targeted DDL invalidation). Returns how many entries were dropped
    /// and records the count against the table's invalidation counter.
    pub fn invalidate_table(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, plan)| !plan.depends_on(name));
        let dropped = before - self.entries.len();
        if dropped > 0 {
            self.stats.invalidations += dropped as u64;
            *self
                .table_invalidations
                .entry(name.to_string())
                .or_default() += dropped as u64;
        }
        dropped
    }

    /// Per-table targeted-invalidation counts, sorted by table name.
    pub fn table_invalidations(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .table_invalidations
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort();
        out
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotonic hit/miss/eviction counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

/// Rewrite the top-level WHERE clause of `query` so that literal constants
/// compared against non-literal expressions become `$n` placeholders,
/// returning the rewritten query and the extracted values in placeholder
/// order. Point lookups that differ only in their constants then normalize
/// to the same shape and share one cached parameterized plan.
///
/// Deliberately conservative: only binary comparisons (`=`, `<>`, `<`, `>`,
/// `<=`, `>=`) directly under the WHERE's AND/OR chain are rewritten, and
/// only when exactly one side is a literal (literal-vs-literal comparisons
/// stay foldable by the optimizer). Returns `None` — meaning "execute
/// unnormalized" — when there is no WHERE clause, nothing was extracted, or
/// the WHERE already contains explicit `$n` parameters or a scalar subquery
/// (whose inner placeholders would collide with our numbering).
pub fn normalize_select_literals(query: &ast::Query) -> Option<(ast::Query, Vec<Value>)> {
    let selection = query.body.selection.as_ref()?;
    if expr_blocks_normalization(selection) {
        return None;
    }
    let mut normalized = query.clone();
    let mut values = Vec::new();
    if let Some(sel) = normalized.body.selection.as_mut() {
        extract_comparison_literals(sel, &mut values);
    }
    if values.is_empty() {
        return None;
    }
    Some((normalized, values))
}

/// True when the WHERE expression contains an explicit parameter or a
/// scalar subquery anywhere — both make literal extraction unsafe.
fn expr_blocks_normalization(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::Parameter(_) | ast::Expr::ScalarSubquery(_) => true,
        ast::Expr::Column { .. } | ast::Expr::Literal(_) => false,
        ast::Expr::Binary { left, right, .. } => {
            expr_blocks_normalization(left) || expr_blocks_normalization(right)
        }
        ast::Expr::Unary { operand, .. } => expr_blocks_normalization(operand),
        ast::Expr::Function { args, .. } => args.iter().any(expr_blocks_normalization),
        ast::Expr::Case { whens, else_expr } => {
            whens
                .iter()
                .any(|(w, t)| expr_blocks_normalization(w) || expr_blocks_normalization(t))
                || else_expr.as_deref().is_some_and(expr_blocks_normalization)
        }
        ast::Expr::Cast { expr, .. } => expr_blocks_normalization(expr),
        ast::Expr::InList { expr, list, .. } => {
            expr_blocks_normalization(expr) || list.iter().any(expr_blocks_normalization)
        }
        ast::Expr::IsNull { expr, .. } => expr_blocks_normalization(expr),
        ast::Expr::ArrayLiteral(items) => items.iter().any(expr_blocks_normalization),
    }
}

fn extract_comparison_literals(e: &mut ast::Expr, out: &mut Vec<Value>) {
    use ast::BinaryOp::*;
    if let ast::Expr::Binary { op, left, right } = e {
        match op {
            Eq | NotEq | Lt | Gt | Le | Ge => {
                let l_lit = matches!(**left, ast::Expr::Literal(_));
                let r_lit = matches!(**right, ast::Expr::Literal(_));
                if l_lit != r_lit {
                    let target = if l_lit { left } else { right };
                    if let ast::Expr::Literal(v) = &**target {
                        out.push(v.clone());
                        **target = ast::Expr::Parameter(out.len());
                    }
                }
            }
            And | Or => {
                extract_comparison_literals(left, out);
                extract_comparison_literals(right, out);
            }
            _ => {}
        }
    }
}

/// Collect the catalog objects a query reads: the union of every named FROM
/// reference in the AST (which still sees view names before the binder
/// inlines them) and every base-table / materialized-view scan in the bound
/// plan (which sees the tables hidden *under* inlined views). CTE names can
/// leak in from the AST side; a spurious dependency only risks one extra
/// eviction, never a stale plan. Returns a sorted, deduplicated list.
pub fn collect_table_deps(query: &ast::Query, root: &PlanRoot) -> Vec<String> {
    let mut deps = BTreeSet::new();
    ast_query_deps(query, &mut deps);
    plan_deps(&root.body, &mut deps);
    for cte in &root.ctes {
        plan_deps(&cte.plan, &mut deps);
    }
    for sub in &root.subplans {
        plan_deps(sub, &mut deps);
    }
    deps.into_iter().collect()
}

pub(crate) fn ast_query_deps(query: &ast::Query, deps: &mut BTreeSet<String>) {
    for cte in &query.ctes {
        ast_query_deps(&cte.query, deps);
    }
    let body = &query.body;
    for item in &body.projection {
        if let ast::SelectItem::Expr { expr, .. } = item {
            ast_expr_deps(expr, deps);
        }
    }
    if let Some(from) = &body.from {
        ast_table_ref_deps(from, deps);
    }
    for e in body
        .selection
        .iter()
        .chain(body.group_by.iter())
        .chain(body.having.iter())
    {
        ast_expr_deps(e, deps);
    }
    for item in &body.order_by {
        ast_expr_deps(&item.expr, deps);
    }
}

fn ast_table_ref_deps(table_ref: &ast::TableRef, deps: &mut BTreeSet<String>) {
    match table_ref {
        ast::TableRef::Named { name, .. } => {
            deps.insert(name.clone());
        }
        ast::TableRef::Subquery { query, .. } => ast_query_deps(query, deps),
        ast::TableRef::Join {
            left, right, on, ..
        } => {
            ast_table_ref_deps(left, deps);
            ast_table_ref_deps(right, deps);
            if let Some(on) = on {
                ast_expr_deps(on, deps);
            }
        }
    }
}

pub(crate) fn ast_expr_deps(expr: &ast::Expr, deps: &mut BTreeSet<String>) {
    match expr {
        ast::Expr::Column { .. } | ast::Expr::Literal(_) | ast::Expr::Parameter(_) => {}
        ast::Expr::Binary { left, right, .. } => {
            ast_expr_deps(left, deps);
            ast_expr_deps(right, deps);
        }
        ast::Expr::Unary { operand, .. } => ast_expr_deps(operand, deps),
        ast::Expr::Function { args, .. } => {
            for a in args {
                ast_expr_deps(a, deps);
            }
        }
        ast::Expr::Case { whens, else_expr } => {
            for (w, t) in whens {
                ast_expr_deps(w, deps);
                ast_expr_deps(t, deps);
            }
            if let Some(e) = else_expr {
                ast_expr_deps(e, deps);
            }
        }
        ast::Expr::Cast { expr, .. } => ast_expr_deps(expr, deps),
        ast::Expr::InList { expr, list, .. } => {
            ast_expr_deps(expr, deps);
            for e in list {
                ast_expr_deps(e, deps);
            }
        }
        ast::Expr::IsNull { expr, .. } => ast_expr_deps(expr, deps),
        ast::Expr::ScalarSubquery(q) => ast_query_deps(q, deps),
        ast::Expr::ArrayLiteral(items) => {
            for e in items {
                ast_expr_deps(e, deps);
            }
        }
    }
}

fn plan_deps(node: &PlanNode, deps: &mut BTreeSet<String>) {
    match node {
        PlanNode::Scan { source, .. } => match source {
            ScanSource::Table(name) | ScanSource::MaterializedView(name) => {
                deps.insert(name.clone());
            }
            ScanSource::Cte(_) => {}
        },
        PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Aggregate { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Distinct { input }
        | PlanNode::WindowRowNumber { input, .. }
        | PlanNode::Unnest { input, .. } => plan_deps(input, deps),
        PlanNode::Join { left, right, .. } => {
            plan_deps(left, deps);
            plan_deps(right, deps);
        }
        PlanNode::Values { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanNode;

    fn dummy_plan() -> CachedPlan {
        plan_reading(&[])
    }

    fn plan_reading(tables: &[&str]) -> CachedPlan {
        CachedPlan {
            root: Rc::new(PlanRoot {
                ctes: Vec::new(),
                subplans: Vec::new(),
                body: PlanNode::Values {
                    rows: Vec::new(),
                    schema: Schema::default(),
                },
            }),
            schema: Schema::default(),
            tables: tables.iter().map(|s| s.to_string()).collect(),
            params: 0,
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = PlanCache::new(4);
        assert!(c.get("SELECT 1").is_none());
        c.insert("SELECT 1", dummy_plan());
        assert!(c.get("SELECT 1").is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert("a", dummy_plan());
        c.insert("b", dummy_plan());
        assert!(c.get("a").is_some()); // refresh 'a'; 'b' is now LRU
        c.insert("c", dummy_plan()); // evicts 'b'
        assert!(c.contains("a"));
        assert!(!c.contains("b"));
        assert!(c.contains("c"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_clears_but_keeps_counters() {
        let mut c = PlanCache::new(4);
        c.insert("a", dummy_plan());
        let _ = c.get("a");
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn reinsert_replaces_existing_entry() {
        let mut c = PlanCache::new(2);
        c.insert("a", dummy_plan());
        c.insert("a", dummy_plan());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn targeted_invalidation_drops_only_dependents() {
        let mut c = PlanCache::new(8);
        c.insert("q1", plan_reading(&["orders", "users"]));
        c.insert("q2", plan_reading(&["users"]));
        c.insert("q3", plan_reading(&["products"]));
        assert_eq!(c.invalidate_table("users"), 2);
        assert_eq!(c.len(), 1);
        assert!(c.contains("q3"));
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.table_invalidations(), vec![("users".to_string(), 2)]);
        // A table nothing depends on is a free no-op.
        assert_eq!(c.invalidate_table("missing"), 0);
        assert_eq!(c.stats().invalidations, 2);
        assert!(c.table_invalidations().iter().all(|(t, _)| t != "missing"));
    }

    #[test]
    fn depends_on_uses_sorted_lookup() {
        let p = plan_reading(&["a", "m", "z"]);
        assert!(p.depends_on("a"));
        assert!(p.depends_on("m"));
        assert!(p.depends_on("z"));
        assert!(!p.depends_on("q"));
    }
}
