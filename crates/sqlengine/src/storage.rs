//! In-memory relations and base tables.

use crate::error::{Result, SqlError};
use etypes::{DataType, Value};

/// A materialized relation: schema plus row-major tuples. This is both the
/// engine's result type and the storage format of base tables and
/// materialized views.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Column names in order.
    pub columns: Vec<String>,
    /// Column types in order.
    pub types: Vec<DataType>,
    /// Row-major tuples.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Construct, checking arity.
    pub fn new(columns: Vec<String>, types: Vec<DataType>, rows: Vec<Vec<Value>>) -> Result<Self> {
        if columns.len() != types.len() {
            return Err(SqlError::exec("schema arity mismatch"));
        }
        for row in &rows {
            if row.len() != columns.len() {
                return Err(SqlError::exec(format!(
                    "row arity {} does not match schema arity {}",
                    row.len(),
                    columns.len()
                )));
            }
        }
        Ok(Relation {
            columns,
            types,
            rows,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The single value of a 1x1 relation (scalar subquery result).
    pub fn scalar(&self) -> Result<Value> {
        match (self.rows.len(), self.columns.len()) {
            (0, _) => Ok(Value::Null),
            (1, 1) => Ok(self.rows[0][0].clone()),
            (r, c) => Err(SqlError::exec(format!(
                "scalar subquery returned {r}x{c} result"
            ))),
        }
    }

    /// Rows sorted by all columns — canonical form for order-insensitive
    /// comparisons in tests.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }

    /// Pretty-print as an aligned text table (debugging, examples).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// A base table: a named relation whose row positions also serve as `ctid`
/// tuple identifiers (paper §3.1). The engine never garbage-collects or
/// reorders rows, so — unlike PostgreSQL's physical ctid — these identifiers
/// are stable for the lifetime of the table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Data.
    pub data: Relation,
    /// Next value per serial column (by column index).
    pub serial_next: Vec<(usize, i64)>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn empty(name: impl Into<String>, columns: Vec<String>, types: Vec<DataType>) -> Table {
        let serial_next = types
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == DataType::Serial)
            .map(|(i, _)| (i, 1i64))
            .collect();
        Table {
            name: name.into(),
            data: Relation {
                columns,
                types,
                rows: Vec::new(),
            },
            serial_next,
        }
    }

    /// Append a row, filling serial columns whose value is NULL.
    pub fn append(&mut self, mut row: Vec<Value>) -> Result<()> {
        if row.len() != self.data.columns.len() {
            return Err(SqlError::exec(format!(
                "insert arity {} does not match table {} arity {}",
                row.len(),
                self.name,
                self.data.columns.len()
            )));
        }
        for (idx, next) in &mut self.serial_next {
            if row[*idx].is_null() {
                row[*idx] = Value::Int(*next);
                *next += 1;
            }
        }
        // Coerce cell types to declared column types where cheap.
        for (cell, ty) in row.iter_mut().zip(&self.data.types) {
            if !cell.is_null() {
                if let Ok(coerced) = cell.cast(ty) {
                    *cell = coerced;
                }
            }
        }
        self.data.rows.push(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_arity_checked() {
        assert!(Relation::new(
            vec!["a".into()],
            vec![DataType::Int],
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .is_err());
    }

    #[test]
    fn scalar_of_empty_is_null() {
        let r = Relation::new(vec!["a".into()], vec![DataType::Int], vec![]).unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Null);
    }

    #[test]
    fn serial_fills_on_append() {
        let mut t = Table::empty(
            "t",
            vec!["index_".into(), "v".into()],
            vec![DataType::Serial, DataType::Text],
        );
        t.append(vec![Value::Null, "a".into()]).unwrap();
        t.append(vec![Value::Null, "b".into()]).unwrap();
        assert_eq!(t.data.rows[1][0], Value::Int(2));
    }

    #[test]
    fn append_coerces_declared_types() {
        let mut t = Table::empty("t", vec!["v".into()], vec![DataType::Float]);
        t.append(vec![Value::Int(3)]).unwrap();
        assert_eq!(t.data.rows[0][0], Value::Float(3.0));
    }

    #[test]
    fn table_string_renders() {
        let r = Relation::new(
            vec!["a".into(), "bb".into()],
            vec![DataType::Int, DataType::Text],
            vec![vec![Value::Int(1), "x".into()]],
        )
        .unwrap();
        let s = r.to_table_string();
        assert!(s.contains("bb"));
        assert!(s.contains('x'));
    }
}
