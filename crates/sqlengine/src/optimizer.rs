//! Logical plan optimization.
//!
//! Three rewrites carry the performance story of the paper's VIEW mode: when
//! views/CTEs are inlined (Umbra, or PostgreSQL views), the optimizer sees
//! one holistic plan and can
//!
//! 1. **push filters** through projections and into join inputs,
//! 2. **collapse** stacked projections introduced by view splicing,
//! 3. **prune columns**, dropping the wide tuple-identifier payload the
//!    transpiler threads through every CTE wherever inspection does not
//!    consume it.
//!
//! Materialized CTEs (the PostgreSQL 12 fence) are *not* optimized across —
//! each [`crate::plan::BoundCte`] is optimized in isolation, exactly the
//! optimization barrier the paper describes (§3.4.1).

use crate::ast::BinaryOp;
use crate::plan::{BExpr, JoinKind, PlanNode, PlanRoot, Schema};
use std::collections::BTreeSet;

/// Optimize a bound query in place.
pub fn optimize(root: &mut PlanRoot) {
    for cte in &mut root.ctes {
        cte.plan = optimize_node(std::mem::replace(&mut cte.plan, empty()), true);
    }
    for sub in &mut root.subplans {
        *sub = optimize_node(std::mem::replace(sub, empty()), true);
    }
    root.body = optimize_node(std::mem::replace(&mut root.body, empty()), true);
}

fn empty() -> PlanNode {
    PlanNode::Values {
        rows: Vec::new(),
        schema: Schema::default(),
    }
}

fn optimize_node(plan: PlanNode, prune: bool) -> PlanNode {
    let plan = push_filters(plan);
    let plan = collapse_projects(plan);
    let plan = fold_plan(plan);
    if prune {
        let width = plan.schema().len();
        let required: BTreeSet<usize> = (0..width).collect();
        let (plan, _) = prune_columns(plan, &required);
        plan
    } else {
        plan
    }
}

// ---- filter pushdown -----------------------------------------------------

fn push_filters(plan: PlanNode) -> PlanNode {
    match plan {
        PlanNode::Filter { input, predicate } => {
            let input = push_filters(*input);
            push_one_filter(input, predicate)
        }
        other => map_children(other, push_filters),
    }
}

fn push_one_filter(input: PlanNode, predicate: BExpr) -> PlanNode {
    match input {
        // Merge adjacent filters.
        PlanNode::Filter {
            input,
            predicate: inner,
        } => push_one_filter(
            *input,
            BExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(inner),
                right: Box::new(predicate),
            },
        ),
        // Swap with Project by inlining the projection expressions.
        PlanNode::Project {
            input,
            exprs,
            schema,
        } => {
            let substituted = substitute(&predicate, &exprs);
            let pushed = push_one_filter(*input, substituted);
            PlanNode::Project {
                input: Box::new(pushed),
                exprs,
                schema,
            }
        }
        // Split conjuncts into join sides (inner/cross only).
        PlanNode::Join {
            left,
            right,
            kind,
            equi,
            residual,
            schema,
        } if matches!(kind, JoinKind::Inner | JoinKind::Cross) => {
            let nleft = left.schema().len();
            let mut to_left: Vec<BExpr> = Vec::new();
            let mut to_right: Vec<BExpr> = Vec::new();
            let mut keep: Vec<BExpr> = Vec::new();
            for c in conjuncts(predicate) {
                let mut cols = Vec::new();
                c.columns_used(&mut cols);
                if has_subplan(&c) {
                    keep.push(c);
                } else if cols.iter().all(|i| *i < nleft) && !cols.is_empty() {
                    to_left.push(c);
                } else if cols.iter().all(|i| *i >= nleft) && !cols.is_empty() {
                    let mut c = c;
                    shift_cols(&mut c, nleft);
                    to_right.push(c);
                } else {
                    keep.push(c);
                }
            }
            let left = apply_conjuncts(push_filters(*left), to_left);
            let right = apply_conjuncts(push_filters(*right), to_right);
            let join = PlanNode::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                equi,
                residual,
                schema,
            };
            apply_conjuncts(join, keep)
        }
        other => PlanNode::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

fn apply_conjuncts(plan: PlanNode, cs: Vec<BExpr>) -> PlanNode {
    match cs.into_iter().reduce(|a, b| BExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(a),
        right: Box::new(b),
    }) {
        Some(p) => PlanNode::Filter {
            input: Box::new(plan),
            predicate: p,
        },
        None => plan,
    }
}

fn conjuncts(e: BExpr) -> Vec<BExpr> {
    match e {
        BExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut out = conjuncts(*left);
            out.extend(conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

fn has_subplan(e: &BExpr) -> bool {
    match e {
        BExpr::Subplan(_) => true,
        BExpr::Col(_) | BExpr::Lit(_) | BExpr::Param(_) => false,
        BExpr::Binary { left, right, .. } => has_subplan(left) || has_subplan(right),
        BExpr::Unary { operand, .. } => has_subplan(operand),
        BExpr::Func { args, .. } => args.iter().any(has_subplan),
        BExpr::Case { whens, else_expr } => {
            whens.iter().any(|(c, v)| has_subplan(c) || has_subplan(v))
                || else_expr.as_ref().is_some_and(|e| has_subplan(e))
        }
        BExpr::Cast { expr, .. } => has_subplan(expr),
        BExpr::InList { expr, list, .. } => has_subplan(expr) || list.iter().any(has_subplan),
        BExpr::IsNull { expr, .. } => has_subplan(expr),
    }
}

fn shift_cols(e: &mut BExpr, by: usize) {
    let width = 1 << 20;
    let map: Vec<usize> = (0..width).map(|i: usize| i.saturating_sub(by)).collect();
    e.remap_columns(&map);
}

/// Replace `Col(i)` with `exprs[i]`.
fn substitute(e: &BExpr, exprs: &[BExpr]) -> BExpr {
    match e {
        BExpr::Col(i) => exprs[*i].clone(),
        BExpr::Lit(v) => BExpr::Lit(v.clone()),
        BExpr::Param(n) => BExpr::Param(*n),
        BExpr::Binary { op, left, right } => BExpr::Binary {
            op: *op,
            left: Box::new(substitute(left, exprs)),
            right: Box::new(substitute(right, exprs)),
        },
        BExpr::Unary { op, operand } => BExpr::Unary {
            op: *op,
            operand: Box::new(substitute(operand, exprs)),
        },
        BExpr::Func { func, args } => BExpr::Func {
            func: *func,
            args: args.iter().map(|a| substitute(a, exprs)).collect(),
        },
        BExpr::Case { whens, else_expr } => BExpr::Case {
            whens: whens
                .iter()
                .map(|(c, v)| (substitute(c, exprs), substitute(v, exprs)))
                .collect(),
            else_expr: else_expr.as_ref().map(|b| Box::new(substitute(b, exprs))),
        },
        BExpr::Cast { expr, ty } => BExpr::Cast {
            expr: Box::new(substitute(expr, exprs)),
            ty: ty.clone(),
        },
        BExpr::InList {
            expr,
            list,
            negated,
        } => BExpr::InList {
            expr: Box::new(substitute(expr, exprs)),
            list: list.iter().map(|i| substitute(i, exprs)).collect(),
            negated: *negated,
        },
        BExpr::IsNull { expr, negated } => BExpr::IsNull {
            expr: Box::new(substitute(expr, exprs)),
            negated: *negated,
        },
        BExpr::Subplan(i) => BExpr::Subplan(*i),
    }
}

// ---- project collapsing ----------------------------------------------------

fn collapse_projects(plan: PlanNode) -> PlanNode {
    let plan = map_children(plan, collapse_projects);
    if let PlanNode::Project {
        input,
        exprs,
        schema,
    } = plan
    {
        if let PlanNode::Project {
            input: inner_input,
            exprs: inner_exprs,
            ..
        } = *input
        {
            let composed: Vec<BExpr> = exprs.iter().map(|e| substitute(e, &inner_exprs)).collect();
            return collapse_projects(PlanNode::Project {
                input: inner_input,
                exprs: composed,
                schema,
            });
        }
        return PlanNode::Project {
            input,
            exprs,
            schema,
        };
    } else if let PlanNode::Project { .. } = &plan {
        unreachable!()
    }
    plan
}

// ---- constant folding --------------------------------------------------------

fn fold_plan(plan: PlanNode) -> PlanNode {
    let plan = map_children(plan, fold_plan);
    map_exprs(plan, &|e| fold_expr(e))
}

fn fold_expr(e: BExpr) -> BExpr {
    use crate::exec::eval::fold_binary_const;
    match e {
        BExpr::Binary { op, left, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            if let (BExpr::Lit(l), BExpr::Lit(r)) = (&left, &right) {
                if let Some(v) = fold_binary_const(op, l, r) {
                    return BExpr::Lit(v);
                }
            }
            BExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        BExpr::Unary { op, operand } => {
            let operand = fold_expr(*operand);
            BExpr::Unary {
                op,
                operand: Box::new(operand),
            }
        }
        BExpr::Func { func, args } => {
            let args: Vec<BExpr> = args.into_iter().map(fold_expr).collect();
            if args.iter().all(|a| matches!(a, BExpr::Lit(_))) {
                let vals: Vec<etypes::Value> = args
                    .iter()
                    .map(|a| match a {
                        BExpr::Lit(v) => v.clone(),
                        _ => unreachable!(),
                    })
                    .collect();
                if let Ok(v) = func.eval(&vals) {
                    return BExpr::Lit(v);
                }
            }
            BExpr::Func { func, args }
        }
        BExpr::Cast { expr, ty } => {
            let expr = fold_expr(*expr);
            if let BExpr::Lit(v) = &expr {
                if let Ok(c) = v.cast(&ty) {
                    return BExpr::Lit(c);
                }
            }
            BExpr::Cast {
                expr: Box::new(expr),
                ty,
            }
        }
        BExpr::Case { whens, else_expr } => BExpr::Case {
            whens: whens
                .into_iter()
                .map(|(c, v)| (fold_expr(c), fold_expr(v)))
                .collect(),
            else_expr: else_expr.map(|b| Box::new(fold_expr(*b))),
        },
        BExpr::InList {
            expr,
            list,
            negated,
        } => BExpr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        BExpr::IsNull { expr, negated } => BExpr::IsNull {
            expr: Box::new(fold_expr(*expr)),
            negated,
        },
        other => other,
    }
}

// ---- column pruning ------------------------------------------------------------

/// Prune unneeded columns. `required` holds output positions the parent
/// consumes. Returns the rewritten node and a map old-position → new-position
/// (`None` if dropped).
fn prune_columns(plan: PlanNode, required: &BTreeSet<usize>) -> (PlanNode, Vec<Option<usize>>) {
    match plan {
        PlanNode::Scan {
            source,
            projection,
            schema,
        } => {
            let kept: Vec<usize> = required.iter().copied().collect();
            let new_projection: Vec<usize> = kept.iter().map(|&i| projection[i]).collect();
            let new_schema = Schema {
                cols: kept.iter().map(|&i| schema.cols[i].clone()).collect(),
            };
            let map = make_map(schema.cols.len(), &kept);
            (
                PlanNode::Scan {
                    source,
                    projection: new_projection,
                    schema: new_schema,
                },
                map,
            )
        }
        PlanNode::Values { rows, schema } => {
            let kept: Vec<usize> = required.iter().copied().collect();
            let new_rows: Vec<Vec<etypes::Value>> = rows
                .iter()
                .map(|r| kept.iter().map(|&i| r[i].clone()).collect())
                .collect();
            let new_schema = Schema {
                cols: kept.iter().map(|&i| schema.cols[i].clone()).collect(),
            };
            let map = make_map(schema.cols.len(), &kept);
            (
                PlanNode::Values {
                    rows: new_rows,
                    schema: new_schema,
                },
                map,
            )
        }
        PlanNode::Project {
            input,
            exprs,
            schema,
        } => {
            let kept: Vec<usize> = required.iter().copied().collect();
            let mut child_needed = BTreeSet::new();
            for &i in &kept {
                let mut cols = Vec::new();
                exprs[i].columns_used(&mut cols);
                child_needed.extend(cols);
            }
            let (new_input, cmap) = prune_columns(*input, &child_needed);
            let remap = full_map(&cmap);
            let new_exprs: Vec<BExpr> = kept
                .iter()
                .map(|&i| {
                    let mut e = exprs[i].clone();
                    e.remap_columns(&remap);
                    e
                })
                .collect();
            let new_schema = Schema {
                cols: kept.iter().map(|&i| schema.cols[i].clone()).collect(),
            };
            let map = make_map(schema.cols.len(), &kept);
            (
                PlanNode::Project {
                    input: Box::new(new_input),
                    exprs: new_exprs,
                    schema: new_schema,
                },
                map,
            )
        }
        PlanNode::Filter { input, predicate } => {
            let mut needed = required.clone();
            let mut cols = Vec::new();
            predicate.columns_used(&mut cols);
            needed.extend(cols);
            let (new_input, cmap) = prune_columns(*input, &needed);
            let remap = full_map(&cmap);
            let mut predicate = predicate;
            predicate.remap_columns(&remap);
            (
                PlanNode::Filter {
                    input: Box::new(new_input),
                    predicate,
                },
                cmap,
            )
        }
        PlanNode::Limit { input, n } => {
            let (new_input, cmap) = prune_columns(*input, required);
            (
                PlanNode::Limit {
                    input: Box::new(new_input),
                    n,
                },
                cmap,
            )
        }
        PlanNode::Sort { input, keys } => {
            let mut needed = required.clone();
            for (k, _) in &keys {
                let mut cols = Vec::new();
                k.columns_used(&mut cols);
                needed.extend(cols);
            }
            let (new_input, cmap) = prune_columns(*input, &needed);
            let remap = full_map(&cmap);
            let keys = keys
                .into_iter()
                .map(|(mut k, d)| {
                    k.remap_columns(&remap);
                    (k, d)
                })
                .collect();
            (
                PlanNode::Sort {
                    input: Box::new(new_input),
                    keys,
                },
                cmap,
            )
        }
        PlanNode::Distinct { input } => {
            // DISTINCT's semantics depend on every column: require all.
            let width = input.schema().len();
            let all: BTreeSet<usize> = (0..width).collect();
            let (new_input, cmap) = prune_columns(*input, &all);
            (
                PlanNode::Distinct {
                    input: Box::new(new_input),
                },
                cmap,
            )
        }
        PlanNode::Unnest {
            input,
            column,
            schema: _,
        } => {
            let mut needed = required.clone();
            needed.insert(column);
            let (new_input, cmap) = prune_columns(*input, &needed);
            let new_column = cmap[column].expect("unnest column kept");
            let schema = new_input.schema().clone();
            (
                PlanNode::Unnest {
                    input: Box::new(new_input),
                    column: new_column,
                    schema,
                },
                cmap,
            )
        }
        PlanNode::WindowRowNumber {
            input,
            keys,
            schema,
        } => {
            let win_col = schema.cols.len() - 1;
            let needs_window = required.contains(&win_col);
            let mut needed: BTreeSet<usize> =
                required.iter().copied().filter(|i| *i != win_col).collect();
            if needs_window {
                for (k, _) in &keys {
                    let mut cols = Vec::new();
                    k.columns_used(&mut cols);
                    needed.extend(cols);
                }
            }
            let (new_input, cmap) = prune_columns(*input, &needed);
            if !needs_window {
                let mut map = cmap;
                map.push(None); // the window column itself
                return (new_input, map);
            }
            let remap = full_map(&cmap);
            let keys: Vec<(BExpr, bool)> = keys
                .into_iter()
                .map(|(mut k, d)| {
                    k.remap_columns(&remap);
                    (k, d)
                })
                .collect();
            let mut new_schema = new_input.schema().clone();
            new_schema.cols.push(schema.cols[win_col].clone());
            let new_win_col = new_schema.cols.len() - 1;
            let mut map = cmap;
            map.push(Some(new_win_col));
            (
                PlanNode::WindowRowNumber {
                    input: Box::new(new_input),
                    keys,
                    schema: new_schema,
                },
                map,
            )
        }
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            let n_groups = group_exprs.len();
            let kept_aggs: Vec<usize> = (0..aggs.len())
                .filter(|i| required.contains(&(n_groups + i)))
                .collect();
            let mut child_needed = BTreeSet::new();
            for g in &group_exprs {
                let mut cols = Vec::new();
                g.columns_used(&mut cols);
                child_needed.extend(cols);
            }
            for &i in &kept_aggs {
                if let Some(arg) = &aggs[i].arg {
                    let mut cols = Vec::new();
                    arg.columns_used(&mut cols);
                    child_needed.extend(cols);
                }
            }
            let (new_input, cmap) = prune_columns(*input, &child_needed);
            let remap = full_map(&cmap);
            let group_exprs: Vec<BExpr> = group_exprs
                .into_iter()
                .map(|mut g| {
                    g.remap_columns(&remap);
                    g
                })
                .collect();
            let new_aggs: Vec<crate::plan::AggCall> = kept_aggs
                .iter()
                .map(|&i| {
                    let mut call = aggs[i].clone();
                    if let Some(arg) = &mut call.arg {
                        arg.remap_columns(&remap);
                    }
                    call
                })
                .collect();
            let mut new_cols: Vec<_> = schema.cols[..n_groups].to_vec();
            for &i in &kept_aggs {
                new_cols.push(schema.cols[n_groups + i].clone());
            }
            let mut map: Vec<Option<usize>> = (0..n_groups).map(Some).collect();
            for i in 0..aggs.len() {
                map.push(
                    kept_aggs
                        .iter()
                        .position(|&k| k == i)
                        .map(|pos| n_groups + pos),
                );
            }
            (
                PlanNode::Aggregate {
                    input: Box::new(new_input),
                    group_exprs,
                    aggs: new_aggs,
                    schema: Schema { cols: new_cols },
                },
                map,
            )
        }
        PlanNode::Join {
            left,
            right,
            kind,
            equi,
            residual,
            schema,
        } => {
            let nleft = left.schema().len();
            let mut left_needed = BTreeSet::new();
            let mut right_needed = BTreeSet::new();
            for &i in required {
                if i < nleft {
                    left_needed.insert(i);
                } else {
                    right_needed.insert(i - nleft);
                }
            }
            for k in &equi {
                let mut cols = Vec::new();
                k.left.columns_used(&mut cols);
                left_needed.extend(cols);
                let mut cols = Vec::new();
                k.right.columns_used(&mut cols);
                right_needed.extend(cols);
            }
            if let Some(r) = &residual {
                let mut cols = Vec::new();
                r.columns_used(&mut cols);
                for c in cols {
                    if c < nleft {
                        left_needed.insert(c);
                    } else {
                        right_needed.insert(c - nleft);
                    }
                }
            }
            let (new_left, lmap) = prune_columns(*left, &left_needed);
            let (new_right, rmap) = prune_columns(*right, &right_needed);
            let new_nleft = new_left.schema().len();
            let lremap = full_map(&lmap);
            let rremap = full_map(&rmap);
            let equi: Vec<crate::plan::EquiKey> = equi
                .into_iter()
                .map(|mut k| {
                    k.left.remap_columns(&lremap);
                    k.right.remap_columns(&rremap);
                    k
                })
                .collect();
            // Combined remap for the residual.
            let mut combined: Vec<usize> = vec![0; schema.cols.len()];
            let mut map: Vec<Option<usize>> = vec![None; schema.cols.len()];
            for (i, slot) in map.iter_mut().enumerate() {
                let new = if i < nleft {
                    lmap[i]
                } else {
                    rmap[i - nleft].map(|p| p + new_nleft)
                };
                *slot = new;
                combined[i] = new.unwrap_or(0);
            }
            let residual = residual.map(|mut r| {
                r.remap_columns(&combined);
                r
            });
            let mut new_cols = Vec::new();
            for (i, c) in schema.cols.iter().enumerate() {
                if map[i].is_some() {
                    new_cols.push(c.clone());
                }
            }
            // Order check: left kept columns precede right kept columns and
            // stay ascending, matching the map construction.
            (
                PlanNode::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    equi,
                    residual,
                    schema: Schema { cols: new_cols },
                },
                map,
            )
        }
    }
}

fn make_map(width: usize, kept: &[usize]) -> Vec<Option<usize>> {
    let mut map = vec![None; width];
    for (new, &old) in kept.iter().enumerate() {
        map[old] = Some(new);
    }
    map
}

/// A dense remap vector usable with `BExpr::remap_columns` (dropped columns
/// map to 0 and must not be referenced).
fn full_map(map: &[Option<usize>]) -> Vec<usize> {
    map.iter().map(|m| m.unwrap_or(0)).collect()
}

fn map_children(plan: PlanNode, f: impl Fn(PlanNode) -> PlanNode + Copy) -> PlanNode {
    match plan {
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        PlanNode::Project {
            input,
            exprs,
            schema,
        } => PlanNode::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        PlanNode::Join {
            left,
            right,
            kind,
            equi,
            residual,
            schema,
        } => PlanNode::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            equi,
            residual,
            schema,
        },
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => PlanNode::Aggregate {
            input: Box::new(f(*input)),
            group_exprs,
            aggs,
            schema,
        },
        PlanNode::Sort { input, keys } => PlanNode::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        PlanNode::Limit { input, n } => PlanNode::Limit {
            input: Box::new(f(*input)),
            n,
        },
        PlanNode::Distinct { input } => PlanNode::Distinct {
            input: Box::new(f(*input)),
        },
        PlanNode::WindowRowNumber {
            input,
            keys,
            schema,
        } => PlanNode::WindowRowNumber {
            input: Box::new(f(*input)),
            keys,
            schema,
        },
        PlanNode::Unnest {
            input,
            column,
            schema,
        } => PlanNode::Unnest {
            input: Box::new(f(*input)),
            column,
            schema,
        },
        leaf @ (PlanNode::Scan { .. } | PlanNode::Values { .. }) => leaf,
    }
}

fn map_exprs(plan: PlanNode, f: &impl Fn(BExpr) -> BExpr) -> PlanNode {
    match plan {
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input,
            predicate: f(predicate),
        },
        PlanNode::Project {
            input,
            exprs,
            schema,
        } => PlanNode::Project {
            input,
            exprs: exprs.into_iter().map(f).collect(),
            schema,
        },
        PlanNode::Join {
            left,
            right,
            kind,
            equi,
            residual,
            schema,
        } => PlanNode::Join {
            left,
            right,
            kind,
            equi: equi
                .into_iter()
                .map(|mut k| {
                    k.left = f(k.left);
                    k.right = f(k.right);
                    k
                })
                .collect(),
            residual: residual.map(f),
            schema,
        },
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => PlanNode::Aggregate {
            input,
            group_exprs: group_exprs.into_iter().map(f).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(f);
                    a
                })
                .collect(),
            schema,
        },
        PlanNode::Sort { input, keys } => PlanNode::Sort {
            input,
            keys: keys.into_iter().map(|(k, d)| (f(k), d)).collect(),
        },
        PlanNode::WindowRowNumber {
            input,
            keys,
            schema,
        } => PlanNode::WindowRowNumber {
            input,
            keys: keys.into_iter().map(|(k, d)| (f(k), d)).collect(),
            schema,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ColumnMeta, ScanSource};
    use etypes::{DataType, Value};

    fn scan3() -> PlanNode {
        PlanNode::Scan {
            source: ScanSource::Table("t".into()),
            projection: vec![0, 1, 2],
            schema: Schema {
                cols: (0..3)
                    .map(|i| ColumnMeta {
                        qualifier: None,
                        name: format!("c{i}"),
                        ty: DataType::Int,
                        hidden: false,
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn collapse_stacked_projects() {
        let inner = PlanNode::Project {
            input: Box::new(scan3()),
            exprs: vec![BExpr::Col(2), BExpr::Col(0)],
            schema: Schema {
                cols: vec![
                    ColumnMeta {
                        qualifier: None,
                        name: "x".into(),
                        ty: DataType::Int,
                        hidden: false,
                    },
                    ColumnMeta {
                        qualifier: None,
                        name: "y".into(),
                        ty: DataType::Int,
                        hidden: false,
                    },
                ],
            },
        };
        let outer = PlanNode::Project {
            input: Box::new(inner),
            exprs: vec![BExpr::Col(1)],
            schema: Schema {
                cols: vec![ColumnMeta {
                    qualifier: None,
                    name: "y".into(),
                    ty: DataType::Int,
                    hidden: false,
                }],
            },
        };
        let collapsed = collapse_projects(outer);
        let PlanNode::Project { input, exprs, .. } = collapsed else {
            panic!()
        };
        assert!(matches!(*input, PlanNode::Scan { .. }));
        assert_eq!(exprs, vec![BExpr::Col(0)]);
    }

    #[test]
    fn prune_drops_unused_scan_columns() {
        let project = PlanNode::Project {
            input: Box::new(scan3()),
            exprs: vec![BExpr::Col(2)],
            schema: Schema {
                cols: vec![ColumnMeta {
                    qualifier: None,
                    name: "c2".into(),
                    ty: DataType::Int,
                    hidden: false,
                }],
            },
        };
        let required: BTreeSet<usize> = [0].into_iter().collect();
        let (pruned, _) = prune_columns(project, &required);
        let PlanNode::Project { input, exprs, .. } = pruned else {
            panic!()
        };
        assert_eq!(exprs, vec![BExpr::Col(0)]);
        let PlanNode::Scan { projection, .. } = *input else {
            panic!()
        };
        assert_eq!(projection, vec![2]);
    }

    #[test]
    fn filter_pushes_through_project() {
        let project = PlanNode::Project {
            input: Box::new(scan3()),
            exprs: vec![BExpr::Col(1)],
            schema: Schema {
                cols: vec![ColumnMeta {
                    qualifier: None,
                    name: "c1".into(),
                    ty: DataType::Int,
                    hidden: false,
                }],
            },
        };
        let filtered = PlanNode::Filter {
            input: Box::new(project),
            predicate: BExpr::Binary {
                op: BinaryOp::Gt,
                left: Box::new(BExpr::Col(0)),
                right: Box::new(BExpr::Lit(Value::Int(5))),
            },
        };
        let pushed = push_filters(filtered);
        let PlanNode::Project { input, .. } = pushed else {
            panic!("expected project on top, got {pushed:?}")
        };
        assert!(matches!(*input, PlanNode::Filter { .. }));
    }

    #[test]
    fn constant_folding() {
        let e = BExpr::Binary {
            op: BinaryOp::Mul,
            left: Box::new(BExpr::Lit(Value::Float(1.2))),
            right: Box::new(BExpr::Lit(Value::Int(10))),
        };
        assert_eq!(fold_expr(e), BExpr::Lit(Value::Float(12.0)));
    }
}
