//! Bound logical plans.
//!
//! The binder turns an AST [`crate::ast::Query`] into a [`PlanRoot`]: a tree
//! of [`PlanNode`]s whose expressions ([`BExpr`]) reference input columns by
//! position, plus side tables of uncorrelated scalar subqueries and
//! materialized CTE definitions.

use crate::ast::{BinaryOp, UnaryOp};
use crate::functions::ScalarFunc;
use etypes::{DataType, Value};

/// Metadata of one output column of a plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Table alias/qualifier this column is reachable under, if any.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Static type (best-effort; `Text` when unknown).
    pub ty: DataType,
    /// Hidden columns (the virtual `ctid`) are excluded from `*` expansion.
    pub hidden: bool,
}

/// An ordered set of output columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// Columns in order.
    pub cols: Vec<ColumnMeta>,
}

impl Schema {
    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when column-less.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Find candidate positions for a (possibly qualified) column name.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == name
                    && match qualifier {
                        Some(q) => c.qualifier.as_deref() == Some(q),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The visible (non-hidden) column positions.
    pub fn visible(&self) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.hidden)
            .map(|(i, _)| i)
            .collect()
    }

    /// Plain (unqualified) output names, for result relations.
    pub fn names(&self) -> Vec<String> {
        self.cols.iter().map(|c| c.name.clone()).collect()
    }

    /// Output types.
    pub fn types(&self) -> Vec<DataType> {
        self.cols.iter().map(|c| c.ty.clone()).collect()
    }
}

/// A bound scalar expression. Column references are positions into the
/// node's input row.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Input column by position.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Positional parameter `$n` (1-based). Substituted for a [`BExpr::Lit`]
    /// by [`PlanRoot::bind_params`] before execution — the executors never
    /// see this variant at runtime.
    Param(usize),
    /// Binary operator with SQL three-valued semantics.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<BExpr>,
        /// Right operand.
        right: Box<BExpr>,
    },
    /// Unary operator.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<BExpr>,
    },
    /// Scalar function call.
    Func {
        /// Resolved function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<BExpr>,
    },
    /// `CASE WHEN ... END`.
    Case {
        /// WHEN/THEN arms.
        whens: Vec<(BExpr, BExpr)>,
        /// ELSE arm.
        else_expr: Option<Box<BExpr>>,
    },
    /// Cast.
    Cast {
        /// Operand.
        expr: Box<BExpr>,
        /// Target type.
        ty: DataType,
    },
    /// `expr [NOT] IN (...)`.
    InList {
        /// Tested expression.
        expr: Box<BExpr>,
        /// Candidates.
        list: Vec<BExpr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BExpr>,
        /// Negated form.
        negated: bool,
    },
    /// Uncorrelated scalar subquery, by index into [`PlanRoot::subplans`];
    /// evaluated at most once per query execution.
    Subplan(usize),
}

impl BExpr {
    /// Collect the set of input columns this expression reads.
    pub fn columns_used(&self, out: &mut Vec<usize>) {
        match self {
            BExpr::Col(i) => out.push(*i),
            BExpr::Lit(_) | BExpr::Param(_) | BExpr::Subplan(_) => {}
            BExpr::Binary { left, right, .. } => {
                left.columns_used(out);
                right.columns_used(out);
            }
            BExpr::Unary { operand, .. } => operand.columns_used(out),
            BExpr::Func { args, .. } => {
                for a in args {
                    a.columns_used(out);
                }
            }
            BExpr::Case { whens, else_expr } => {
                for (c, v) in whens {
                    c.columns_used(out);
                    v.columns_used(out);
                }
                if let Some(e) = else_expr {
                    e.columns_used(out);
                }
            }
            BExpr::Cast { expr, .. } => expr.columns_used(out),
            BExpr::InList { expr, list, .. } => {
                expr.columns_used(out);
                for e in list {
                    e.columns_used(out);
                }
            }
            BExpr::IsNull { expr, .. } => expr.columns_used(out),
        }
    }

    /// Rewrite column positions through a mapping (`new = map[old]`).
    pub fn remap_columns(&mut self, map: &[usize]) {
        match self {
            BExpr::Col(i) => *i = map[*i],
            BExpr::Lit(_) | BExpr::Param(_) | BExpr::Subplan(_) => {}
            BExpr::Binary { left, right, .. } => {
                left.remap_columns(map);
                right.remap_columns(map);
            }
            BExpr::Unary { operand, .. } => operand.remap_columns(map),
            BExpr::Func { args, .. } => {
                for a in args {
                    a.remap_columns(map);
                }
            }
            BExpr::Case { whens, else_expr } => {
                for (c, v) in whens {
                    c.remap_columns(map);
                    v.remap_columns(map);
                }
                if let Some(e) = else_expr {
                    e.remap_columns(map);
                }
            }
            BExpr::Cast { expr, .. } => expr.remap_columns(map),
            BExpr::InList { expr, list, .. } => {
                expr.remap_columns(map);
                for e in list {
                    e.remap_columns(map);
                }
            }
            BExpr::IsNull { expr, .. } => expr.remap_columns(map),
        }
    }

    /// Visit every sub-expression (including `self`), depth-first.
    pub fn for_each_mut(&mut self, f: &mut dyn FnMut(&mut BExpr)) {
        f(self);
        match self {
            BExpr::Col(_) | BExpr::Lit(_) | BExpr::Param(_) | BExpr::Subplan(_) => {}
            BExpr::Binary { left, right, .. } => {
                left.for_each_mut(f);
                right.for_each_mut(f);
            }
            BExpr::Unary { operand, .. } => operand.for_each_mut(f),
            BExpr::Func { args, .. } => {
                for a in args {
                    a.for_each_mut(f);
                }
            }
            BExpr::Case { whens, else_expr } => {
                for (c, v) in whens {
                    c.for_each_mut(f);
                    v.for_each_mut(f);
                }
                if let Some(e) = else_expr {
                    e.for_each_mut(f);
                }
            }
            BExpr::Cast { expr, .. } => expr.for_each_mut(f),
            BExpr::InList { expr, list, .. } => {
                expr.for_each_mut(f);
                for e in list {
                    e.for_each_mut(f);
                }
            }
            BExpr::IsNull { expr, .. } => expr.for_each_mut(f),
        }
    }
}

/// Aggregate functions supported by [`PlanNode::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `count(*)`.
    CountStar,
    /// `count(expr)` — non-null count; `count(DISTINCT expr)` when flagged.
    Count {
        /// Distinct counting.
        distinct: bool,
    },
    /// `sum`.
    Sum,
    /// `avg`.
    Avg,
    /// `min`.
    Min,
    /// `max`.
    Max,
    /// Population standard deviation (`stddev_pop`).
    StddevPop,
    /// Median (`percentile_cont(0.5)` equivalent; used by SimpleImputer).
    Median,
    /// `array_agg(expr)` — the paper's aggregated tuple identifiers (§3.1).
    ArrayAgg,
}

/// One aggregate call inside an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Function.
    pub func: AggFunc,
    /// Argument (None only for `count(*)`).
    pub arg: Option<BExpr>,
    /// Output type (best-effort).
    pub ty: DataType,
}

/// Join kinds at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join.
    Full,
    /// Cross product.
    Cross,
}

/// One equi-join key pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiKey {
    /// Expression over the left input.
    pub left: BExpr,
    /// Expression over the right input (positions are right-local).
    pub right: BExpr,
    /// True when `NULL = NULL` should match (the paper's pandas-compatible
    /// join predicate, §5.1.2).
    pub null_safe: bool,
}

/// Where a scan reads from.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanSource {
    /// Base table in the catalog (pays simulated I/O in the disk profile).
    Table(String),
    /// Materialized view in the catalog (also pays I/O).
    MaterializedView(String),
    /// A CTE materialized at execution time, by index into
    /// [`PlanRoot::ctes`].
    Cte(usize),
}

/// A logical/physical plan node (the engine executes this tree directly).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan of a stored relation. `projection` holds source column indices
    /// (ctid is virtual position `usize::MAX`).
    Scan {
        /// Data source.
        source: ScanSource,
        /// Source column positions to produce; `CTID_SENTINEL` produces the
        /// row's tuple identifier.
        projection: Vec<usize>,
        /// Output schema.
        schema: Schema,
    },
    /// Filter rows by a predicate (keeps rows evaluating to TRUE).
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Predicate.
        predicate: BExpr,
    },
    /// Compute a projection.
    Project {
        /// Input.
        input: Box<PlanNode>,
        /// Output expressions.
        exprs: Vec<BExpr>,
        /// Output schema.
        schema: Schema,
    },
    /// Join two inputs.
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Kind.
        kind: JoinKind,
        /// Hash-joinable key pairs.
        equi: Vec<EquiKey>,
        /// Residual predicate over the concatenated row (inner joins only).
        residual: Option<BExpr>,
        /// Output schema (left columns then right columns).
        schema: Schema,
    },
    /// Grouped aggregation. Output row = group keys then aggregate results.
    Aggregate {
        /// Input.
        input: Box<PlanNode>,
        /// Group-by expressions (empty = single global group).
        group_exprs: Vec<BExpr>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Output schema.
        schema: Schema,
    },
    /// Sort (materializing).
    Sort {
        /// Input.
        input: Box<PlanNode>,
        /// Keys: expression + descending flag.
        keys: Vec<(BExpr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input.
        input: Box<PlanNode>,
        /// Max rows.
        n: u64,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input.
        input: Box<PlanNode>,
    },
    /// Append a `row_number() over (order by keys)` column (1-based).
    WindowRowNumber {
        /// Input.
        input: Box<PlanNode>,
        /// Window ordering.
        keys: Vec<(BExpr, bool)>,
        /// Output schema (input + the number column).
        schema: Schema,
    },
    /// Expand one array column into one row per element (`unnest`).
    Unnest {
        /// Input.
        input: Box<PlanNode>,
        /// Position of the array column to expand in place.
        column: usize,
        /// Output schema.
        schema: Schema,
    },
    /// Literal rows (`SELECT` without `FROM` produces one empty row).
    Values {
        /// Rows.
        rows: Vec<Vec<Value>>,
        /// Output schema.
        schema: Schema,
    },
}

/// Sentinel projection index meaning "produce the ctid".
pub const CTID_SENTINEL: usize = usize::MAX;

impl PlanNode {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            PlanNode::Scan { schema, .. }
            | PlanNode::Project { schema, .. }
            | PlanNode::Join { schema, .. }
            | PlanNode::Aggregate { schema, .. }
            | PlanNode::WindowRowNumber { schema, .. }
            | PlanNode::Unnest { schema, .. }
            | PlanNode::Values { schema, .. } => schema,
            PlanNode::Filter { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. }
            | PlanNode::Distinct { input } => input.schema(),
        }
    }
}

impl PlanNode {
    /// Visit every expression in this subtree (own exprs, then inputs).
    pub fn for_each_expr_mut(&mut self, f: &mut dyn FnMut(&mut BExpr)) {
        match self {
            PlanNode::Scan { .. } | PlanNode::Values { .. } => {}
            PlanNode::Filter { input, predicate } => {
                predicate.for_each_mut(f);
                input.for_each_expr_mut(f);
            }
            PlanNode::Project { input, exprs, .. } => {
                for e in exprs {
                    e.for_each_mut(f);
                }
                input.for_each_expr_mut(f);
            }
            PlanNode::Join {
                left,
                right,
                equi,
                residual,
                ..
            } => {
                for k in equi {
                    k.left.for_each_mut(f);
                    k.right.for_each_mut(f);
                }
                if let Some(r) = residual {
                    r.for_each_mut(f);
                }
                left.for_each_expr_mut(f);
                right.for_each_expr_mut(f);
            }
            PlanNode::Aggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                for e in group_exprs {
                    e.for_each_mut(f);
                }
                for a in aggs {
                    if let Some(arg) = &mut a.arg {
                        arg.for_each_mut(f);
                    }
                }
                input.for_each_expr_mut(f);
            }
            PlanNode::Sort { input, keys } | PlanNode::WindowRowNumber { input, keys, .. } => {
                for (e, _) in keys {
                    e.for_each_mut(f);
                }
                input.for_each_expr_mut(f);
            }
            PlanNode::Limit { input, .. }
            | PlanNode::Distinct { input }
            | PlanNode::Unnest { input, .. } => input.for_each_expr_mut(f),
        }
    }
}

/// One materialized CTE: its bound plan plus its public schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCte {
    /// CTE name (for stats/debugging).
    pub name: String,
    /// Plan producing its rows.
    pub plan: PlanNode,
    /// True when this is a shared-scan intermediate created by
    /// common-subexpression elimination rather than a fenced CTE.
    pub shared: bool,
}

/// A fully bound query.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRoot {
    /// CTEs that must be materialized before `body` runs, in dependency
    /// order. (Inlined CTEs do not appear here — they were spliced.)
    pub ctes: Vec<BoundCte>,
    /// Uncorrelated scalar subqueries, evaluated lazily at most once.
    pub subplans: Vec<PlanNode>,
    /// The main plan.
    pub body: PlanNode,
}

impl PlanRoot {
    /// Visit every expression in the whole plan (CTEs, subplans, body).
    pub fn for_each_expr_mut(&mut self, f: &mut dyn FnMut(&mut BExpr)) {
        for cte in &mut self.ctes {
            cte.plan.for_each_expr_mut(f);
        }
        for sp in &mut self.subplans {
            sp.for_each_expr_mut(f);
        }
        self.body.for_each_expr_mut(f);
    }

    /// Highest `$n` referenced anywhere in the plan (0 when parameter-free).
    pub fn max_param(&self) -> usize {
        // The walker is mutable-only; a clone at plan time is cheap and keeps
        // one traversal implementation.
        let mut probe = self.clone();
        let mut max = 0usize;
        probe.for_each_expr_mut(&mut |e| {
            if let BExpr::Param(n) = e {
                max = max.max(*n);
            }
        });
        max
    }

    /// A copy of this plan with every `Param(n)` replaced by the literal
    /// `params[n-1]`. Callers validate the parameter count first; an
    /// out-of-range reference degrades to NULL rather than panicking.
    pub fn bind_params(&self, params: &[Value]) -> PlanRoot {
        let mut bound = self.clone();
        bound.for_each_expr_mut(&mut |e| {
            if let BExpr::Param(n) = e {
                let v = params.get(*n - 1).cloned().unwrap_or(Value::Null);
                *e = BExpr::Lit(v);
            }
        });
        bound
    }
}
