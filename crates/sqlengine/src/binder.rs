//! Name resolution and plan construction.
//!
//! The binder turns an AST query into a [`PlanRoot`]. Two behaviours depend
//! on the [`EngineProfile`]:
//!
//! * **CTE fence** — with `materialize_ctes` (PostgreSQL 12), every CTE
//!   becomes a [`BoundCte`] materialized once per query execution; without it
//!   (Umbra) or with `NOT MATERIALIZED`, the CTE's AST is *re-bound and
//!   spliced inline at every reference*, so the optimizer sees through it.
//! * **views** — plain views are always inlined (holistic optimization, the
//!   behaviour the paper exploits in §6.6); materialized views scan their
//!   stored data.

use crate::ast::{self, Expr, Query, SelectBody, SelectItem, Statement, TableRef};
use crate::catalog::Catalog;
use crate::error::{Result, SqlError};
use crate::functions::ScalarFunc;
use crate::plan::{
    AggCall, AggFunc, BExpr, BoundCte, ColumnMeta, EquiKey, JoinKind, PlanNode, PlanRoot,
    ScanSource, Schema, CTID_SENTINEL,
};
use crate::profile::EngineProfile;
use etypes::{DataType, Value};
use std::collections::HashMap;

/// Bind a SELECT statement into an executable plan.
pub fn bind_select(
    catalog: &Catalog,
    profile: &EngineProfile,
    query: &Query,
) -> Result<(PlanRoot, Schema)> {
    let mut b = Binder {
        catalog,
        profile,
        ctes: Vec::new(),
        subplans: Vec::new(),
        scopes: Vec::new(),
        view_depth: 0,
        views_seen: std::collections::HashSet::new(),
        view_memo: HashMap::new(),
    };
    let (body, schema) = b.bind_query(query)?;
    Ok((
        PlanRoot {
            ctes: b.ctes,
            subplans: b.subplans,
            body,
        },
        schema,
    ))
}

/// Convenience: bind the query of a `Statement::Select`.
pub fn bind_statement(
    catalog: &Catalog,
    profile: &EngineProfile,
    stmt: &Statement,
) -> Result<(PlanRoot, Schema)> {
    match stmt {
        Statement::Select(q) => bind_select(catalog, profile, q),
        _ => Err(SqlError::bind("not a SELECT statement")),
    }
}

#[derive(Clone)]
enum CteBinding {
    /// Splice the AST at each reference; `seen` flips after the first
    /// reference so shared-scan profiles can deduplicate later ones.
    Inline { query: Box<Query>, seen: bool },
    /// Fenced CTE not referenced yet; bound on first use.
    Pending(Box<Query>),
    /// Scan the relation materialized at execution time.
    Materialized { index: usize, schema: Schema },
}

struct Binder<'a> {
    catalog: &'a Catalog,
    profile: &'a EngineProfile,
    ctes: Vec<BoundCte>,
    subplans: Vec<PlanNode>,
    scopes: Vec<HashMap<String, CteBinding>>,
    view_depth: usize,
    /// Catalog views already inlined once this query (shared-scan profiles
    /// deduplicate the second and later references).
    views_seen: std::collections::HashSet<String>,
    /// Catalog views promoted to shared scans: name → (cte index, schema).
    view_memo: HashMap<String, (usize, Schema)>,
}

const MAX_VIEW_DEPTH: usize = 128;

impl<'a> Binder<'a> {
    /// Resolve a CTE by name. Materialization is **lazy**: a fenced CTE is
    /// bound (and scheduled for materialization) on its *first reference*,
    /// matching PostgreSQL, which never evaluates unreferenced CTEs. An
    /// unreferenced CTE in the `WITH` list therefore costs nothing — the
    /// property the paper's CTE mode relies on when each inspection query
    /// carries the whole translated prefix.
    fn lookup_cte(&mut self, name: &str) -> Result<Option<CteBinding>> {
        let Some((scope_idx, binding)) = self
            .scopes
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, frame)| frame.get(name).map(|b| (i, b.clone())))
        else {
            return Ok(None);
        };
        match binding {
            // Shared-scan profiles (Umbra's DAG plans) deduplicate an inlined
            // CTE once a query references it a second time.
            CteBinding::Inline { query, seen } if seen && self.profile.shared_scans => {
                let (plan, schema) = self.bind_in_scope(scope_idx, &query)?;
                let index = self.ctes.len();
                self.ctes.push(BoundCte {
                    name: name.to_string(),
                    plan,
                    shared: true,
                });
                let resolved = CteBinding::Materialized {
                    index,
                    schema: schema.clone(),
                };
                self.scopes[scope_idx].insert(name.to_string(), resolved.clone());
                Ok(Some(resolved))
            }
            CteBinding::Inline { query, seen: _ } => {
                self.scopes[scope_idx].insert(
                    name.to_string(),
                    CteBinding::Inline {
                        query: query.clone(),
                        seen: true,
                    },
                );
                Ok(Some(CteBinding::Inline { query, seen: true }))
            }
            CteBinding::Pending(query) => {
                // Bind in the scope the CTE was declared in (it must not see
                // CTEs of inner scopes).
                let (plan, schema) = self.bind_in_scope(scope_idx, &query)?;
                let index = self.ctes.len();
                self.ctes.push(BoundCte {
                    name: name.to_string(),
                    plan,
                    shared: false,
                });
                let resolved = CteBinding::Materialized {
                    index,
                    schema: schema.clone(),
                };
                self.scopes[scope_idx].insert(name.to_string(), resolved.clone());
                Ok(Some(resolved))
            }
            other => Ok(Some(other)),
        }
    }

    /// Bind a query as if at `scope_idx` (truncating inner scopes), with the
    /// usual depth guard.
    fn bind_in_scope(&mut self, scope_idx: usize, query: &Query) -> Result<(PlanNode, Schema)> {
        let saved: Vec<HashMap<String, CteBinding>> = self.scopes.drain(scope_idx + 1..).collect();
        self.view_depth += 1;
        if self.view_depth > MAX_VIEW_DEPTH {
            self.scopes.extend(saved);
            return Err(SqlError::bind("CTE nesting too deep (cycle?)"));
        }
        let result = self.bind_query(query);
        self.view_depth -= 1;
        self.scopes.extend(saved);
        result
    }

    fn bind_query(&mut self, query: &Query) -> Result<(PlanNode, Schema)> {
        let mut frame = HashMap::new();
        for cte in &query.ctes {
            let materialize = cte.materialized.unwrap_or(self.profile.materialize_ctes);
            let binding = if materialize {
                CteBinding::Pending(cte.query.clone())
            } else {
                CteBinding::Inline {
                    query: cte.query.clone(),
                    seen: false,
                }
            };
            frame.insert(cte.name.clone(), binding);
        }
        self.scopes.push(frame);
        let result = self.bind_body(&query.body);
        self.scopes.pop();
        result
    }

    fn bind_body(&mut self, body: &SelectBody) -> Result<(PlanNode, Schema)> {
        // FROM.
        let (mut plan, mut schema) = match &body.from {
            Some(tref) => self.bind_table_ref(tref)?,
            None => {
                let s = Schema::default();
                (
                    PlanNode::Values {
                        rows: vec![Vec::new()],
                        schema: s.clone(),
                    },
                    s,
                )
            }
        };

        // WHERE.
        if let Some(pred) = &body.selection {
            let predicate = self.bind_expr(pred, &schema)?;
            plan = PlanNode::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        let has_aggs = !body.group_by.is_empty()
            || body.projection.iter().any(
                |item| matches!(item, SelectItem::Expr { expr, .. } if contains_aggregate(expr)),
            )
            || body.having.as_ref().is_some_and(contains_aggregate)
            || body.order_by.iter().any(|o| contains_aggregate(&o.expr));

        if has_aggs {
            self.bind_aggregate_query(body, plan, schema)
        } else {
            self.bind_plain_query(body, &mut plan, &mut schema)
        }
    }

    // ---- plain (non-aggregate) SELECT ------------------------------------

    fn bind_plain_query(
        &mut self,
        body: &SelectBody,
        plan: &mut PlanNode,
        schema: &mut Schema,
    ) -> Result<(PlanNode, Schema)> {
        let mut plan = std::mem::replace(
            plan,
            PlanNode::Values {
                rows: Vec::new(),
                schema: Schema::default(),
            },
        );
        let mut schema = std::mem::take(schema);

        // Window functions: row_number() over (order by ...), possibly
        // nested in arithmetic (`ROW_NUMBER() OVER (...) - 1 AS pos`). Each
        // occurrence appends a hidden column; the projection expression then
        // references it.
        let mut window_substs: HashMap<usize, (Expr, String)> = HashMap::new(); // proj idx -> (window ast, hidden col name)
        for (i, item) in body.projection.iter().enumerate() {
            if let SelectItem::Expr { expr, .. } = item {
                if let Some(win_ast) = find_window_expr(expr) {
                    let keys = window_row_number_keys(win_ast)
                        .ok_or_else(|| SqlError::bind("only row_number() windows are supported"))?;
                    let bound_keys = keys
                        .iter()
                        .map(|(e, desc)| Ok((self.bind_expr(e, &schema)?, *desc)))
                        .collect::<Result<Vec<_>>>()?;
                    let col_name = format!("__window_{i}");
                    let mut new_schema = schema.clone();
                    new_schema.cols.push(ColumnMeta {
                        qualifier: None,
                        name: col_name.clone(),
                        ty: DataType::Int,
                        hidden: true,
                    });
                    window_substs.insert(i, (win_ast.clone(), col_name));
                    plan = PlanNode::WindowRowNumber {
                        input: Box::new(plan),
                        keys: bound_keys,
                        schema: new_schema.clone(),
                    };
                    schema = new_schema;
                }
            }
        }

        // Pre-projection ORDER BY if every key binds against the input.
        let mut pre_sorted = false;
        if !body.order_by.is_empty() {
            let keys: Result<Vec<(BExpr, bool)>> = body
                .order_by
                .iter()
                .map(|o| Ok((self.bind_expr(&o.expr, &schema)?, o.desc)))
                .collect();
            if let Ok(keys) = keys {
                plan = PlanNode::Sort {
                    input: Box::new(plan),
                    keys,
                };
                pre_sorted = true;
            }
        }

        // Projection (with wildcard expansion and unnest detection).
        let mut exprs: Vec<BExpr> = Vec::new();
        let mut out_cols: Vec<ColumnMeta> = Vec::new();
        let mut unnest_at: Option<usize> = None;
        for (i, item) in body.projection.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for pos in schema.visible() {
                        exprs.push(BExpr::Col(pos));
                        let c = &schema.cols[pos];
                        out_cols.push(ColumnMeta {
                            qualifier: None,
                            name: c.name.clone(),
                            ty: c.ty.clone(),
                            hidden: false,
                        });
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for pos in schema.visible() {
                        if schema.cols[pos].qualifier.as_deref() == Some(q.as_str()) {
                            any = true;
                            exprs.push(BExpr::Col(pos));
                            let c = &schema.cols[pos];
                            out_cols.push(ColumnMeta {
                                qualifier: None,
                                name: c.name.clone(),
                                ty: c.ty.clone(),
                                hidden: false,
                            });
                        }
                    }
                    if !any {
                        return Err(SqlError::bind(format!("unknown table alias '{q}'")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    if let Some((win_ast, win_name)) = window_substs.get(&i) {
                        let replaced = replace_subexpr(expr, win_ast, win_name);
                        let bound = self.bind_expr(&replaced, &schema)?;
                        let ty = infer_type(&bound, &schema);
                        out_cols.push(ColumnMeta {
                            qualifier: None,
                            name: alias.clone().unwrap_or_else(|| "row_number".to_string()),
                            ty,
                            hidden: false,
                        });
                        exprs.push(bound);
                        continue;
                    }
                    // unnest(...) as a top-level projection item (paper
                    // Listing 3): project the array, then expand.
                    if let Expr::Function { name, args, .. } = expr {
                        if name == "unnest" {
                            if unnest_at.is_some() {
                                return Err(SqlError::bind(
                                    "only one unnest() per SELECT is supported",
                                ));
                            }
                            let arg = args
                                .first()
                                .ok_or_else(|| SqlError::bind("unnest() needs an argument"))?;
                            let bound = self.bind_expr(arg, &schema)?;
                            let elem_ty = match infer_type(&bound, &schema) {
                                DataType::Array(e) => *e,
                                other => other,
                            };
                            unnest_at = Some(exprs.len());
                            exprs.push(bound);
                            out_cols.push(ColumnMeta {
                                qualifier: None,
                                name: alias.clone().unwrap_or_else(|| "unnest".to_string()),
                                ty: elem_ty,
                                hidden: false,
                            });
                            continue;
                        }
                    }
                    let bound = self.bind_expr(expr, &schema)?;
                    let ty = infer_type(&bound, &schema);
                    out_cols.push(ColumnMeta {
                        qualifier: None,
                        name: alias.clone().unwrap_or_else(|| derive_name(expr)),
                        ty,
                        hidden: false,
                    });
                    exprs.push(bound);
                }
            }
        }
        let out_schema = Schema { cols: out_cols };
        plan = PlanNode::Project {
            input: Box::new(plan),
            exprs,
            schema: out_schema.clone(),
        };

        if let Some(col) = unnest_at {
            plan = PlanNode::Unnest {
                input: Box::new(plan),
                column: col,
                schema: out_schema.clone(),
            };
        }

        if body.distinct {
            plan = PlanNode::Distinct {
                input: Box::new(plan),
            };
        }

        // Post-projection ORDER BY against output aliases.
        if !body.order_by.is_empty() && !pre_sorted {
            let keys = body
                .order_by
                .iter()
                .map(|o| Ok((self.bind_expr(&o.expr, &out_schema)?, o.desc)))
                .collect::<Result<Vec<_>>>()?;
            plan = PlanNode::Sort {
                input: Box::new(plan),
                keys,
            };
        }

        if let Some(n) = body.limit {
            plan = PlanNode::Limit {
                input: Box::new(plan),
                n,
            };
        }

        if body.having.is_some() {
            return Err(SqlError::bind("HAVING without aggregation"));
        }

        Ok((plan, out_schema))
    }

    // ---- aggregate SELECT -------------------------------------------------

    fn bind_aggregate_query(
        &mut self,
        body: &SelectBody,
        input: PlanNode,
        in_schema: Schema,
    ) -> Result<(PlanNode, Schema)> {
        // 1. Bind group expressions.
        let mut group_exprs = Vec::new();
        for g in &body.group_by {
            group_exprs.push(self.bind_expr(g, &in_schema)?);
        }

        // 2. Collect aggregate calls from projection, HAVING, ORDER BY.
        let mut agg_asts: Vec<Expr> = Vec::new();
        let mut collect = |e: &Expr| collect_aggregates(e, &mut agg_asts);
        for item in &body.projection {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr);
            }
        }
        if let Some(h) = &body.having {
            collect(h);
        }
        for o in &body.order_by {
            collect(&o.expr);
        }

        // 3. Bind each aggregate's argument.
        let mut aggs = Vec::new();
        for ast in &agg_asts {
            let Expr::Function {
                name,
                args,
                distinct,
                star,
                ..
            } = ast
            else {
                unreachable!("collect_aggregates only yields functions")
            };
            let (func, arg, ty) = if *star {
                (AggFunc::CountStar, None, DataType::Int)
            } else {
                let arg_ast = args
                    .first()
                    .ok_or_else(|| SqlError::bind(format!("{name}() needs an argument")))?;
                let bound = self.bind_expr(arg_ast, &in_schema)?;
                let arg_ty = infer_type(&bound, &in_schema);
                let (f, ty) = match name.as_str() {
                    "count" => (
                        AggFunc::Count {
                            distinct: *distinct,
                        },
                        DataType::Int,
                    ),
                    "sum" => (AggFunc::Sum, arg_ty.clone()),
                    "avg" => (AggFunc::Avg, DataType::Float),
                    "min" => (AggFunc::Min, arg_ty.clone()),
                    "max" => (AggFunc::Max, arg_ty.clone()),
                    "stddev_pop" | "stddev" | "stddev_samp" => {
                        (AggFunc::StddevPop, DataType::Float)
                    }
                    "median" => (AggFunc::Median, DataType::Float),
                    "array_agg" => (AggFunc::ArrayAgg, DataType::Array(Box::new(arg_ty.clone()))),
                    other => return Err(SqlError::bind(format!("unknown aggregate {other}"))),
                };
                (f, Some(bound), ty)
            };
            aggs.push(AggCall { func, arg, ty });
        }

        // 4. Aggregate node schema: groups then aggregates.
        let mut agg_cols = Vec::new();
        for (gi, g) in body.group_by.iter().enumerate() {
            agg_cols.push(ColumnMeta {
                qualifier: None,
                name: derive_name(g),
                ty: infer_type(&group_exprs[gi], &in_schema),
                hidden: false,
            });
        }
        for (ai, ast) in agg_asts.iter().enumerate() {
            agg_cols.push(ColumnMeta {
                qualifier: None,
                name: derive_name(ast),
                ty: aggs[ai].ty.clone(),
                hidden: false,
            });
        }
        let agg_schema = Schema { cols: agg_cols };
        let mut plan = PlanNode::Aggregate {
            input: Box::new(input),
            group_exprs,
            aggs,
            schema: agg_schema.clone(),
        };

        // 5. Rewriter: maps outer AST expressions onto the agg schema.
        let n_groups = body.group_by.len();
        let rewrite = |e: &Expr, binder: &mut Binder<'a>| -> Result<BExpr> {
            rewrite_post_agg(e, &body.group_by, &agg_asts, n_groups, binder, &agg_schema)
        };

        // HAVING.
        if let Some(h) = &body.having {
            let predicate = rewrite(h, self)?;
            plan = PlanNode::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // ORDER BY (over the agg schema, so un-projected aggregates work:
        // `ORDER BY count(*) DESC LIMIT 1` in the imputer query).
        if !body.order_by.is_empty() {
            let keys = body
                .order_by
                .iter()
                .map(|o| Ok((rewrite(&o.expr, self)?, o.desc)))
                .collect::<Result<Vec<_>>>()?;
            plan = PlanNode::Sort {
                input: Box::new(plan),
                keys,
            };
        }

        if let Some(n) = body.limit {
            plan = PlanNode::Limit {
                input: Box::new(plan),
                n,
            };
        }

        // Projection.
        let mut exprs = Vec::new();
        let mut out_cols = Vec::new();
        for item in &body.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(SqlError::bind("* not supported with GROUP BY"));
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = rewrite(expr, self)?;
                    let ty = infer_type(&bound, &agg_schema);
                    out_cols.push(ColumnMeta {
                        qualifier: None,
                        name: alias.clone().unwrap_or_else(|| derive_name(expr)),
                        ty,
                        hidden: false,
                    });
                    exprs.push(bound);
                }
            }
        }
        let out_schema = Schema { cols: out_cols };
        plan = PlanNode::Project {
            input: Box::new(plan),
            exprs,
            schema: out_schema.clone(),
        };
        if body.distinct {
            plan = PlanNode::Distinct {
                input: Box::new(plan),
            };
        }
        Ok((plan, out_schema))
    }

    // ---- FROM clause -------------------------------------------------------

    fn bind_table_ref(&mut self, tref: &TableRef) -> Result<(PlanNode, Schema)> {
        match tref {
            TableRef::Named { name, alias } => self.bind_named(name, alias.as_deref()),
            TableRef::Subquery { query, alias } => {
                let (plan, schema) = self.bind_query(query)?;
                Ok((plan, requalify(schema, alias)))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => self.bind_join(left, right, *kind, on.as_ref()),
        }
    }

    fn bind_named(&mut self, name: &str, alias: Option<&str>) -> Result<(PlanNode, Schema)> {
        let qualifier = alias.unwrap_or(name).to_string();
        // 1. CTE in scope.
        if let Some(binding) = self.lookup_cte(name)? {
            return match binding {
                CteBinding::Pending(_) => unreachable!("lookup_cte resolves pending CTEs"),
                CteBinding::Materialized { index, schema } => {
                    let proj: Vec<usize> = (0..schema.len()).collect();
                    let schema = requalify(schema, &qualifier);
                    Ok((
                        PlanNode::Scan {
                            source: ScanSource::Cte(index),
                            projection: proj,
                            schema: schema.clone(),
                        },
                        schema,
                    ))
                }
                CteBinding::Inline { query, .. } => {
                    self.view_depth += 1;
                    if self.view_depth > MAX_VIEW_DEPTH {
                        return Err(SqlError::bind("view/CTE nesting too deep (cycle?)"));
                    }
                    let result = self.bind_query(&query);
                    self.view_depth -= 1;
                    let (plan, schema) = result?;
                    Ok((plan, requalify(schema, &qualifier)))
                }
            };
        }
        // 2. View.
        if let Some(view) = self.catalog.view(name) {
            if let Some(data) = &view.materialized {
                let schema = Schema {
                    cols: data
                        .columns
                        .iter()
                        .zip(&data.types)
                        .map(|(n, t)| ColumnMeta {
                            qualifier: Some(qualifier.clone()),
                            name: n.clone(),
                            ty: t.clone(),
                            hidden: false,
                        })
                        .collect(),
                };
                return Ok((
                    PlanNode::Scan {
                        source: ScanSource::MaterializedView(name.to_string()),
                        projection: (0..schema.len()).collect(),
                        schema: schema.clone(),
                    },
                    schema,
                ));
            }
            let query = view.query.clone();
            // Shared-scan dedup: the second reference to the same view in one
            // query becomes a scan of a shared intermediate.
            if self.profile.shared_scans {
                if let Some((index, schema)) = self.view_memo.get(name).cloned() {
                    let proj: Vec<usize> = (0..schema.len()).collect();
                    let schema = requalify(schema, &qualifier);
                    return Ok((
                        PlanNode::Scan {
                            source: ScanSource::Cte(index),
                            projection: proj,
                            schema: schema.clone(),
                        },
                        schema,
                    ));
                }
                if self.views_seen.contains(name) {
                    let (plan, schema) = self.bind_in_scope(0, &query)?;
                    let index = self.ctes.len();
                    self.ctes.push(BoundCte {
                        name: name.to_string(),
                        plan,
                        shared: true,
                    });
                    self.view_memo
                        .insert(name.to_string(), (index, schema.clone()));
                    let proj: Vec<usize> = (0..schema.len()).collect();
                    let schema = requalify(schema, &qualifier);
                    return Ok((
                        PlanNode::Scan {
                            source: ScanSource::Cte(index),
                            projection: proj,
                            schema: schema.clone(),
                        },
                        schema,
                    ));
                }
                self.views_seen.insert(name.to_string());
            }
            self.view_depth += 1;
            if self.view_depth > MAX_VIEW_DEPTH {
                return Err(SqlError::bind("view nesting too deep (cycle?)"));
            }
            let result = self.bind_query(&query);
            self.view_depth -= 1;
            let (plan, schema) = result?;
            return Ok((plan, requalify(schema, &qualifier)));
        }
        // 3. Base table (with virtual ctid).
        if let Some(table) = self.catalog.table(name) {
            let mut cols: Vec<ColumnMeta> = table
                .data
                .columns
                .iter()
                .zip(&table.data.types)
                .map(|(n, t)| ColumnMeta {
                    qualifier: Some(qualifier.clone()),
                    name: n.clone(),
                    ty: t.clone(),
                    hidden: false,
                })
                .collect();
            let mut projection: Vec<usize> = (0..cols.len()).collect();
            cols.push(ColumnMeta {
                qualifier: Some(qualifier.clone()),
                name: "ctid".to_string(),
                ty: DataType::Int,
                hidden: true,
            });
            projection.push(CTID_SENTINEL);
            let schema = Schema { cols };
            return Ok((
                PlanNode::Scan {
                    source: ScanSource::Table(name.to_string()),
                    projection,
                    schema: schema.clone(),
                },
                schema,
            ));
        }
        Err(SqlError::bind(format!("unknown relation '{name}'")))
    }

    fn bind_join(
        &mut self,
        left: &TableRef,
        right: &TableRef,
        kind: ast::JoinKind,
        on: Option<&Expr>,
    ) -> Result<(PlanNode, Schema)> {
        let (lplan, lschema) = self.bind_table_ref(left)?;
        let (rplan, rschema) = self.bind_table_ref(right)?;
        let nleft = lschema.len();
        let mut cols = lschema.cols.clone();
        cols.extend(rschema.cols.iter().cloned());
        let schema = Schema { cols };

        let kind = match kind {
            ast::JoinKind::Inner => JoinKind::Inner,
            ast::JoinKind::Left => JoinKind::Left,
            ast::JoinKind::Right => JoinKind::Right,
            ast::JoinKind::Full => JoinKind::Full,
            ast::JoinKind::Cross => JoinKind::Cross,
        };

        let mut equi = Vec::new();
        let mut residual_parts: Vec<BExpr> = Vec::new();
        if let Some(on) = on {
            let bound = self.bind_expr(on, &schema)?;
            for conjunct in bexpr_conjuncts(&bound) {
                match classify_join_conjunct(&conjunct, nleft) {
                    Some(key) => equi.push(key),
                    None => residual_parts.push(conjunct),
                }
            }
        }
        let residual = residual_parts.into_iter().reduce(|a, b| BExpr::Binary {
            op: ast::BinaryOp::And,
            left: Box::new(a),
            right: Box::new(b),
        });
        if residual.is_some() && kind != JoinKind::Inner && kind != JoinKind::Cross {
            return Err(SqlError::bind(
                "outer joins support only equi-join conditions",
            ));
        }

        Ok((
            PlanNode::Join {
                left: Box::new(lplan),
                right: Box::new(rplan),
                kind,
                equi,
                residual,
                schema: schema.clone(),
            },
            schema,
        ))
    }

    // ---- expressions --------------------------------------------------------

    fn bind_expr(&mut self, expr: &Expr, schema: &Schema) -> Result<BExpr> {
        Ok(match expr {
            Expr::Column { table, name } => {
                let candidates = schema.resolve(table.as_deref(), name);
                match candidates.len() {
                    1 => BExpr::Col(candidates[0]),
                    0 => {
                        return Err(SqlError::bind(format!(
                            "unknown column {}{name}",
                            table.as_ref().map(|t| format!("{t}.")).unwrap_or_default()
                        )))
                    }
                    _ => {
                        // Ambiguity is tolerated when all candidates refer to
                        // equal-named hidden/visible pairs; otherwise error.
                        return Err(SqlError::bind(format!("ambiguous column '{name}'")));
                    }
                }
            }
            Expr::Literal(v) => BExpr::Lit(v.clone()),
            Expr::Parameter(n) => BExpr::Param(*n),
            Expr::Binary { op, left, right } => BExpr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left, schema)?),
                right: Box::new(self.bind_expr(right, schema)?),
            },
            Expr::Unary { op, operand } => BExpr::Unary {
                op: *op,
                operand: Box::new(self.bind_expr(operand, schema)?),
            },
            Expr::Function {
                name,
                args,
                star,
                window_order,
                ..
            } => {
                if window_order.is_some() {
                    return Err(SqlError::bind(
                        "window functions are only supported as top-level projection items",
                    ));
                }
                if is_aggregate_name(name) || *star {
                    return Err(SqlError::bind(format!(
                        "aggregate {name}() not allowed in this context"
                    )));
                }
                let func = ScalarFunc::resolve(name)
                    .ok_or_else(|| SqlError::bind(format!("unknown function {name}")))?;
                BExpr::Func {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.bind_expr(a, schema))
                        .collect::<Result<Vec<_>>>()?,
                }
            }
            Expr::Case { whens, else_expr } => BExpr::Case {
                whens: whens
                    .iter()
                    .map(|(c, v)| Ok((self.bind_expr(c, schema)?, self.bind_expr(v, schema)?)))
                    .collect::<Result<Vec<_>>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.bind_expr(e, schema)?)),
                    None => None,
                },
            },
            Expr::Cast { expr, ty } => BExpr::Cast {
                expr: Box::new(self.bind_expr(expr, schema)?),
                ty: ty.clone(),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => BExpr::InList {
                expr: Box::new(self.bind_expr(expr, schema)?),
                list: list
                    .iter()
                    .map(|e| self.bind_expr(e, schema))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => BExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, schema)?),
                negated: *negated,
            },
            Expr::ScalarSubquery(q) => {
                let (plan, sub_schema) = self.bind_query(q)?;
                if sub_schema.len() != 1 {
                    return Err(SqlError::bind(format!(
                        "scalar subquery must return one column, got {}",
                        sub_schema.len()
                    )));
                }
                let idx = self.subplans.len();
                self.subplans.push(plan);
                BExpr::Subplan(idx)
            }
            Expr::ArrayLiteral(items) => {
                // Fold constant arrays; dynamic arrays become a Func-less
                // construction via Case — simplest is a dedicated path:
                let bound = items
                    .iter()
                    .map(|e| self.bind_expr(e, schema))
                    .collect::<Result<Vec<_>>>()?;
                if bound.iter().all(|b| matches!(b, BExpr::Lit(_))) {
                    let vals = bound
                        .into_iter()
                        .map(|b| match b {
                            BExpr::Lit(v) => v,
                            _ => unreachable!(),
                        })
                        .collect();
                    BExpr::Lit(Value::Array(vals))
                } else {
                    // Dynamic ARRAY[expr,...]: build via concat of singleton
                    // fills. Rare in generated SQL; supported for
                    // completeness.
                    let mut iter = bound.into_iter();
                    let first = iter
                        .next()
                        .ok_or_else(|| SqlError::bind("empty dynamic ARRAY[] is unsupported"))?;
                    let mut acc = BExpr::Func {
                        func: ScalarFunc::ArrayFill,
                        args: vec![first, BExpr::Lit(Value::Int(1))],
                    };
                    for item in iter {
                        let single = BExpr::Func {
                            func: ScalarFunc::ArrayFill,
                            args: vec![item, BExpr::Lit(Value::Int(1))],
                        };
                        acc = BExpr::Binary {
                            op: ast::BinaryOp::Concat,
                            left: Box::new(acc),
                            right: Box::new(single),
                        };
                    }
                    acc
                }
            }
        })
    }
}

// ---- helpers ---------------------------------------------------------------

fn requalify(mut schema: Schema, alias: &str) -> Schema {
    for c in &mut schema.cols {
        c.qualifier = Some(alias.to_string());
    }
    schema
}

/// True for function names that are aggregates.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name,
        "count"
            | "sum"
            | "avg"
            | "min"
            | "max"
            | "stddev_pop"
            | "stddev"
            | "stddev_samp"
            | "median"
            | "array_agg"
    )
}

/// Collect top-most aggregate calls (not descending into subqueries or into
/// nested aggregates, which are invalid anyway). Deduplicates structurally.
fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Function { name, star, .. } if is_aggregate_name(name) || *star => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Unary { operand, .. } => collect_aggregates(operand, out),
        Expr::Case { whens, else_expr } => {
            for (c, v) in whens {
                collect_aggregates(c, out);
                collect_aggregates(v, out);
            }
            if let Some(e) = else_expr {
                collect_aggregates(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggregates(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::ScalarSubquery(_)
        | Expr::Column { .. }
        | Expr::Literal(_)
        | Expr::Parameter(_)
        | Expr::ArrayLiteral(_) => {}
    }
}

fn contains_aggregate(expr: &Expr) -> bool {
    let mut found = Vec::new();
    collect_aggregates(expr, &mut found);
    !found.is_empty()
}

/// Rewrite a post-aggregation expression (projection/HAVING/ORDER BY item)
/// onto the aggregate output schema.
#[allow(clippy::only_used_in_recursion)]
fn rewrite_post_agg(
    expr: &Expr,
    group_by: &[Expr],
    agg_asts: &[Expr],
    n_groups: usize,
    binder: &mut Binder<'_>,
    agg_schema: &Schema,
) -> Result<BExpr> {
    // Exact structural match with a GROUP BY expression.
    if let Some(gi) = group_by.iter().position(|g| exprs_equivalent(g, expr)) {
        return Ok(BExpr::Col(gi));
    }
    // Exact structural match with a collected aggregate.
    if let Some(ai) = agg_asts.iter().position(|a| a == expr) {
        return Ok(BExpr::Col(n_groups + ai));
    }
    Ok(match expr {
        Expr::Column { table, name } => {
            // A bare column that (qualified or not) matches a group-by column.
            if let Some(gi) = group_by.iter().position(|g| match g {
                Expr::Column { name: gname, .. } => gname == name,
                _ => false,
            }) {
                BExpr::Col(gi)
            } else {
                return Err(SqlError::bind(format!(
                    "column {}{name} must appear in GROUP BY",
                    table.as_ref().map(|t| format!("{t}.")).unwrap_or_default()
                )));
            }
        }
        Expr::Literal(v) => BExpr::Lit(v.clone()),
        Expr::Parameter(n) => BExpr::Param(*n),
        Expr::Binary { op, left, right } => BExpr::Binary {
            op: *op,
            left: Box::new(rewrite_post_agg(
                left, group_by, agg_asts, n_groups, binder, agg_schema,
            )?),
            right: Box::new(rewrite_post_agg(
                right, group_by, agg_asts, n_groups, binder, agg_schema,
            )?),
        },
        Expr::Unary { op, operand } => BExpr::Unary {
            op: *op,
            operand: Box::new(rewrite_post_agg(
                operand, group_by, agg_asts, n_groups, binder, agg_schema,
            )?),
        },
        Expr::Function { name, args, .. } => {
            let func = ScalarFunc::resolve(name)
                .ok_or_else(|| SqlError::bind(format!("unknown function {name}")))?;
            BExpr::Func {
                func,
                args: args
                    .iter()
                    .map(|a| rewrite_post_agg(a, group_by, agg_asts, n_groups, binder, agg_schema))
                    .collect::<Result<Vec<_>>>()?,
            }
        }
        Expr::Case { whens, else_expr } => BExpr::Case {
            whens: whens
                .iter()
                .map(|(c, v)| {
                    Ok((
                        rewrite_post_agg(c, group_by, agg_asts, n_groups, binder, agg_schema)?,
                        rewrite_post_agg(v, group_by, agg_asts, n_groups, binder, agg_schema)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(rewrite_post_agg(
                    e, group_by, agg_asts, n_groups, binder, agg_schema,
                )?)),
                None => None,
            },
        },
        Expr::Cast { expr: inner, ty } => BExpr::Cast {
            expr: Box::new(rewrite_post_agg(
                inner, group_by, agg_asts, n_groups, binder, agg_schema,
            )?),
            ty: ty.clone(),
        },
        Expr::InList {
            expr: inner,
            list,
            negated,
        } => BExpr::InList {
            expr: Box::new(rewrite_post_agg(
                inner, group_by, agg_asts, n_groups, binder, agg_schema,
            )?),
            list: list
                .iter()
                .map(|e| rewrite_post_agg(e, group_by, agg_asts, n_groups, binder, agg_schema))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::IsNull {
            expr: inner,
            negated,
        } => BExpr::IsNull {
            expr: Box::new(rewrite_post_agg(
                inner, group_by, agg_asts, n_groups, binder, agg_schema,
            )?),
            negated: *negated,
        },
        Expr::ScalarSubquery(q) => {
            let (plan, sub_schema) = binder.bind_query(q)?;
            if sub_schema.len() != 1 {
                return Err(SqlError::bind("scalar subquery must return one column"));
            }
            let idx = binder.subplans.len();
            binder.subplans.push(plan);
            BExpr::Subplan(idx)
        }
        Expr::ArrayLiteral(_) => {
            return Err(SqlError::bind(
                "ARRAY[] literals are not supported after aggregation",
            ))
        }
    })
}

/// Structural equivalence modulo table qualifiers (so `GROUP BY s` matches
/// `SELECT o.s` in the common single-table case is *not* assumed — only
/// unqualified-vs-qualified of the same name).
fn exprs_equivalent(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (
            Expr::Column {
                name: an,
                table: at,
            },
            Expr::Column {
                name: bn,
                table: bt,
            },
        ) => an == bn && (at == bt || at.is_none() || bt.is_none()),
        _ => a == b,
    }
}

fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        Expr::Cast { expr, .. } => derive_name(expr),
        _ => "?column?".to_string(),
    }
}

/// Find the first window-function subexpression (depth-first).
fn find_window_expr(expr: &Expr) -> Option<&Expr> {
    match expr {
        Expr::Function {
            window_order: Some(_),
            ..
        } => Some(expr),
        Expr::Function { args, .. } => args.iter().find_map(find_window_expr),
        Expr::Binary { left, right, .. } => {
            find_window_expr(left).or_else(|| find_window_expr(right))
        }
        Expr::Unary { operand, .. } => find_window_expr(operand),
        Expr::Case { whens, else_expr } => whens
            .iter()
            .find_map(|(c, v)| find_window_expr(c).or_else(|| find_window_expr(v)))
            .or_else(|| else_expr.as_ref().and_then(|e| find_window_expr(e))),
        Expr::Cast { expr, .. } => find_window_expr(expr),
        Expr::InList { expr, list, .. } => {
            find_window_expr(expr).or_else(|| list.iter().find_map(find_window_expr))
        }
        Expr::IsNull { expr, .. } => find_window_expr(expr),
        _ => None,
    }
}

/// Replace every occurrence of `target` inside `expr` with a reference to
/// the hidden column `col_name`.
fn replace_subexpr(expr: &Expr, target: &Expr, col_name: &str) -> Expr {
    if expr == target {
        return Expr::col(col_name);
    }
    match expr {
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(replace_subexpr(left, target, col_name)),
            right: Box::new(replace_subexpr(right, target, col_name)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(replace_subexpr(operand, target, col_name)),
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
            window_order,
        } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| replace_subexpr(a, target, col_name))
                .collect(),
            distinct: *distinct,
            star: *star,
            window_order: window_order.clone(),
        },
        Expr::Case { whens, else_expr } => Expr::Case {
            whens: whens
                .iter()
                .map(|(c, v)| {
                    (
                        replace_subexpr(c, target, col_name),
                        replace_subexpr(v, target, col_name),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(replace_subexpr(e, target, col_name))),
        },
        Expr::Cast { expr: inner, ty } => Expr::Cast {
            expr: Box::new(replace_subexpr(inner, target, col_name)),
            ty: ty.clone(),
        },
        Expr::InList {
            expr: inner,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(replace_subexpr(inner, target, col_name)),
            list: list
                .iter()
                .map(|e| replace_subexpr(e, target, col_name))
                .collect(),
            negated: *negated,
        },
        Expr::IsNull {
            expr: inner,
            negated,
        } => Expr::IsNull {
            expr: Box::new(replace_subexpr(inner, target, col_name)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// If this expression is `row_number() OVER (ORDER BY ...)`, return the keys.
fn window_row_number_keys(expr: &Expr) -> Option<Vec<(Expr, bool)>> {
    // Allow `row_number() over (...) - 1` style arithmetic? Keep strict:
    // direct call or call wrapped in a single binary op with a literal.
    match expr {
        Expr::Function {
            name,
            window_order: Some(order),
            ..
        } if name == "row_number" => Some(order.iter().map(|o| (o.expr.clone(), o.desc)).collect()),
        _ => None,
    }
}

fn bexpr_conjuncts(e: &BExpr) -> Vec<BExpr> {
    match e {
        BExpr::Binary {
            op: ast::BinaryOp::And,
            left,
            right,
        } => {
            let mut out = bexpr_conjuncts(left);
            out.extend(bexpr_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Classify one ON conjunct as an equi key (possibly null-safe) if possible.
fn classify_join_conjunct(conjunct: &BExpr, nleft: usize) -> Option<EquiKey> {
    // Null-safe pattern: (a = b) OR (a IS NULL AND b IS NULL).
    if let BExpr::Binary {
        op: ast::BinaryOp::Or,
        left,
        right,
    } = conjunct
    {
        if let (Some(mut key), Some((na, nb))) =
            (plain_equi(left, nleft), null_null_pair(right, nleft))
        {
            if let (BExpr::Col(a), BExpr::Col(b)) = (&key.left, &key.right) {
                if (*a, *b) == (na, nb) {
                    key.null_safe = true;
                    return Some(key);
                }
            }
        }
        return None;
    }
    plain_equi(conjunct, nleft)
}

/// `left_side_expr = right_side_expr` with sides strictly split.
fn plain_equi(e: &BExpr, nleft: usize) -> Option<EquiKey> {
    let BExpr::Binary {
        op: ast::BinaryOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    let side = |b: &BExpr| -> Option<bool> {
        let mut cols = Vec::new();
        b.columns_used(&mut cols);
        if cols.is_empty() {
            return None;
        }
        if cols.iter().all(|c| *c < nleft) {
            Some(true)
        } else if cols.iter().all(|c| *c >= nleft) {
            Some(false)
        } else {
            None
        }
    };
    let (ls, rs) = (side(left)?, side(right)?);
    let (mut l, mut r) = match (ls, rs) {
        (true, false) => ((**left).clone(), (**right).clone()),
        (false, true) => ((**right).clone(), (**left).clone()),
        _ => return None,
    };
    // Make right-side positions right-local.
    let map: Vec<usize> = (0..nleft + 4096).map(|i| i.saturating_sub(nleft)).collect();
    let _ = &mut l; // left stays as-is
    remap_right(&mut r, nleft);
    let _ = map;
    Some(EquiKey {
        left: l,
        right: r,
        null_safe: false,
    })
}

fn remap_right(e: &mut BExpr, nleft: usize) {
    match e {
        BExpr::Col(i) => *i -= nleft,
        BExpr::Lit(_) | BExpr::Param(_) | BExpr::Subplan(_) => {}
        BExpr::Binary { left, right, .. } => {
            remap_right(left, nleft);
            remap_right(right, nleft);
        }
        BExpr::Unary { operand, .. } => remap_right(operand, nleft),
        BExpr::Func { args, .. } => {
            for a in args {
                remap_right(a, nleft);
            }
        }
        BExpr::Case { whens, else_expr } => {
            for (c, v) in whens {
                remap_right(c, nleft);
                remap_right(v, nleft);
            }
            if let Some(e) = else_expr {
                remap_right(e, nleft);
            }
        }
        BExpr::Cast { expr, .. } => remap_right(expr, nleft),
        BExpr::InList { expr, list, .. } => {
            remap_right(expr, nleft);
            for i in list {
                remap_right(i, nleft);
            }
        }
        BExpr::IsNull { expr, .. } => remap_right(expr, nleft),
    }
}

/// `(a IS NULL AND b IS NULL)` with a left-side and b right-side column;
/// returns (left col, right-local col).
fn null_null_pair(e: &BExpr, nleft: usize) -> Option<(usize, usize)> {
    let BExpr::Binary {
        op: ast::BinaryOp::And,
        left,
        right,
    } = e
    else {
        return None;
    };
    let col_of = |b: &BExpr| -> Option<usize> {
        if let BExpr::IsNull {
            expr,
            negated: false,
        } = b
        {
            if let BExpr::Col(i) = **expr {
                return Some(i);
            }
        }
        None
    };
    let (a, b) = (col_of(left)?, col_of(right)?);
    if a < nleft && b >= nleft {
        Some((a, b - nleft))
    } else if b < nleft && a >= nleft {
        Some((b, a - nleft))
    } else {
        None
    }
}

/// Best-effort static typing of a bound expression.
pub fn infer_type(expr: &BExpr, schema: &Schema) -> DataType {
    match expr {
        BExpr::Col(i) => schema
            .cols
            .get(*i)
            .map(|c| c.ty.clone())
            .unwrap_or(DataType::Text),
        BExpr::Lit(v) => v.data_type().unwrap_or(DataType::Text),
        // A parameter's value is unknown until EXECUTE; default like an
        // untyped literal. Parameters in the projection inherit Text.
        BExpr::Param(_) => DataType::Text,
        BExpr::Binary { op, left, right } => {
            use ast::BinaryOp::*;
            match op {
                Eq | NotEq | Lt | Gt | Le | Ge | And | Or => DataType::Bool,
                Concat => infer_type(left, schema),
                Div => DataType::Float,
                _ => {
                    let lt = infer_type(left, schema);
                    let rt = infer_type(right, schema);
                    lt.unify(&rt).unwrap_or(DataType::Float)
                }
            }
        }
        BExpr::Unary { op, operand } => match op {
            ast::UnaryOp::Not => DataType::Bool,
            ast::UnaryOp::Neg => infer_type(operand, schema),
        },
        BExpr::Func { func, args } => {
            let arg_types: Vec<DataType> = args.iter().map(|a| infer_type(a, schema)).collect();
            func.return_type(&arg_types)
        }
        BExpr::Case { whens, else_expr } => whens
            .first()
            .map(|(_, v)| infer_type(v, schema))
            .or_else(|| else_expr.as_ref().map(|e| infer_type(e, schema)))
            .unwrap_or(DataType::Text),
        BExpr::Cast { ty, .. } => ty.clone(),
        BExpr::InList { .. } | BExpr::IsNull { .. } => DataType::Bool,
        BExpr::Subplan(_) => DataType::Float,
    }
}
