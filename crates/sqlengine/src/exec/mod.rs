//! Plan execution.
//!
//! The executor materializes each operator's output (the paper's PostgreSQL
//! runs do the same for CTEs; intra-query pipelining differences between the
//! two modelled systems are captured by the profile's per-row overhead knob
//! rather than by a separate compiled engine).

pub mod eval;

use crate::catalog::Catalog;
use crate::error::{Result, SqlError};
use crate::plan::{
    AggCall, AggFunc, BExpr, JoinKind, PlanNode, PlanRoot, ScanSource, CTID_SENTINEL,
};
use crate::profile::EngineProfile;
use crate::storage::Relation;
use etypes::Value;
use eval::{eval, truthy};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Rows produced between deadline checks under cooperative cancellation:
/// large enough that the clock read is amortized away, small enough that a
/// runaway join is cancelled promptly.
const TICK_ROWS: u64 = 1024;

/// One tuple.
pub type Row = Vec<Value>;

/// Runtime counters for one plan node under operator profiling.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeProfile {
    /// Rows produced across all executions of this node.
    pub rows_out: u64,
    /// Columnar batches produced across all executions; stays 0 for nodes
    /// run by the row engine (including fallback-bridge subtrees).
    pub batches_out: u64,
    /// Inclusive wall-clock time (children included), microseconds.
    pub elapsed_us: u64,
    /// Times the node ran (CTE plans and cached subplans run once).
    pub executions: u64,
}

/// Per-node profiles captured during one execution, keyed by the node's
/// address inside the borrowed [`PlanRoot`] (stable for the whole run and
/// for the profile build that follows, which walks the same plan).
#[derive(Debug, Default, Clone)]
pub struct NodeProfiles {
    map: HashMap<usize, NodeProfile>,
}

impl NodeProfiles {
    /// The profile recorded for `node`, if it ever executed.
    pub fn get(&self, node: &PlanNode) -> Option<NodeProfile> {
        self.map.get(&(node as *const PlanNode as usize)).copied()
    }

    fn record(&mut self, key: usize, rows: u64, elapsed: std::time::Duration) {
        self.record_batched(key, rows, 0, elapsed);
    }

    /// Record one execution of a node, with the number of columnar batches
    /// it produced (0 for row-engine executions).
    pub(crate) fn record_batched(
        &mut self,
        key: usize,
        rows: u64,
        batches: u64,
        elapsed: std::time::Duration,
    ) {
        let p = self.map.entry(key).or_default();
        p.rows_out += rows;
        p.batches_out += batches;
        p.elapsed_us += elapsed.as_micros() as u64;
        p.executions += 1;
    }
}

/// Counters the engine exposes for tests and the operation-level benchmark.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Simulated pages read from base tables / materialized views / CTE temp
    /// storage.
    pub pages_read: u64,
    /// Simulated pages written when materializing CTEs and views.
    pub pages_written: u64,
    /// Number of CTEs materialized (the PostgreSQL fence).
    pub ctes_materialized: u64,
    /// Number of shared-scan intermediates created by common-subexpression
    /// elimination (the in-memory profile's DAG plans).
    pub shared_scans: u64,
    /// Total rows produced by plan operators.
    pub rows_processed: u64,
    /// Columnar batches produced by vectorized operators (stays 0 under the
    /// row engine).
    pub batches_executed: u64,
    /// Times the columnar executor bridged a subtree back to the row engine
    /// because its top operator is not vectorized.
    pub colexec_fallbacks: u64,
}

/// Shared execution state for one query.
pub struct ExecContext<'a> {
    /// Catalog for scans.
    pub catalog: &'a Catalog,
    /// Cost/behaviour profile.
    pub profile: &'a EngineProfile,
    /// The bound query (CTE and subplan tables).
    pub root: &'a PlanRoot,
    /// Materialized CTE results, filled in order before the body runs.
    cte_results: RefCell<Vec<Option<Rc<Vec<Row>>>>>,
    /// Lazily evaluated scalar subquery values.
    subplan_cache: RefCell<Vec<Option<Value>>>,
    /// Counters.
    pub stats: RefCell<ExecStats>,
    /// Per-node runtime profiles; `None` (the default) keeps the hot path
    /// down to a single branch per operator.
    profiles: Option<RefCell<NodeProfiles>>,
    /// Cooperative-cancellation deadline plus the configured budget in
    /// milliseconds (carried for the error message). `None` (the default)
    /// keeps [`ExecContext::tick`] to a single branch.
    deadline: Option<(std::time::Instant, u64)>,
    /// Rows produced since the last deadline check.
    ticked: Cell<u64>,
}

impl<'a> ExecContext<'a> {
    /// Create a context for a bound query.
    pub fn new(catalog: &'a Catalog, profile: &'a EngineProfile, root: &'a PlanRoot) -> Self {
        ExecContext {
            catalog,
            profile,
            root,
            cte_results: RefCell::new(vec![None; root.ctes.len()]),
            subplan_cache: RefCell::new(vec![None; root.subplans.len()]),
            stats: RefCell::new(ExecStats::default()),
            profiles: None,
            deadline: None,
            ticked: Cell::new(0),
        }
    }

    /// Arm cooperative cancellation: operators abort with
    /// [`SqlError::Timeout`] once `deadline` passes. The clock is checked
    /// every [`TICK_ROWS`] produced rows, so cancellation latency is
    /// bounded by the time to produce that many rows, not by statement
    /// completion.
    pub fn set_deadline(&mut self, deadline: std::time::Instant, budget_ms: u64) {
        self.deadline = Some((deadline, budget_ms));
    }

    /// Charge `produced` rows against the cancellation budget. Costs one
    /// branch when no deadline is armed; reads the clock once per
    /// [`TICK_ROWS`] rows otherwise.
    #[inline]
    pub fn tick(&self, produced: usize) -> Result<()> {
        let Some((deadline, ms)) = self.deadline else {
            return Ok(());
        };
        let acc = self.ticked.get() + produced as u64;
        if acc < TICK_ROWS {
            self.ticked.set(acc);
            return Ok(());
        }
        self.ticked.set(0);
        if std::time::Instant::now() >= deadline {
            return Err(SqlError::Timeout { ms });
        }
        Ok(())
    }

    /// Turn on per-node profiling (`EXPLAIN ANALYZE`, slow-query capture).
    pub fn enable_profiling(&mut self) {
        self.profiles = Some(RefCell::new(NodeProfiles::default()));
    }

    /// Take the captured profiles, if profiling was enabled.
    pub fn take_profiles(&mut self) -> Option<NodeProfiles> {
        self.profiles.take().map(RefCell::into_inner)
    }

    /// The cached value of scalar subquery `i`, executing it on first use.
    pub fn subplan_value(&self, i: usize) -> Result<Value> {
        if let Some(v) = &self.subplan_cache.borrow()[i] {
            return Ok(v.clone());
        }
        let plan = &self.root.subplans[i];
        let rows = execute(plan, self)?;
        let value = match rows.len() {
            0 => Value::Null,
            1 => rows
                .into_iter()
                .next()
                .expect("len checked")
                .into_iter()
                .next()
                .ok_or_else(|| SqlError::exec("scalar subquery returned zero columns"))?,
            n => return Err(SqlError::exec(format!("scalar subquery returned {n} rows"))),
        };
        self.subplan_cache.borrow_mut()[i] = Some(value.clone());
        Ok(value)
    }

    pub(crate) fn cte_rows(&self, i: usize) -> Result<Rc<Vec<Row>>> {
        self.cte_results.borrow()[i]
            .clone()
            .ok_or_else(|| SqlError::exec("CTE referenced before materialization"))
    }

    /// Install CTE `i`'s materialized rows (the columnar driver fills these
    /// the same way [`execute_root`] does).
    pub(crate) fn store_cte_rows(&self, i: usize, rows: Vec<Row>) {
        self.cte_results.borrow_mut()[i] = Some(Rc::new(rows));
    }

    /// True when per-node profiling is armed for this execution.
    pub(crate) fn profiling(&self) -> bool {
        self.profiles.is_some()
    }

    /// Record one execution of the node at `key` with batch-aware counters
    /// (the columnar executor's profiling hook); no-op unless profiling is
    /// armed.
    pub(crate) fn record_node_profile(
        &self,
        key: usize,
        rows: u64,
        batches: u64,
        elapsed: std::time::Duration,
    ) {
        if let Some(profiles) = &self.profiles {
            profiles
                .borrow_mut()
                .record_batched(key, rows, batches, elapsed);
        }
    }
}

/// Execute a fully bound query: materialize its CTEs in order, then run the
/// body. Returns rows; the caller attaches schema names.
pub fn execute_root(ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    for (i, cte) in ctx.root.ctes.iter().enumerate() {
        let rows = execute(&cte.plan, ctx)?;
        {
            let mut stats = ctx.stats.borrow_mut();
            if cte.shared {
                stats.shared_scans += 1;
            } else {
                stats.ctes_materialized += 1;
            }
            stats.pages_written += ctx.profile.pages_for(rows.len());
        }
        // Materialization writes temp pages (PostgreSQL spills CTE results).
        ctx.profile.charge_io(rows.len());
        ctx.cte_results.borrow_mut()[i] = Some(Rc::new(rows));
    }
    execute(&ctx.root.body, ctx)
}

/// Convenience wrapper producing a [`Relation`] with the given schema.
pub fn execute_to_relation(
    ctx: &ExecContext<'_>,
    columns: Vec<String>,
    types: Vec<etypes::DataType>,
) -> Result<Relation> {
    let rows = execute_root(ctx)?;
    Relation::new(columns, types, rows)
}

/// Execute one plan node to rows.
pub fn execute(plan: &PlanNode, ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    let profile_timer = ctx.profiles.as_ref().map(|_| std::time::Instant::now());
    let rows = match plan {
        PlanNode::Scan {
            source, projection, ..
        } => exec_scan(source, projection, ctx)?,
        PlanNode::Filter { input, predicate } => {
            let rows = execute(input, ctx)?;
            let mut out = Vec::with_capacity(rows.len() / 2 + 1);
            for row in rows {
                if truthy(&eval(predicate, &row, ctx)?) {
                    out.push(row);
                }
            }
            out
        }
        PlanNode::Project { input, exprs, .. } => {
            let rows = execute(input, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut new_row = Vec::with_capacity(exprs.len());
                for e in exprs {
                    new_row.push(eval(e, &row, ctx)?);
                }
                out.push(new_row);
            }
            out
        }
        PlanNode::Join {
            left,
            right,
            kind,
            equi,
            residual,
            ..
        } => exec_join(left, right, *kind, equi, residual.as_ref(), ctx)?,
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
            ..
        } => exec_aggregate(input, group_exprs, aggs, ctx)?,
        PlanNode::Sort { input, keys } => {
            let mut rows = execute(input, ctx)?;
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for row in rows.drain(..) {
                let mut kv = Vec::with_capacity(keys.len());
                for (e, _) in keys {
                    kv.push(eval(e, &row, ctx)?);
                }
                keyed.push((kv, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = null_last_cmp(&ka[i], &kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            keyed.into_iter().map(|(_, r)| r).collect()
        }
        PlanNode::Limit { input, n } => {
            let mut rows = execute(input, ctx)?;
            rows.truncate(*n as usize);
            rows
        }
        PlanNode::Distinct { input } => {
            let rows = execute(input, ctx)?;
            let mut seen = std::collections::HashSet::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            out
        }
        PlanNode::WindowRowNumber { input, keys, .. } => {
            let rows = execute(input, ctx)?;
            let mut keyed: Vec<(usize, Vec<Value>)> = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                let mut kv = Vec::with_capacity(keys.len());
                for (e, _) in keys {
                    kv.push(eval(e, row, ctx)?);
                }
                keyed.push((i, kv));
            }
            keyed.sort_by(|(ia, ka), (ib, kb)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = null_last_cmp(&ka[i], &kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                ia.cmp(ib)
            });
            let mut ranks = vec![0i64; rows.len()];
            for (rank, (orig, _)) in keyed.iter().enumerate() {
                ranks[*orig] = rank as i64 + 1;
            }
            rows.into_iter()
                .zip(ranks)
                .map(|(mut row, rank)| {
                    row.push(Value::Int(rank));
                    row
                })
                .collect()
        }
        PlanNode::Unnest { input, column, .. } => {
            let rows = execute(input, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                match &row[*column] {
                    Value::Array(items) => {
                        for item in items {
                            let mut r = row.clone();
                            r[*column] = item.clone();
                            out.push(r);
                        }
                    }
                    Value::Null => {}
                    scalar => {
                        let mut r = row.clone();
                        r[*column] = scalar.clone();
                        out.push(r);
                    }
                }
            }
            out
        }
        PlanNode::Values { rows, .. } => rows.clone(),
    };
    ctx.stats.borrow_mut().rows_processed += rows.len() as u64;
    ctx.profile.charge_rows(rows.len());
    ctx.tick(rows.len())?;
    if let (Some(profiles), Some(t)) = (ctx.profiles.as_ref(), profile_timer) {
        profiles.borrow_mut().record(
            plan as *const PlanNode as usize,
            rows.len() as u64,
            t.elapsed(),
        );
    }
    Ok(rows)
}

fn exec_scan(source: &ScanSource, projection: &[usize], ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    let project = |rows: &[Row]| -> Vec<Row> {
        rows.iter()
            .enumerate()
            .map(|(rid, row)| {
                projection
                    .iter()
                    .map(|&c| {
                        if c == CTID_SENTINEL {
                            Value::Int(rid as i64)
                        } else {
                            row[c].clone()
                        }
                    })
                    .collect()
            })
            .collect()
    };
    match source {
        ScanSource::Table(name) => {
            let table = ctx
                .catalog
                .table(name)
                .ok_or_else(|| SqlError::exec(format!("table '{name}' disappeared")))?;
            ctx.stats.borrow_mut().pages_read += ctx.profile.pages_for(table.data.rows.len());
            ctx.profile.charge_io(table.data.rows.len());
            Ok(project(&table.data.rows))
        }
        ScanSource::MaterializedView(name) => {
            let view = ctx
                .catalog
                .view(name)
                .ok_or_else(|| SqlError::exec(format!("view '{name}' disappeared")))?;
            let data = view
                .materialized
                .as_ref()
                .ok_or_else(|| SqlError::exec(format!("view '{name}' is not materialized")))?;
            ctx.stats.borrow_mut().pages_read += ctx.profile.pages_for(data.rows.len());
            ctx.profile.charge_io(data.rows.len());
            Ok(project(&data.rows))
        }
        ScanSource::Cte(i) => {
            let rows = ctx.cte_rows(*i)?;
            ctx.stats.borrow_mut().pages_read += ctx.profile.pages_for(rows.len());
            ctx.profile.charge_io(rows.len());
            Ok(project(&rows))
        }
    }
}

/// PostgreSQL default ordering: NULLs sort as the largest value.
pub(crate) fn null_last_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.cmp(b),
    }
}

// ---- join -------------------------------------------------------------------

type KeyOpt = Option<Vec<Value>>;

fn join_key(exprs: &[(&BExpr, bool)], row: &Row, ctx: &ExecContext<'_>) -> Result<KeyOpt> {
    let mut key = Vec::with_capacity(exprs.len());
    for (e, null_safe) in exprs {
        let v = eval(e, row, ctx)?;
        if v.is_null() && !null_safe {
            return Ok(None);
        }
        key.push(v);
    }
    Ok(Some(key))
}

fn exec_join(
    left: &PlanNode,
    right: &PlanNode,
    kind: JoinKind,
    equi: &[crate::plan::EquiKey],
    residual: Option<&BExpr>,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    let lrows = execute(left, ctx)?;
    let rrows = execute(right, ctx)?;
    let lwidth = left.schema().len();
    let rwidth = right.schema().len();

    // Pure cross product (with optional residual filter).
    if kind == JoinKind::Cross || (equi.is_empty() && kind == JoinKind::Inner) {
        let mut out = Vec::new();
        for l in &lrows {
            // The cross product can dwarf its inputs; charge the budget per
            // produced pair, not per operator output.
            ctx.tick(rrows.len())?;
            for r in &rrows {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                if let Some(res) = residual {
                    if !truthy(&eval(res, &row, ctx)?) {
                        continue;
                    }
                }
                out.push(row);
            }
        }
        return Ok(out);
    }
    if equi.is_empty() {
        return Err(SqlError::exec(
            "outer join without equi-join condition is unsupported",
        ));
    }

    let lexprs: Vec<(&BExpr, bool)> = equi.iter().map(|k| (&k.left, k.null_safe)).collect();
    let rexprs: Vec<(&BExpr, bool)> = equi.iter().map(|k| (&k.right, k.null_safe)).collect();

    // Build on right, probe with left.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rrows.len());
    let mut rkeys: Vec<KeyOpt> = Vec::with_capacity(rrows.len());
    for (j, r) in rrows.iter().enumerate() {
        let key = join_key(&rexprs, r, ctx)?;
        if let Some(k) = &key {
            table.entry(k.clone()).or_default().push(j);
        }
        rkeys.push(key);
    }

    let mut out = Vec::new();
    let mut right_matched = vec![false; rrows.len()];
    for l in &lrows {
        ctx.tick(1)?;
        let key = join_key(&lexprs, l, ctx)?;
        let matches = key.as_ref().and_then(|k| table.get(k));
        let mut any = false;
        if let Some(matches) = matches {
            for &j in matches {
                let mut row = l.clone();
                row.extend(rrows[j].iter().cloned());
                if let Some(res) = residual {
                    if !truthy(&eval(res, &row, ctx)?) {
                        continue;
                    }
                }
                any = true;
                right_matched[j] = true;
                out.push(row);
            }
        }
        if !any && matches!(kind, JoinKind::Left | JoinKind::Full) {
            let mut row = l.clone();
            row.extend(std::iter::repeat_n(Value::Null, rwidth));
            out.push(row);
        }
    }
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (j, matched) in right_matched.iter().enumerate() {
            if !matched {
                let mut row: Row = std::iter::repeat_n(Value::Null, lwidth).collect();
                row.extend(rrows[j].iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(out)
}

// ---- aggregation --------------------------------------------------------------

/// One aggregate accumulator; shared with the columnar executor so both
/// engines produce identical aggregate results.
pub(crate) enum Acc {
    CountStar(i64),
    Count(i64),
    CountDistinct(std::collections::HashSet<Value>),
    Sum(Option<Value>),
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Stddev { sum: f64, sumsq: f64, n: u64 },
    Median(Vec<f64>),
    ArrayAgg(Vec<Value>),
}

impl Acc {
    pub(crate) fn new(call: &AggCall) -> Acc {
        match &call.func {
            AggFunc::CountStar => Acc::CountStar(0),
            AggFunc::Count { distinct: true } => {
                Acc::CountDistinct(std::collections::HashSet::new())
            }
            AggFunc::Count { distinct: false } => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::StddevPop => Acc::Stddev {
                sum: 0.0,
                sumsq: 0.0,
                n: 0,
            },
            AggFunc::Median => Acc::Median(Vec::new()),
            AggFunc::ArrayAgg => Acc::ArrayAgg(Vec::new()),
        }
    }

    pub(crate) fn update(&mut self, value: Option<Value>) -> Result<()> {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count(n) => {
                if matches!(&value, Some(v) if !v.is_null()) {
                    *n += 1;
                }
            }
            Acc::CountDistinct(set) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        set.insert(v);
                    }
                }
            }
            Acc::Sum(acc) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *acc = Some(match acc.take() {
                            None => v,
                            Some(Value::Int(a)) => match v {
                                Value::Int(b) => Value::Int(a + b),
                                other => Value::Float(a as f64 + other.as_f64()?),
                            },
                            Some(cur) => Value::Float(cur.as_f64()? + v.as_f64()?),
                        });
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *sum += v.as_f64()?;
                        *n += 1;
                    }
                }
            }
            Acc::Min(acc) => {
                if let Some(v) = value {
                    if !v.is_null() && acc.as_ref().is_none_or(|cur| v < *cur) {
                        *acc = Some(v);
                    }
                }
            }
            Acc::Max(acc) => {
                if let Some(v) = value {
                    if !v.is_null() && acc.as_ref().is_none_or(|cur| v > *cur) {
                        *acc = Some(v);
                    }
                }
            }
            Acc::Stddev { sum, sumsq, n } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let f = v.as_f64()?;
                        *sum += f;
                        *sumsq += f * f;
                        *n += 1;
                    }
                }
            }
            Acc::Median(values) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        values.push(v.as_f64()?);
                    }
                }
            }
            Acc::ArrayAgg(values) => {
                if let Some(v) = value {
                    values.push(v);
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::CountStar(n) | Acc::Count(n) => Value::Int(n),
            Acc::CountDistinct(set) => Value::Int(set.len() as i64),
            Acc::Sum(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Stddev { sum, sumsq, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    let nf = n as f64;
                    let var = (sumsq / nf - (sum / nf) * (sum / nf)).max(0.0);
                    Value::Float(var.sqrt())
                }
            }
            Acc::Median(mut values) => {
                if values.is_empty() {
                    Value::Null
                } else {
                    values.sort_by(f64::total_cmp);
                    let mid = values.len() / 2;
                    if values.len() % 2 == 1 {
                        Value::Float(values[mid])
                    } else {
                        Value::Float((values[mid - 1] + values[mid]) / 2.0)
                    }
                }
            }
            Acc::ArrayAgg(values) => {
                if values.is_empty() {
                    Value::Null
                } else {
                    Value::Array(values)
                }
            }
        }
    }
}

fn exec_aggregate(
    input: &PlanNode,
    group_exprs: &[BExpr],
    aggs: &[AggCall],
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    let rows = execute(input, ctx)?;
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();

    for row in &rows {
        let mut key = Vec::with_capacity(group_exprs.len());
        for g in group_exprs {
            key.push(eval(g, row, ctx)?);
        }
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(Acc::new).collect())
            }
        };
        for (acc, call) in accs.iter_mut().zip(aggs) {
            let v = match &call.arg {
                Some(e) => Some(eval(e, row, ctx)?),
                None => None,
            };
            acc.update(v)?;
        }
    }

    // Global aggregate over empty input still yields one row.
    if groups.is_empty() && group_exprs.is_empty() {
        let accs: Vec<Acc> = aggs.iter().map(Acc::new).collect();
        let row: Row = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![row]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded in order");
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        out.push(row);
    }
    Ok(out)
}
