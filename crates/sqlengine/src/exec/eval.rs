//! Bound-expression evaluation with SQL three-valued logic.

use super::ExecContext;
use crate::ast::{BinaryOp, UnaryOp};
use crate::error::{Result, SqlError};
use crate::plan::BExpr;
use etypes::Value;

/// Evaluate an expression against one row.
pub fn eval(expr: &BExpr, row: &[Value], ctx: &ExecContext<'_>) -> Result<Value> {
    Ok(match expr {
        BExpr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| SqlError::exec(format!("column index {i} out of range")))?,
        BExpr::Lit(v) => v.clone(),
        // Substituted away by `PlanRoot::bind_params` before execution.
        BExpr::Param(n) => {
            return Err(SqlError::exec(format!(
                "unbound parameter ${n} reached the executor"
            )))
        }
        BExpr::Binary { op, left, right } => {
            // Short-circuitable three-valued AND/OR.
            match op {
                BinaryOp::And => {
                    let l = eval(left, row, ctx)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, row, ctx)?;
                    return Ok(three_valued_and(&l, &r));
                }
                BinaryOp::Or => {
                    let l = eval(left, row, ctx)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, row, ctx)?;
                    return Ok(three_valued_or(&l, &r));
                }
                _ => {}
            }
            let l = eval(left, row, ctx)?;
            let r = eval(right, row, ctx)?;
            binary(*op, &l, &r)?
        }
        BExpr::Unary { op, operand } => {
            let v = eval(operand, row, ctx)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(-i),
                    other => Value::Float(-other.as_f64()?),
                },
                UnaryOp::Not => match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => return Err(SqlError::exec(format!("NOT of non-boolean {other}"))),
                },
            }
        }
        BExpr::Func { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, row, ctx)?);
            }
            func.eval(&vals)?
        }
        BExpr::Case { whens, else_expr } => {
            for (cond, value) in whens {
                if truthy(&eval(cond, row, ctx)?) {
                    return eval(value, row, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, row, ctx)?,
                None => Value::Null,
            }
        }
        BExpr::Cast { expr, ty } => eval(expr, row, ctx)?.cast(ty)?,
        BExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            let mut found = false;
            for item in list {
                let c = eval(item, row, ctx)?;
                if c.is_null() {
                    saw_null = true;
                } else if c == v {
                    found = true;
                    break;
                }
            }
            if found {
                Value::Bool(!negated)
            } else if saw_null {
                Value::Null
            } else {
                Value::Bool(*negated)
            }
        }
        BExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, ctx)?;
            Value::Bool(v.is_null() != *negated)
        }
        BExpr::Subplan(i) => ctx.subplan_value(*i)?,
    })
}

/// SQL WHERE semantics: only TRUE keeps the row.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

pub(crate) fn three_valued_and(l: &Value, r: &Value) -> Value {
    match (l, r) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

pub(crate) fn three_valued_or(l: &Value, r: &Value) -> Value {
    match (l, r) {
        (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// Constant-folding entry for the optimizer: evaluate a binary operator over
/// two literals, or `None` when evaluation must be deferred to runtime
/// (e.g. division by zero should raise there, not at plan time).
pub fn fold_binary_const(op: BinaryOp, l: &Value, r: &Value) -> Option<Value> {
    match op {
        BinaryOp::And => Some(three_valued_and(l, r)),
        BinaryOp::Or => Some(three_valued_or(l, r)),
        _ => binary(op, l, r).ok(),
    }
}

pub(crate) fn binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    // Concat has PG-ish NULL behaviour for arrays (NULL || a = a).
    if op == Concat {
        return concat(l, r);
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    Ok(match op {
        Add => {
            if let (Value::Text(a), Value::Text(b)) = (l, r) {
                Value::Text(format!("{a}{b}"))
            } else {
                arith(l, r, |a, b| a + b)?
            }
        }
        Sub => arith(l, r, |a, b| a - b)?,
        Mul => arith(l, r, |a, b| a * b)?,
        Div => {
            // PostgreSQL integer division truncates; the paper's generated
            // SQL always multiplies by 1.0 first when it needs real division.
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => {
                    if *b == 0 {
                        return Err(SqlError::exec("division by zero"));
                    }
                    Value::Int(a / b)
                }
                _ => {
                    let d = r.as_f64()?;
                    Value::Float(l.as_f64()? / d)
                }
            }
        }
        Mod => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    return Err(SqlError::exec("division by zero"));
                }
                Value::Int(a % b)
            }
            _ => Value::Float(l.as_f64()? % r.as_f64()?),
        },
        Eq => Value::Bool(cmp_eq(l, r)?),
        NotEq => Value::Bool(!cmp_eq(l, r)?),
        Lt => Value::Bool(cmp(l, r)? == std::cmp::Ordering::Less),
        Gt => Value::Bool(cmp(l, r)? == std::cmp::Ordering::Greater),
        Le => Value::Bool(cmp(l, r)? != std::cmp::Ordering::Greater),
        Ge => Value::Bool(cmp(l, r)? != std::cmp::Ordering::Less),
        And | Or | Concat => unreachable!("handled above"),
    })
}

fn concat(l: &Value, r: &Value) -> Result<Value> {
    Ok(match (l, r) {
        (Value::Null, Value::Array(_)) => r.clone(),
        (Value::Array(_), Value::Null) => l.clone(),
        (Value::Array(a), Value::Array(b)) => {
            let mut out = Vec::with_capacity(a.len() + b.len());
            out.extend(a.iter().cloned());
            out.extend(b.iter().cloned());
            Value::Array(out)
        }
        (Value::Array(a), scalar) => {
            let mut out = a.clone();
            out.push(scalar.clone());
            Value::Array(out)
        }
        (scalar, Value::Array(b)) => {
            let mut out = Vec::with_capacity(b.len() + 1);
            out.push(scalar.clone());
            out.extend(b.iter().cloned());
            Value::Array(out)
        }
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (a, b) => Value::Text(format!("{a}{b}")),
    })
}

fn arith(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        let result = f(*a as f64, *b as f64);
        if result.fract() == 0.0 && result.abs() < 9.0e15 {
            return Ok(Value::Int(result as i64));
        }
        return Ok(Value::Float(result));
    }
    Ok(Value::Float(f(l.as_f64()?, r.as_f64()?)))
}

fn cmp_eq(l: &Value, r: &Value) -> Result<bool> {
    Ok(cmp(l, r)? == std::cmp::Ordering::Equal)
}

fn cmp(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    // Bool=Int comparisons happen for label columns generated as booleans in
    // SQL but 0/1 in data; coerce bools.
    let coerce = |v: &Value| -> Value {
        match v {
            Value::Bool(b) => Value::Int(*b as i64),
            other => other.clone(),
        }
    };
    match (l, r) {
        (Value::Bool(_), Value::Int(_)) | (Value::Int(_), Value::Bool(_)) => {
            Ok(coerce(l).cmp(&coerce(r)))
        }
        _ => {
            // Reject comparing wildly different types (text vs int) to catch
            // binder bugs, except numeric cross-type which Value::cmp handles.
            Ok(l.cmp(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::plan::{PlanNode, PlanRoot, Schema};
    use crate::profile::EngineProfile;

    fn ctx_fixture() -> (Catalog, EngineProfile, PlanRoot) {
        (
            Catalog::new(),
            EngineProfile::in_memory(),
            PlanRoot {
                ctes: vec![],
                subplans: vec![],
                body: PlanNode::Values {
                    rows: vec![],
                    schema: Schema::default(),
                },
            },
        )
    }

    fn eval1(e: &BExpr) -> Value {
        let (cat, prof, root) = ctx_fixture();
        let ctx = ExecContext::new(&cat, &prof, &root);
        // Leak-free: ctx borrows locals; evaluate inline.
        eval(e, &[], &ctx).unwrap()
    }

    fn lit(v: impl Into<Value>) -> BExpr {
        BExpr::Lit(v.into())
    }

    fn bin(op: BinaryOp, l: BExpr, r: BExpr) -> BExpr {
        BExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn null_comparison_is_null() {
        assert_eq!(
            eval1(&bin(BinaryOp::Gt, lit(Value::Null), lit(1))),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(
            eval1(&bin(BinaryOp::And, lit(false), lit(Value::Null))),
            Value::Bool(false)
        );
        assert_eq!(
            eval1(&bin(BinaryOp::And, lit(true), lit(Value::Null))),
            Value::Null
        );
        assert_eq!(
            eval1(&bin(BinaryOp::Or, lit(Value::Null), lit(true))),
            Value::Bool(true)
        );
        assert_eq!(
            eval1(&bin(BinaryOp::Or, lit(false), lit(Value::Null))),
            Value::Null
        );
    }

    #[test]
    fn integer_division_truncates() {
        assert_eq!(eval1(&bin(BinaryOp::Div, lit(7), lit(2))), Value::Int(3));
        assert_eq!(
            eval1(&bin(BinaryOp::Div, lit(7.0), lit(2))),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let (cat, prof, root) = ctx_fixture();
        let ctx = ExecContext::new(&cat, &prof, &root);
        assert!(eval(&bin(BinaryOp::Div, lit(1), lit(0)), &[], &ctx).is_err());
    }

    #[test]
    fn in_list_null_semantics() {
        let e = BExpr::InList {
            expr: Box::new(lit(5)),
            list: vec![lit(1), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(eval1(&e), Value::Null);
        let e2 = BExpr::InList {
            expr: Box::new(lit(1)),
            list: vec![lit(1), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(eval1(&e2), Value::Bool(true));
    }

    #[test]
    fn array_concat() {
        let arr = |vals: Vec<i64>| lit(Value::Array(vals.into_iter().map(Value::Int).collect()));
        assert_eq!(
            eval1(&bin(BinaryOp::Concat, arr(vec![0, 0]), arr(vec![1]))),
            Value::Array(vec![Value::Int(0), Value::Int(0), Value::Int(1)])
        );
    }

    #[test]
    fn case_returns_else_or_null() {
        let e = BExpr::Case {
            whens: vec![(lit(false), lit(1))],
            else_expr: None,
        };
        assert_eq!(eval1(&e), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        let e = BExpr::IsNull {
            expr: Box::new(lit(Value::Null)),
            negated: false,
        };
        assert_eq!(eval1(&e), Value::Bool(true));
    }

    #[test]
    fn bool_int_comparison_coerces() {
        assert_eq!(
            eval1(&bin(BinaryOp::Eq, lit(true), lit(1))),
            Value::Bool(true)
        );
    }
}
