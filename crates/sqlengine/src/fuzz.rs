//! Seeded SQL workload generation for differential tests.
//!
//! The row-vs-columnar differential fuzz (`tests/exec_diff.rs`) and the
//! sharded-routing differential test in `elephant-server` must run the
//! *same* seeded corpus, so the generator lives here: NULL-heavy seed data
//! for two tables (`t1(a int, b int, c float, d text)` and
//! `t2(k int, v int, w text)`) plus random SELECTs over filters,
//! projections, joins, aggregates, DISTINCT, ORDER BY, and LIMIT. All
//! output is plain SQL text, so it can be executed embedded or shipped over
//! the wire unchanged.

use etypes::Prng;

/// Rows seeded into `t1`.
pub const ROWS_T1: usize = 240;
/// Rows seeded into `t2`.
pub const ROWS_T2: usize = 90;

/// The DDL + INSERT statements that build the corpus tables. Execute them
/// in order with the same [`Prng`] that will generate the queries.
pub fn seed_statements(rng: &mut Prng) -> Vec<String> {
    let mut stmts = vec![
        "CREATE TABLE t1 (a int, b int, c float, d text)".to_string(),
        "CREATE TABLE t2 (k int, v int, w text)".to_string(),
    ];
    let mut inserts = String::from("INSERT INTO t1 VALUES ");
    for i in 0..ROWS_T1 {
        if i > 0 {
            inserts.push_str(", ");
        }
        let a = if rng.chance(0.25) {
            "NULL".to_string()
        } else {
            rng.range_i64(-8, 20).to_string()
        };
        let b = if rng.chance(0.3) {
            "NULL".to_string()
        } else {
            rng.range_i64(0, 6).to_string()
        };
        let c = if rng.chance(0.25) {
            "NULL".to_string()
        } else {
            format!("{:.3}", rng.range_f64(-4.0, 9.0))
        };
        let d = if rng.chance(0.3) {
            "NULL".to_string()
        } else {
            format!("'s{}'", rng.below(5))
        };
        inserts.push_str(&format!("({a}, {b}, {c}, {d})"));
    }
    stmts.push(inserts);
    let mut inserts = String::from("INSERT INTO t2 VALUES ");
    for j in 0..ROWS_T2 {
        if j > 0 {
            inserts.push_str(", ");
        }
        let k = if rng.chance(0.2) {
            "NULL".to_string()
        } else {
            rng.range_i64(-8, 20).to_string()
        };
        let v = if rng.chance(0.3) {
            "NULL".to_string()
        } else {
            rng.range_i64(-5, 5).to_string()
        };
        let w = if rng.chance(0.25) {
            "NULL".to_string()
        } else {
            format!("'w{}'", rng.below(4))
        };
        inserts.push_str(&format!("({k}, {v}, {w})"));
    }
    stmts.push(inserts);
    stmts
}

/// A random numeric expression over `t1` columns and integer literals.
pub fn gen_num(rng: &mut Prng, depth: usize) -> String {
    if depth == 0 || rng.chance(0.4) {
        return match rng.below(3) {
            0 => "a".to_string(),
            1 => "b".to_string(),
            _ => rng.range_i64(-5, 10).to_string(),
        };
    }
    let l = gen_num(rng, depth - 1);
    let r = gen_num(rng, depth - 1);
    match rng.below(4) {
        0 => format!("({l} + {r})"),
        1 => format!("({l} - {r})"),
        2 => format!("({l} * {r})"),
        _ => format!("(CASE WHEN {} THEN {l} ELSE {r} END)", gen_pred(rng, 1)),
    }
}

/// A random predicate over `t1` columns (NULL-aware operators included).
pub fn gen_pred(rng: &mut Prng, depth: usize) -> String {
    if depth == 0 || rng.chance(0.35) {
        return match rng.below(6) {
            0 => format!("{} > {}", gen_num(rng, 1), gen_num(rng, 1)),
            1 => format!("{} <= {}", gen_num(rng, 1), gen_num(rng, 1)),
            2 => format!("{} = {}", gen_num(rng, 1), gen_num(rng, 1)),
            3 => format!("c < {:.2}", rng.range_f64(-2.0, 6.0)),
            4 => format!("d = 's{}'", rng.below(5)),
            _ => match rng.below(3) {
                0 => "a IS NULL".to_string(),
                1 => "c IS NOT NULL".to_string(),
                _ => format!("b IN ({}, NULL, {})", rng.below(4), rng.below(6)),
            },
        };
    }
    let l = gen_pred(rng, depth - 1);
    let r = gen_pred(rng, depth - 1);
    match rng.below(3) {
        0 => format!("({l} AND {r})"),
        1 => format!("({l} OR {r})"),
        _ => format!("NOT ({l})"),
    }
}

/// One random query over the corpus tables (six shapes: filter+project,
/// four-way joins, grouped and global aggregates, DISTINCT+ORDER+LIMIT,
/// and an aggregated CTE join).
pub fn gen_query(rng: &mut Prng) -> String {
    match rng.below(6) {
        // Filter + project over t1.
        0 => format!(
            "SELECT {} AS x, {} AS y, d FROM t1 WHERE {}",
            gen_num(rng, 2),
            gen_num(rng, 2),
            gen_pred(rng, 2),
        ),
        // Join (equi, all supported kinds) with residual-ish predicates.
        1 => {
            let kind = ["INNER", "LEFT", "RIGHT", "FULL"][rng.below(4)];
            format!(
                "SELECT t1.a, t1.d, t2.v, t2.w FROM t1 {kind} JOIN t2 ON t1.a = t2.k WHERE {}",
                gen_pred(rng, 1),
            )
        }
        // Grouped aggregate.
        2 => format!(
            "SELECT b, count(*) AS n, sum(a) AS s, avg(c) AS m, min(a) AS lo, max(c) AS hi \
             FROM t1 WHERE {} GROUP BY b",
            gen_pred(rng, 2),
        ),
        // Global aggregate (possibly over an empty filter result).
        3 => format!(
            "SELECT count(*) AS n, sum({}) AS s FROM t1 WHERE {}",
            gen_num(rng, 2),
            gen_pred(rng, 2),
        ),
        // DISTINCT + ORDER BY + LIMIT.
        4 => format!(
            "SELECT DISTINCT b, d FROM t1 WHERE {} ORDER BY b, d LIMIT {}",
            gen_pred(rng, 2),
            rng.below(8) + 1,
        ),
        // CTE over a join, aggregated.
        _ => "WITH j AS (SELECT t1.b AS b, t2.v AS v FROM t1 INNER JOIN t2 ON t1.a = t2.k) \
              SELECT b, count(*) AS n, sum(v) AS s FROM j GROUP BY b ORDER BY b LIMIT 10"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        assert_eq!(seed_statements(&mut a), seed_statements(&mut b));
        for _ in 0..32 {
            assert_eq!(gen_query(&mut a), gen_query(&mut b));
        }
    }

    #[test]
    fn generated_queries_parse() {
        let mut rng = Prng::new(7);
        let _ = seed_statements(&mut rng);
        for _ in 0..64 {
            let sql = gen_query(&mut rng);
            crate::deps::parse_sql(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }
}
