//! Scalar function implementations.

use crate::error::{Result, SqlError};
use etypes::{DataType, Value};

/// Resolved scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// First non-NULL argument (used by SimpleImputer, paper §5.2.1).
    Coalesce,
    /// Smallest argument (KBinsDiscretizer edge handling, §5.2.4).
    Least,
    /// Largest argument.
    Greatest,
    /// `floor(x)`.
    Floor,
    /// `ceil(x)`.
    Ceil,
    /// `abs(x)`.
    Abs,
    /// `round(x[, digits])`.
    Round,
    /// `sqrt(x)`.
    Sqrt,
    /// `ln(x)`.
    Ln,
    /// `exp(x)`.
    Exp,
    /// `lower(s)`.
    Lower,
    /// `upper(s)`.
    Upper,
    /// String length / array cardinality.
    Length,
    /// `replace(s, from, to)` — every occurrence.
    Replace,
    /// `regexp_replace(s, pattern, replacement)` — anchored-literal subset
    /// (see [`regexp_replace`]).
    RegexpReplace,
    /// `array_fill(value, len)` — constant array (one-hot encoding, §5.2.2).
    ArrayFill,
    /// `nullif(a, b)`.
    NullIf,
    /// `trunc(x)`.
    Trunc,
}

impl ScalarFunc {
    /// Resolve a lower-cased SQL function name.
    pub fn resolve(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "coalesce" => ScalarFunc::Coalesce,
            "least" => ScalarFunc::Least,
            "greatest" => ScalarFunc::Greatest,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "abs" => ScalarFunc::Abs,
            "round" => ScalarFunc::Round,
            "sqrt" => ScalarFunc::Sqrt,
            "ln" => ScalarFunc::Ln,
            "exp" => ScalarFunc::Exp,
            "lower" => ScalarFunc::Lower,
            "upper" => ScalarFunc::Upper,
            "length" | "char_length" | "cardinality" | "array_length" => ScalarFunc::Length,
            "replace" => ScalarFunc::Replace,
            "regexp_replace" => ScalarFunc::RegexpReplace,
            "array_fill" => ScalarFunc::ArrayFill,
            "nullif" => ScalarFunc::NullIf,
            "trunc" => ScalarFunc::Trunc,
            _ => return None,
        })
    }

    /// Best-effort static result type given argument types.
    pub fn return_type(&self, args: &[DataType]) -> DataType {
        match self {
            ScalarFunc::Coalesce
            | ScalarFunc::Least
            | ScalarFunc::Greatest
            | ScalarFunc::NullIf => args.first().cloned().unwrap_or(DataType::Text),
            ScalarFunc::Floor | ScalarFunc::Ceil | ScalarFunc::Trunc => DataType::Float,
            ScalarFunc::Abs | ScalarFunc::Round => args.first().cloned().unwrap_or(DataType::Float),
            ScalarFunc::Sqrt | ScalarFunc::Ln | ScalarFunc::Exp => DataType::Float,
            ScalarFunc::Lower
            | ScalarFunc::Upper
            | ScalarFunc::Replace
            | ScalarFunc::RegexpReplace => DataType::Text,
            ScalarFunc::Length => DataType::Int,
            ScalarFunc::ArrayFill => {
                DataType::Array(Box::new(args.first().cloned().unwrap_or(DataType::Int)))
            }
        }
    }

    /// Evaluate with already-evaluated arguments.
    pub fn eval(&self, args: &[Value]) -> Result<Value> {
        use ScalarFunc::*;
        match self {
            Coalesce => Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null)),
            Least => Ok(args
                .iter()
                .filter(|v| !v.is_null())
                .min()
                .cloned()
                .unwrap_or(Value::Null)),
            Greatest => Ok(args
                .iter()
                .filter(|v| !v.is_null())
                .max()
                .cloned()
                .unwrap_or(Value::Null)),
            Floor => unary_f64(args, f64::floor),
            Ceil => unary_f64(args, f64::ceil),
            Trunc => unary_f64(args, f64::trunc),
            Sqrt => unary_f64(args, f64::sqrt),
            Ln => unary_f64(args, f64::ln),
            Exp => unary_f64(args, f64::exp),
            Abs => match args.first() {
                Some(Value::Null) | None => Ok(Value::Null),
                Some(Value::Int(i)) => Ok(Value::Int(i.abs())),
                Some(v) => Ok(Value::Float(v.as_f64()?.abs())),
            },
            Round => match args.first() {
                Some(Value::Null) | None => Ok(Value::Null),
                Some(Value::Int(i)) => Ok(Value::Int(*i)),
                Some(v) => {
                    let digits = match args.get(1) {
                        Some(d) if !d.is_null() => d.as_i64()?,
                        _ => 0,
                    };
                    let m = 10f64.powi(digits as i32);
                    Ok(Value::Float((v.as_f64()? * m).round() / m))
                }
            },
            Lower => unary_text(args, |s| s.to_lowercase()),
            Upper => unary_text(args, |s| s.to_uppercase()),
            Length => match args.first() {
                Some(Value::Null) | None => Ok(Value::Null),
                Some(Value::Text(s)) => Ok(Value::Int(s.chars().count() as i64)),
                Some(Value::Array(a)) => Ok(Value::Int(a.len() as i64)),
                Some(v) => Err(SqlError::exec(format!("length() of {v}"))),
            },
            Replace => {
                let [s, from, to] = three(args)?;
                if s.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Text(
                    s.as_str()?.replace(from.as_str()?, to.as_str()?),
                ))
            }
            RegexpReplace => {
                let [s, pattern, replacement] = three(args)?;
                if s.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Text(regexp_replace(
                    s.as_str()?,
                    pattern.as_str()?,
                    replacement.as_str()?,
                )?))
            }
            ArrayFill => {
                let [value, len] = two(args)?;
                let n = len.as_i64()?.max(0) as usize;
                Ok(Value::Array(vec![value.clone(); n]))
            }
            NullIf => {
                let [a, b] = two(args)?;
                if a == b {
                    Ok(Value::Null)
                } else {
                    Ok(a.clone())
                }
            }
        }
    }
}

fn unary_f64(args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value> {
    match args.first() {
        Some(Value::Null) | None => Ok(Value::Null),
        Some(v) => Ok(Value::Float(f(v.as_f64()?))),
    }
}

fn unary_text(args: &[Value], f: impl Fn(&str) -> String) -> Result<Value> {
    match args.first() {
        Some(Value::Null) | None => Ok(Value::Null),
        Some(v) => Ok(Value::Text(f(v.as_str()?))),
    }
}

fn two(args: &[Value]) -> Result<[&Value; 2]> {
    match args {
        [a, b] => Ok([a, b]),
        _ => Err(SqlError::exec(format!(
            "expected 2 arguments, got {}",
            args.len()
        ))),
    }
}

fn three(args: &[Value]) -> Result<[&Value; 3]> {
    match args {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(SqlError::exec(format!(
            "expected 3 arguments, got {}",
            args.len()
        ))),
    }
}

/// The `regexp_replace` subset the paper's generated SQL needs (§5.1.7):
/// the pattern is a literal, optionally anchored with `^` and `$`, because
/// the translation of pandas `replace` always emits `^literal$` to force
/// whole-string matches. Other metacharacters are rejected rather than
/// silently mis-handled.
pub fn regexp_replace(s: &str, pattern: &str, replacement: &str) -> Result<String> {
    let anchored_start = pattern.starts_with('^');
    let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
    let body = &pattern[anchored_start as usize..pattern.len() - anchored_end as usize];
    let literal = unescape_regex_literal(body)?;
    Ok(match (anchored_start, anchored_end) {
        (true, true) => {
            if s == literal {
                replacement.to_string()
            } else {
                s.to_string()
            }
        }
        (true, false) => {
            if let Some(rest) = s.strip_prefix(&literal) {
                format!("{replacement}{rest}")
            } else {
                s.to_string()
            }
        }
        (false, true) => {
            if let Some(rest) = s.strip_suffix(&literal) {
                format!("{rest}{replacement}")
            } else {
                s.to_string()
            }
        }
        (false, false) => s.replacen(&literal, replacement, 1),
    })
}

fn unescape_regex_literal(body: &str) -> Result<String> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some(esc) => out.push(esc),
                None => return Err(SqlError::exec("trailing backslash in regex")),
            },
            '.' | '*' | '+' | '?' | '[' | ']' | '(' | ')' | '{' | '}' | '|' => {
                return Err(SqlError::exec(format!(
                    "regexp_replace supports literal patterns only (found {c:?})"
                )))
            }
            other => out.push(other),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_least_greatest() {
        assert_eq!(
            ScalarFunc::Coalesce
                .eval(&[Value::Null, Value::Int(2), Value::Int(3)])
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            ScalarFunc::Least
                .eval(&[Value::Int(4), Value::Int(2)])
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            ScalarFunc::Greatest
                .eval(&[Value::Int(4), Value::Null])
                .unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn regexp_replace_whole_string_anchor() {
        // The paper's Listing 12: '^Medium$' -> 'Low'.
        assert_eq!(regexp_replace("Medium", "^Medium$", "Low").unwrap(), "Low");
        assert_eq!(
            regexp_replace("MediumX", "^Medium$", "Low").unwrap(),
            "MediumX"
        );
    }

    #[test]
    fn regexp_replace_partial_anchors() {
        assert_eq!(regexp_replace("abc", "^a", "X").unwrap(), "Xbc");
        assert_eq!(regexp_replace("abc", "c$", "X").unwrap(), "abX");
        assert_eq!(regexp_replace("aba", "b", "X").unwrap(), "aXa");
    }

    #[test]
    fn regexp_replace_rejects_metacharacters() {
        assert!(regexp_replace("x", "a.*b", "y").is_err());
    }

    #[test]
    fn regexp_escape_sequences() {
        assert_eq!(regexp_replace("a.b", "^a\\.b$", "z").unwrap(), "z");
    }

    #[test]
    fn array_fill_and_length() {
        let arr = ScalarFunc::ArrayFill
            .eval(&[Value::Int(0), Value::Int(3)])
            .unwrap();
        assert_eq!(
            arr,
            Value::Array(vec![Value::Int(0), Value::Int(0), Value::Int(0)])
        );
        assert_eq!(ScalarFunc::Length.eval(&[arr]).unwrap(), Value::Int(3));
    }

    #[test]
    fn numeric_unaries_pass_null() {
        assert_eq!(ScalarFunc::Floor.eval(&[Value::Null]).unwrap(), Value::Null);
        assert_eq!(
            ScalarFunc::Floor.eval(&[Value::Float(2.9)]).unwrap(),
            Value::Float(2.0)
        );
    }

    #[test]
    fn round_with_digits() {
        assert_eq!(
            ScalarFunc::Round
                .eval(&[Value::Float(2.345), Value::Int(2)])
                .unwrap(),
            Value::Float(2.35)
        );
    }

    #[test]
    fn nullif_behaviour() {
        assert_eq!(
            ScalarFunc::NullIf
                .eval(&[Value::Int(1), Value::Int(1)])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            ScalarFunc::NullIf
                .eval(&[Value::Int(1), Value::Int(2)])
                .unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn resolve_names() {
        assert_eq!(ScalarFunc::resolve("coalesce"), Some(ScalarFunc::Coalesce));
        assert_eq!(ScalarFunc::resolve("no_such_fn"), None);
    }
}
