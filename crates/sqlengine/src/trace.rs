//! Engine-side tracing: per-phase latency histograms and per-operator
//! runtime profiles (`EXPLAIN ANALYZE`).
//!
//! Tracing is *always-on-cheap*: with tracing enabled (the default) each
//! engine call pays a couple of `Instant::now()` reads and histogram bucket
//! increments per phase — no allocation, no locks (the engine is
//! single-threaded). Operator profiling is heavier (one timestamp per plan
//! node) and therefore opt-in: it only runs under `EXPLAIN ANALYZE`,
//! [`crate::Engine::query_profiled`], or when slow-query capture is enabled.

use etypes::{Histogram, TraceContext};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The phases of one engine call, each with its own histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenizing SQL text.
    Lex,
    /// Token stream → AST.
    Parse,
    /// Name resolution and plan construction.
    Bind,
    /// Plan rewrites (pushdown, pruning).
    Optimize,
    /// Plan execution (the query hot path).
    Execute,
    /// Appending mutation records to the WAL (durable engines only).
    WalAppend,
    /// Time inside `fsync` while appending (durable engines only).
    Fsync,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 7] = [
        Phase::Lex,
        Phase::Parse,
        Phase::Bind,
        Phase::Optimize,
        Phase::Execute,
        Phase::WalAppend,
        Phase::Fsync,
    ];

    /// Stable lowercase name (used in `STATS` keys).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Bind => "bind",
            Phase::Optimize => "optimize",
            Phase::Execute => "execute",
            Phase::WalAppend => "wal_append",
            Phase::Fsync => "fsync",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Lex => 0,
            Phase::Parse => 1,
            Phase::Bind => 2,
            Phase::Optimize => 3,
            Phase::Execute => 4,
            Phase::WalAppend => 5,
            Phase::Fsync => 6,
        }
    }
}

/// Accumulated per-phase timing for one engine.
///
/// When a [`TraceContext`] is installed (the server sets one per served
/// command), each phase sample is additionally captured as a per-statement
/// `(Phase, µs)` pair so the executor can attach engine-phase spans to the
/// command's distributed span tree.
#[derive(Debug, Clone)]
pub struct EngineTrace {
    enabled: bool,
    phases: [Histogram; Phase::ALL.len()],
    ctx: Option<TraceContext>,
    statement_spans: Vec<(Phase, u64)>,
}

/// Cap on captured per-statement phase samples (a multi-statement script
/// records several samples per phase; the tree stays bounded).
const MAX_STATEMENT_SPANS: usize = 64;

impl Default for EngineTrace {
    fn default() -> Self {
        EngineTrace {
            enabled: true,
            phases: Default::default(),
            ctx: None,
            statement_spans: Vec::new(),
        }
    }
}

impl EngineTrace {
    /// True while phase spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn phase-span recording on or off (the overhead bench's baseline).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Start a phase timer; `None` when tracing is off, so the hot path
    /// pays only this branch.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record the elapsed time of a timer produced by [`EngineTrace::timer`].
    #[inline]
    pub fn record(&mut self, phase: Phase, timer: Option<Instant>) {
        if let Some(t) = timer {
            let us = t.elapsed().as_micros() as u64;
            self.phases[phase.index()].record_us(us);
            self.capture(phase, us);
        }
    }

    /// Record a raw duration (used when the duration is derived, e.g. the
    /// fsync share of a WAL append).
    #[inline]
    pub fn record_duration(&mut self, phase: Phase, d: Duration) {
        if self.enabled {
            let us = d.as_micros() as u64;
            self.phases[phase.index()].record_us(us);
            self.capture(phase, us);
        }
    }

    /// Record a raw microsecond sample.
    #[inline]
    pub fn record_us(&mut self, phase: Phase, us: u64) {
        if self.enabled {
            self.phases[phase.index()].record_us(us);
            self.capture(phase, us);
        }
    }

    #[inline]
    fn capture(&mut self, phase: Phase, us: u64) {
        if self.ctx.is_some() && self.statement_spans.len() < MAX_STATEMENT_SPANS {
            self.statement_spans.push((phase, us));
        }
    }

    /// Install (or clear) the correlation context for the next command.
    /// Installing a context resets the per-statement capture buffer.
    pub fn set_context(&mut self, ctx: Option<TraceContext>) {
        self.ctx = ctx;
        self.statement_spans.clear();
    }

    /// The currently installed correlation context.
    pub fn context(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Drain the phase samples captured since the context was installed.
    pub fn take_statement_spans(&mut self) -> Vec<(Phase, u64)> {
        std::mem::take(&mut self.statement_spans)
    }

    /// The histogram of one phase.
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()]
    }

    /// Drop all recorded samples (between benchmark rounds).
    pub fn reset(&mut self) {
        self.phases = Default::default();
    }

    /// Render the phase breakdown as `key value` lines (the `STATS`
    /// extension): `phase_<name>_{count,total_us,p50_us,p95_us}` for every
    /// phase that recorded at least one sample.
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        for phase in Phase::ALL {
            let h = self.phase(phase);
            if h.count() == 0 {
                continue;
            }
            let name = phase.name();
            let _ = writeln!(out, "phase_{name}_count {}", h.count());
            let _ = writeln!(out, "phase_{name}_total_us {}", h.total_us());
            let _ = writeln!(out, "phase_{name}_p50_us {}", h.percentile(0.5));
            let _ = writeln!(out, "phase_{name}_p95_us {}", h.percentile(0.95));
        }
        out.pop();
        out
    }
}

/// One operator's runtime profile inside a [`QueryProfile`], in the plan's
/// pre-order rendering order (CTEs, init-plans, then the body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Indentation depth in the rendered tree.
    pub depth: usize,
    /// The operator's `EXPLAIN` line text (e.g. `Scan Table t cols=2`).
    pub label: String,
    /// Rows consumed from direct inputs (sum of the children's `rows`).
    pub rows_in: u64,
    /// Rows produced (the executed cardinality).
    pub rows: u64,
    /// Columnar batches produced, when the operator ran vectorized;
    /// `None` for row-engine operators (including fallback subtrees).
    pub batches: Option<u64>,
    /// Inclusive wall-clock time (children included), microseconds.
    pub time_us: u64,
    /// False when the operator never ran (e.g. an unused init-plan).
    pub executed: bool,
}

/// The runtime profile of one executed query: the plan tree annotated with
/// per-operator cardinalities and inclusive timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// Operators in rendering order.
    pub ops: Vec<OpProfile>,
    /// End-to-end execution time in microseconds.
    pub total_us: u64,
    /// Rows in the final result.
    pub result_rows: u64,
}

impl QueryProfile {
    /// First operator whose label starts with `prefix` (test helper).
    pub fn find(&self, prefix: &str) -> Option<&OpProfile> {
        self.ops.iter().find(|op| op.label.starts_with(prefix))
    }

    /// Render as the `EXPLAIN ANALYZE` body: the plan tree with
    /// `(rows=N time=Nus)` per operator and a trailing execution summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let pad = "  ".repeat(op.depth);
            if !op.executed {
                let _ = writeln!(out, "{pad}{} (never executed)", op.label);
            } else if let Some(batches) = op.batches {
                let _ = writeln!(
                    out,
                    "{pad}{} (rows={} batches={} time={}us)",
                    op.label, op.rows, batches, op.time_us
                );
            } else {
                let _ = writeln!(
                    out,
                    "{pad}{} (rows={} time={}us)",
                    op.label, op.rows, op.time_us
                );
            }
        }
        let _ = write!(
            out,
            "Execution: rows={} time={}us",
            self.result_rows, self.total_us
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = EngineTrace::default();
        t.set_enabled(false);
        assert!(t.timer().is_none());
        t.record_us(Phase::Execute, 100);
        assert_eq!(t.phase(Phase::Execute).count(), 0);
        assert!(t.render_stats().is_empty());
    }

    #[test]
    fn enabled_trace_accumulates_per_phase() {
        let mut t = EngineTrace::default();
        let timer = t.timer();
        assert!(timer.is_some());
        t.record(Phase::Parse, timer);
        t.record_us(Phase::Execute, 50);
        t.record_us(Phase::Execute, 60);
        assert_eq!(t.phase(Phase::Parse).count(), 1);
        assert_eq!(t.phase(Phase::Execute).count(), 2);
        assert_eq!(t.phase(Phase::Execute).total_us(), 110);
        let stats = t.render_stats();
        assert!(stats.contains("phase_parse_count 1"), "{stats}");
        assert!(stats.contains("phase_execute_total_us 110"), "{stats}");
        assert!(!stats.contains("phase_lex"), "{stats}");
        t.reset();
        assert_eq!(t.phase(Phase::Execute).count(), 0);
    }

    #[test]
    fn profile_renders_tree_and_summary() {
        let p = QueryProfile {
            ops: vec![
                OpProfile {
                    depth: 0,
                    label: "Aggregate groups=1 aggs=[count(*)]".into(),
                    rows_in: 4,
                    rows: 2,
                    batches: None,
                    time_us: 120,
                    executed: true,
                },
                OpProfile {
                    depth: 1,
                    label: "Scan Table t cols=1".into(),
                    rows_in: 0,
                    rows: 4,
                    batches: Some(1),
                    time_us: 80,
                    executed: true,
                },
                OpProfile {
                    depth: 0,
                    label: "InitPlan $0".into(),
                    rows_in: 0,
                    rows: 0,
                    batches: None,
                    time_us: 0,
                    executed: false,
                },
            ],
            total_us: 150,
            result_rows: 2,
        };
        let text = p.render();
        assert!(text.contains("Aggregate groups=1 aggs=[count(*)] (rows=2 time=120us)"));
        assert!(text.contains("  Scan Table t cols=1 (rows=4 batches=1 time=80us)"));
        assert!(text.contains("InitPlan $0 (never executed)"));
        assert!(text.ends_with("Execution: rows=2 time=150us"));
        assert_eq!(p.find("Scan").unwrap().rows, 4);
    }
}
