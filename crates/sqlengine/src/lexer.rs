//! SQL lexer.

use crate::error::{Result, SqlError};
use crate::token::{Tok, Token};
use etypes::Value;

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = sql.chars().collect();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut out = Vec::new();

    macro_rules! push {
        ($kind:expr) => {
            out.push(Token { kind: $kind, line })
        };
    }

    while pos < chars.len() {
        let c = chars[pos];
        match c {
            '\n' => {
                line += 1;
                pos += 1;
            }
            c if c.is_whitespace() => pos += 1,
            '-' if chars.get(pos + 1) == Some(&'-') => {
                // Line comment.
                while pos < chars.len() && chars[pos] != '\n' {
                    pos += 1;
                }
            }
            '\'' => {
                let (s, consumed, newlines) = lex_string(&chars[pos..], line)?;
                push!(Tok::Literal(Value::Text(s)));
                pos += consumed;
                line += newlines;
            }
            '"' => {
                pos += 1;
                let start = pos;
                while pos < chars.len() && chars[pos] != '"' {
                    pos += 1;
                }
                if pos >= chars.len() {
                    return Err(SqlError::parse(line, "unterminated quoted identifier"));
                }
                let ident: String = chars[start..pos].iter().collect();
                push!(Tok::QuotedIdent(ident));
                pos += 1;
            }
            c if c.is_ascii_digit() => {
                let start = pos;
                let mut is_float = false;
                while pos < chars.len() && chars[pos].is_ascii_digit() {
                    pos += 1;
                }
                if pos < chars.len()
                    && chars[pos] == '.'
                    && chars.get(pos + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    pos += 1;
                    while pos < chars.len() && chars[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                if pos < chars.len() && matches!(chars[pos], 'e' | 'E') {
                    let save = pos;
                    pos += 1;
                    if pos < chars.len() && matches!(chars[pos], '+' | '-') {
                        pos += 1;
                    }
                    if pos < chars.len() && chars[pos].is_ascii_digit() {
                        is_float = true;
                        while pos < chars.len() && chars[pos].is_ascii_digit() {
                            pos += 1;
                        }
                    } else {
                        pos = save;
                    }
                }
                let text: String = chars[start..pos].iter().collect();
                let value = if is_float {
                    Value::Float(text.parse().map_err(|_| {
                        SqlError::parse(line, format!("bad numeric literal {text}"))
                    })?)
                } else {
                    Value::Int(text.parse().map_err(|_| {
                        SqlError::parse(line, format!("bad numeric literal {text}"))
                    })?)
                };
                push!(Tok::Literal(value));
            }
            '$' if chars.get(pos + 1).is_some_and(|c| c.is_ascii_digit()) => {
                pos += 1;
                let start = pos;
                while pos < chars.len() && chars[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text: String = chars[start..pos].iter().collect();
                let n: usize = text
                    .parse()
                    .map_err(|_| SqlError::parse(line, format!("bad parameter ${text}")))?;
                if n == 0 {
                    return Err(SqlError::parse(line, "parameter numbers start at $1"));
                }
                push!(Tok::Param(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = pos;
                while pos < chars.len()
                    && (chars[pos].is_alphanumeric() || chars[pos] == '_' || chars[pos] == '$')
                {
                    pos += 1;
                }
                let word: String = chars[start..pos].iter().collect::<String>().to_lowercase();
                push!(Tok::Word(word));
            }
            '*' => {
                push!(Tok::Star);
                pos += 1;
            }
            '(' => {
                push!(Tok::LParen);
                pos += 1;
            }
            ')' => {
                push!(Tok::RParen);
                pos += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                pos += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                pos += 1;
            }
            ',' => {
                push!(Tok::Comma);
                pos += 1;
            }
            ';' => {
                push!(Tok::Semicolon);
                pos += 1;
            }
            '.' => {
                push!(Tok::Dot);
                pos += 1;
            }
            '+' => {
                push!(Tok::Plus);
                pos += 1;
            }
            '-' => {
                push!(Tok::Minus);
                pos += 1;
            }
            '/' => {
                push!(Tok::Slash);
                pos += 1;
            }
            '%' => {
                push!(Tok::Percent);
                pos += 1;
            }
            '|' if chars.get(pos + 1) == Some(&'|') => {
                push!(Tok::Concat);
                pos += 2;
            }
            ':' if chars.get(pos + 1) == Some(&':') => {
                push!(Tok::DoubleColon);
                pos += 2;
            }
            '=' => {
                push!(Tok::Eq);
                pos += 1;
            }
            '<' => match chars.get(pos + 1) {
                Some('=') => {
                    push!(Tok::Le);
                    pos += 2;
                }
                Some('>') => {
                    push!(Tok::NotEq);
                    pos += 2;
                }
                _ => {
                    push!(Tok::Lt);
                    pos += 1;
                }
            },
            '>' => {
                if chars.get(pos + 1) == Some(&'=') {
                    push!(Tok::Ge);
                    pos += 2;
                } else {
                    push!(Tok::Gt);
                    pos += 1;
                }
            }
            '!' if chars.get(pos + 1) == Some(&'=') => {
                push!(Tok::NotEq);
                pos += 2;
            }
            other => {
                return Err(SqlError::parse(
                    line,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

/// Lex a `'...'` string starting at `chars[0] == '\''`; returns
/// (content, chars consumed, newlines crossed).
fn lex_string(chars: &[char], line: usize) -> Result<(String, usize, usize)> {
    debug_assert_eq!(chars[0], '\'');
    let mut out = String::new();
    let mut pos = 1usize;
    let mut newlines = 0usize;
    loop {
        match chars.get(pos) {
            None => return Err(SqlError::parse(line, "unterminated string literal")),
            Some('\'') => {
                if chars.get(pos + 1) == Some(&'\'') {
                    out.push('\'');
                    pos += 2;
                } else {
                    pos += 1;
                    break;
                }
            }
            Some('\n') => {
                newlines += 1;
                out.push('\n');
                pos += 1;
            }
            Some(c) => {
                out.push(*c);
                pos += 1;
            }
        }
    }
    Ok((out, pos, newlines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Tok> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_lowercased_quotes_preserved() {
        assert_eq!(
            kinds(r#"SELECT "Age_Group" FROM t"#),
            vec![
                Tok::Word("select".into()),
                Tok::QuotedIdent("Age_Group".into()),
                Tok::Word("from".into()),
                Tok::Word("t".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(kinds("'it''s'")[0], Tok::Literal(Value::text("it's")));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1.5")[0], Tok::Literal(Value::Float(1.5)));
        assert_eq!(kinds("42")[0], Tok::Literal(Value::Int(42)));
        assert_eq!(kinds("1e3")[0], Tok::Literal(Value::Float(1000.0)));
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <> b != c || d :: e <= f"),
            vec![
                Tok::Word("a".into()),
                Tok::NotEq,
                Tok::Word("b".into()),
                Tok::NotEq,
                Tok::Word("c".into()),
                Tok::Concat,
                Tok::Word("d".into()),
                Tok::DoubleColon,
                Tok::Word("e".into()),
                Tok::Le,
                Tok::Word("f".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_tracked() {
        let toks = tokenize("SELECT 1 -- the original data\nFROM t").unwrap();
        let from = toks
            .iter()
            .find(|t| t.kind == Tok::Word("from".into()))
            .unwrap();
        assert_eq!(from.line, 2);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }
}
