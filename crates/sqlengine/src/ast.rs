//! SQL abstract syntax tree.

use etypes::{DataType, Value};

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE [IF EXISTS] name` / `DROP VIEW [IF EXISTS] name`.
    Drop {
        /// Object name.
        name: String,
        /// True for views.
        is_view: bool,
        /// Swallow "does not exist".
        if_exists: bool,
    },
    /// `INSERT INTO t [(cols)] VALUES (...), ...`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row literals.
        values: Vec<Vec<Expr>>,
    },
    /// `COPY t [(cols)] FROM 'file' WITH (...)`.
    Copy {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// CSV source path.
        path: String,
        /// Field delimiter (default `,`).
        delimiter: char,
        /// NULL spelling (default empty string).
        null_str: String,
        /// First line is a header.
        header: bool,
    },
    /// `CREATE [MATERIALIZED] VIEW name AS query`.
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Query,
        /// Materialize at creation (stored relation).
        materialized: bool,
    },
    /// A `SELECT` query (with optional `WITH` clause).
    Select(Query),
    /// `EXPLAIN [ANALYZE] <select>`.
    Explain {
        /// Execute the query and annotate the plan with runtime statistics.
        analyze: bool,
        /// The query being explained.
        query: Query,
    },
}

/// A column definition in DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (case preserved if quoted).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

/// A query: `WITH ctes SELECT ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Common table expressions in declaration order.
    pub ctes: Vec<Cte>,
    /// The main select body.
    pub body: SelectBody,
}

/// One CTE.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Defining query (may itself reference earlier CTEs).
    pub query: Box<Query>,
    /// Explicit `MATERIALIZED` / `NOT MATERIALIZED` override, if given.
    pub materialized: Option<bool>,
}

/// The `SELECT ... FROM ... WHERE ... GROUP BY ... ORDER BY ... LIMIT` body.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBody {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// FROM clause, if any (`SELECT 1` has none).
    pub from: Option<TableRef>,
    /// WHERE predicate.
    pub selection: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all visible columns.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// FROM-clause tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table, view or CTE reference with optional alias.
    Named {
        /// Object name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Parenthesised subquery with alias.
    Subquery {
        /// Inner query.
        query: Box<Query>,
        /// Alias (required in PG, required here too).
        alias: String,
    },
    /// A join of two table refs.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// ON condition (`None` for cross joins).
        on: Option<Expr>,
    },
}

/// Join kinds the generated SQL uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `INNER JOIN`
    Inner,
    /// `LEFT OUTER JOIN`
    Left,
    /// `RIGHT OUTER JOIN`
    Right,
    /// Full outer (completes the family; RIGHT OUTER is what Listing 1 uses).
    Full,
    /// `CROSS JOIN` / comma.
    Cross,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified: `tb1."ssn"`.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// Positional parameter placeholder `$n` (1-based), bound at execution
    /// time by `EXECUTE name (values...)`.
    Parameter(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`-x`, `NOT x`).
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Function call, incl. aggregates; `count(*)` has `star = true`.
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `count(DISTINCT x)`.
        distinct: bool,
        /// `count(*)`.
        star: bool,
        /// `OVER (ORDER BY ...)` window clause for `row_number`.
        window_order: Option<Vec<OrderItem>>,
    },
    /// `CASE [WHEN cond THEN val]... [ELSE val] END`.
    Case {
        /// WHEN/THEN arms.
        whens: Vec<(Expr, Expr)>,
        /// ELSE arm.
        else_expr: Option<Box<Expr>>,
    },
    /// Cast: `expr::type` or `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        ty: DataType,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// Uncorrelated scalar subquery `(SELECT ...)`.
    ScalarSubquery(Box<Query>),
    /// `ARRAY[a, b, c]` literal.
    ArrayLiteral(Vec<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `AND` (three-valued).
    And,
    /// `OR` (three-valued).
    Or,
    /// `||` — string or array concatenation.
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `NOT x`
    Not,
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Split a conjunction into its factors.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}
