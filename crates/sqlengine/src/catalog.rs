//! The catalog: base tables, views and materialized views.

use crate::ast::Query;
use crate::error::{Result, SqlError};
use crate::storage::{Relation, Table};
use std::collections::HashMap;
use std::rc::Rc;

/// A view definition.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// Defining query AST (re-bound and inlined at every reference for plain
    /// views).
    pub query: Query,
    /// Stored data for materialized views (refreshed at creation).
    pub materialized: Option<Rc<Relation>>,
}

/// Name → object maps. Names are compared case-sensitively after the lexer
/// has lower-cased unquoted identifiers, matching PostgreSQL folding.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, ViewDef>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; errors if any object of that name exists.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let name = table.name.clone();
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(SqlError::catalog(format!("object '{name}' already exists")));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Register a view; errors if any object of that name exists.
    pub fn create_view(&mut self, view: ViewDef) -> Result<()> {
        let name = view.name.clone();
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(SqlError::catalog(format!("object '{name}' already exists")));
        }
        self.views.insert(name, view);
        Ok(())
    }

    /// Drop a table or view.
    pub fn drop(&mut self, name: &str, is_view: bool, if_exists: bool) -> Result<()> {
        let removed = if is_view {
            self.views.remove(name).is_some()
        } else {
            self.tables.remove(name).is_some()
        };
        if !removed && !if_exists {
            return Err(SqlError::catalog(format!(
                "{} '{name}' does not exist",
                if is_view { "view" } else { "table" }
            )));
        }
        Ok(())
    }

    /// Look up a base table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable base-table lookup (INSERT/COPY).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Look up a view.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(name)
    }

    /// All table names (sorted, for introspection/tests).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// All view names (sorted).
    pub fn view_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.views.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Remove every view (used between pipeline runs in VIEW mode).
    pub fn clear_views(&mut self) {
        self.views.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::DataType;

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let mut c = Catalog::new();
        c.create_table(Table::empty("t", vec!["a".into()], vec![DataType::Int]))
            .unwrap();
        assert!(c
            .create_table(Table::empty("t", vec!["a".into()], vec![DataType::Int]))
            .is_err());
        let v = ViewDef {
            name: "t".into(),
            query: crate::parser::parse_statement("SELECT 1 AS one")
                .map(|s| match s {
                    crate::ast::Statement::Select(q) => q,
                    _ => unreachable!(),
                })
                .unwrap(),
            materialized: None,
        };
        assert!(c.create_view(v).is_err());
    }

    #[test]
    fn drop_semantics() {
        let mut c = Catalog::new();
        c.create_table(Table::empty("t", vec!["a".into()], vec![DataType::Int]))
            .unwrap();
        assert!(c.drop("t", true, false).is_err()); // wrong kind
        c.drop("t", false, false).unwrap();
        assert!(c.drop("t", false, false).is_err());
        c.drop("t", false, true).unwrap(); // IF EXISTS swallows
    }
}
