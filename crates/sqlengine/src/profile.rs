//! Execution profiles: the PostgreSQL-like and Umbra-like personalities.
//!
//! The paper evaluates the same generated SQL on two systems. We model the
//! *behavioural* differences that drive its results:
//!
//! | effect | PostgreSQL 12 | Umbra | knob |
//! |---|---|---|---|
//! | CTE optimization fence | CTEs materialized unless `NOT MATERIALIZED` | always inlined | [`EngineProfile::materialize_ctes`] |
//! | storage | disk-based, buffer pool | beyond main-memory | [`EngineProfile::io_delay_nanos_per_page`] |
//! | execution | interpreted plans | compiled pipelines | [`EngineProfile::per_row_overhead_nanos`] |
//!
//! The latency knobs are a *simulation*: we do not spin real disks. They are
//! charged by busy-waiting per scanned/written page so that relative factors
//! (Umbra over PostgreSQL over pandas) land in the paper's reported ranges
//! while remaining deterministic and configurable (set to 0 for pure
//! functional testing).

use std::time::{Duration, Instant};

/// Tunable personality of the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Human-readable name used in benchmark output ("postgres", "umbra").
    pub name: String,
    /// Materialize CTEs referenced by a query unless the query says
    /// `NOT MATERIALIZED` (the PostgreSQL 12 fence). When false, CTEs are
    /// inlined at each reference and optimized holistically (Umbra).
    pub materialize_ctes: bool,
    /// Simulated I/O latency charged per page read from or written to a base
    /// table / materialized view (0 disables).
    pub io_delay_nanos_per_page: u64,
    /// Rows per simulated page (PostgreSQL packs ~100 tuples of this width
    /// into an 8 KiB page).
    pub rows_per_page: usize,
    /// Additional interpretation overhead charged per row flowing through
    /// plan operators, modelling interpreted vs. compiled execution
    /// (0 disables — Umbra).
    pub per_row_overhead_nanos: u64,
    /// Run the logical optimizer (filter pushdown, projection collapsing,
    /// column pruning). Disable only for ablation experiments.
    pub enable_optimizer: bool,
    /// Share the plan of an inlined view/CTE that a query references more
    /// than once (common-subexpression elimination): the second and later
    /// references scan one shared intermediate instead of re-executing the
    /// subtree. Models Umbra's DAG-shaped compiled plans; PostgreSQL expands
    /// plain views per reference.
    pub shared_scans: bool,
}

impl EngineProfile {
    /// PostgreSQL-like: CTE fence + simulated buffered I/O + interpretation
    /// overhead.
    pub fn disk_based() -> EngineProfile {
        EngineProfile {
            name: "postgres".to_string(),
            materialize_ctes: true,
            io_delay_nanos_per_page: 2_000,
            rows_per_page: 100,
            per_row_overhead_nanos: 25,
            enable_optimizer: true,
            shared_scans: false,
        }
    }

    /// Umbra-like: holistic inlining, in-memory speed.
    pub fn in_memory() -> EngineProfile {
        EngineProfile {
            name: "umbra".to_string(),
            materialize_ctes: false,
            io_delay_nanos_per_page: 0,
            rows_per_page: 100,
            per_row_overhead_nanos: 0,
            enable_optimizer: true,
            shared_scans: true,
        }
    }

    /// A functional-testing profile: PostgreSQL semantics (CTE fence) with
    /// all simulated latencies off.
    pub fn disk_based_no_latency() -> EngineProfile {
        EngineProfile {
            io_delay_nanos_per_page: 0,
            per_row_overhead_nanos: 0,
            name: "postgres-nolat".to_string(),
            ..EngineProfile::disk_based()
        }
    }

    /// Number of simulated pages occupied by `rows` tuples.
    pub fn pages_for(&self, rows: usize) -> u64 {
        (rows.max(1)).div_ceil(self.rows_per_page) as u64
    }

    /// Busy-wait for the simulated I/O cost of touching `rows` tuples worth
    /// of pages. Returns the number of pages charged.
    pub fn charge_io(&self, rows: usize) -> u64 {
        let pages = self.pages_for(rows);
        if self.io_delay_nanos_per_page > 0 {
            busy_wait(Duration::from_nanos(pages * self.io_delay_nanos_per_page));
        }
        pages
    }

    /// Busy-wait for the interpretation overhead of `rows` rows.
    pub fn charge_rows(&self, rows: usize) {
        if self.per_row_overhead_nanos > 0 && rows > 0 {
            busy_wait(Duration::from_nanos(
                rows as u64 * self.per_row_overhead_nanos,
            ));
        }
    }
}

fn busy_wait(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let p = EngineProfile::disk_based_no_latency();
        assert_eq!(p.pages_for(0), 1);
        assert_eq!(p.pages_for(100), 1);
        assert_eq!(p.pages_for(101), 2);
    }

    #[test]
    fn zero_latency_charges_are_free() {
        let p = EngineProfile::in_memory();
        let t = Instant::now();
        p.charge_io(1_000_000);
        p.charge_rows(1_000_000);
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn disk_profile_charges_latency() {
        let mut p = EngineProfile::disk_based();
        p.io_delay_nanos_per_page = 1_000_000; // 1ms per page for the test
        let t = Instant::now();
        p.charge_io(150); // 2 pages
        assert!(t.elapsed() >= Duration::from_millis(2));
    }
}
