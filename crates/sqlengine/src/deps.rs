//! Routing-grade statement dependencies.
//!
//! The sharded serving layer assigns tables to shards and must decide,
//! *without a catalog* (catalogs live on the shard threads), which catalog
//! objects a statement touches and whether it writes any of them. This
//! module extracts that purely syntactically from the parsed AST: named
//! FROM references minus the query's own CTE names, plus the write targets
//! of DDL/DML. A view name counts as a read of the *view* — the router
//! resolves view ownership through its own registry, since only the owning
//! shard's catalog knows the underlying tables.

use crate::ast::{Query, Statement};
use crate::cache::{ast_expr_deps, ast_query_deps};
use crate::error::Result;
use std::collections::BTreeSet;

/// What one statement touches, as visible from its AST alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatementDeps {
    /// Catalog objects (tables, views, materialized views) the statement
    /// reads. Sorted and deduplicated; CTE names are excluded.
    pub reads: Vec<String>,
    /// Base tables / views the statement writes (creates, drops, or
    /// appends to). Sorted and deduplicated.
    pub writes: Vec<String>,
    /// Object created by this statement, with its view-ness.
    pub creates: Option<(String, bool)>,
    /// Object dropped by this statement, with its view-ness.
    pub drops: Option<(String, bool)>,
}

impl StatementDeps {
    /// Every object the statement touches (reads ∪ writes), sorted.
    pub fn touched(&self) -> Vec<String> {
        let mut all: BTreeSet<String> = self.reads.iter().cloned().collect();
        all.extend(self.writes.iter().cloned());
        all.into_iter().collect()
    }

    /// True when the statement mutates at least one catalog object.
    pub fn is_write(&self) -> bool {
        !self.writes.is_empty()
    }
}

/// Parse a `;`-separated SQL text into statements (the engine's own lexer
/// and parser, so router-side parse failures are impossible when the shard
/// would have parsed the text — and vice versa).
pub fn parse_sql(sql: &str) -> Result<Vec<Statement>> {
    let tokens = crate::lexer::tokenize(sql)?;
    crate::parser::parse_tokens(tokens)
}

/// Collect the names a query reads: every named FROM reference (including
/// views — the AST cannot tell) at any nesting depth, minus the names of
/// CTEs the query itself defines. Shadowing is resolved the way the binder
/// does: a FROM reference matching an in-scope CTE name is the CTE.
fn query_reads(query: &Query, deps: &mut BTreeSet<String>) {
    let mut raw = BTreeSet::new();
    ast_query_deps(query, &mut raw);
    let mut cte_names = BTreeSet::new();
    collect_cte_names(query, &mut cte_names);
    for name in raw {
        if !cte_names.contains(&name) {
            deps.insert(name);
        }
    }
}

fn collect_cte_names(query: &Query, names: &mut BTreeSet<String>) {
    for cte in &query.ctes {
        names.insert(cte.name.clone());
        collect_cte_names(&cte.query, names);
    }
    collect_cte_names_body(&query.body, names);
}

fn collect_cte_names_body(body: &crate::ast::SelectBody, names: &mut BTreeSet<String>) {
    if let Some(from) = &body.from {
        collect_cte_names_table_ref(from, names);
    }
}

fn collect_cte_names_table_ref(table_ref: &crate::ast::TableRef, names: &mut BTreeSet<String>) {
    match table_ref {
        crate::ast::TableRef::Named { .. } => {}
        crate::ast::TableRef::Subquery { query, .. } => collect_cte_names(query, names),
        crate::ast::TableRef::Join { left, right, .. } => {
            collect_cte_names_table_ref(left, names);
            collect_cte_names_table_ref(right, names);
        }
    }
}

/// The dependencies of one parsed statement.
pub fn statement_deps(stmt: &Statement) -> StatementDeps {
    let mut deps = StatementDeps::default();
    let mut reads = BTreeSet::new();
    match stmt {
        Statement::CreateTable { name, .. } => {
            deps.writes.push(name.clone());
            deps.creates = Some((name.clone(), false));
        }
        Statement::Drop { name, is_view, .. } => {
            deps.writes.push(name.clone());
            deps.drops = Some((name.clone(), *is_view));
        }
        Statement::Insert { table, values, .. } => {
            deps.writes.push(table.clone());
            // INSERT values are constant expressions, but scalar
            // subqueries inside them still read tables.
            for row in values {
                for e in row {
                    ast_expr_deps(e, &mut reads);
                }
            }
        }
        Statement::Copy { table, .. } => {
            deps.writes.push(table.clone());
        }
        Statement::CreateView { name, query, .. } => {
            deps.writes.push(name.clone());
            deps.creates = Some((name.clone(), true));
            query_reads(query, &mut reads);
        }
        Statement::Select(query) | Statement::Explain { query, .. } => {
            query_reads(query, &mut reads);
        }
    }
    deps.reads = reads.into_iter().collect();
    deps.writes.sort();
    deps.writes.dedup();
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deps_of(sql: &str) -> StatementDeps {
        let stmts = parse_sql(sql).unwrap();
        assert_eq!(stmts.len(), 1);
        statement_deps(&stmts[0])
    }

    #[test]
    fn select_reads_tables_not_ctes() {
        let d = deps_of(
            "WITH j AS (SELECT a FROM t1) SELECT j.a, t2.k FROM j INNER JOIN t2 ON j.a = t2.k",
        );
        assert_eq!(d.reads, vec!["t1", "t2"]);
        assert!(d.writes.is_empty());
        assert!(!d.is_write());
    }

    #[test]
    fn subquery_and_scalar_subquery_reads_count() {
        let d =
            deps_of("SELECT x FROM (SELECT a AS x FROM t1) s WHERE x > (SELECT max(k) FROM t2)");
        assert_eq!(d.reads, vec!["t1", "t2"]);
    }

    #[test]
    fn insert_writes_its_table() {
        let d = deps_of("INSERT INTO t1 VALUES (1, 2)");
        assert_eq!(d.writes, vec!["t1"]);
        assert!(d.reads.is_empty());
        assert!(d.is_write());
    }

    #[test]
    fn insert_scalar_subquery_reads() {
        let d = deps_of("INSERT INTO t1 VALUES ((SELECT max(k) FROM t2))");
        assert_eq!(d.writes, vec!["t1"]);
        assert_eq!(d.reads, vec!["t2"]);
    }

    #[test]
    fn ddl_records_creates_and_drops() {
        let d = deps_of("CREATE TABLE t (a int)");
        assert_eq!(d.creates, Some(("t".to_string(), false)));
        assert_eq!(d.writes, vec!["t"]);
        let d = deps_of("DROP VIEW IF EXISTS v");
        assert_eq!(d.drops, Some(("v".to_string(), true)));
        let d = deps_of("CREATE VIEW v AS SELECT a FROM t1");
        assert_eq!(d.creates, Some(("v".to_string(), true)));
        assert_eq!(d.reads, vec!["t1"]);
        assert_eq!(d.writes, vec!["v"]);
    }

    #[test]
    fn touched_unions_reads_and_writes() {
        let d = deps_of("INSERT INTO t1 VALUES ((SELECT max(k) FROM t2))");
        assert_eq!(d.touched(), vec!["t1", "t2"]);
    }
}
