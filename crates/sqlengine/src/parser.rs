//! Recursive-descent SQL parser for the engine's dialect.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::tokenize;
use crate::token::{Tok, Token};
use etypes::{DataType, Value};

/// Parse a script of one or more `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    parse_tokens(tokenize(sql)?)
}

/// Parse a pre-lexed token stream (the engine lexes separately so the trace
/// layer can attribute lex and parse time to their own phases).
pub fn parse_tokens(tokens: Vec<Token>) -> Result<Vec<Statement>> {
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&Tok::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse exactly one statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut stmts = parse_script(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(SqlError::parse(1, format!("expected 1 statement, got {n}"))),
    }
}

/// Parse a comma-separated list of literal values — the argument list of the
/// wire protocol's `EXECUTE name (v1, v2, ...)` form. Accepts numbers
/// (optionally negated), quoted strings, `true`/`false`, and `null`; an
/// empty or all-whitespace input yields an empty list.
pub fn parse_param_values(text: &str) -> Result<Vec<Value>> {
    let tokens = tokenize(text)?;
    let mut vals = Vec::new();
    let mut i = 0;
    loop {
        if tokens[i].kind == Tok::Eof {
            if vals.is_empty() {
                break;
            }
            return Err(SqlError::parse(
                tokens[i].line,
                "expected a parameter value after ','",
            ));
        }
        let negated = tokens[i].kind == Tok::Minus;
        if negated {
            i += 1;
        }
        let line = tokens[i].line;
        let v = match &tokens[i].kind {
            Tok::Literal(v) => v.clone(),
            Tok::Word(w) if !negated && w == "null" => Value::Null,
            Tok::Word(w) if !negated && w == "true" => Value::Bool(true),
            Tok::Word(w) if !negated && w == "false" => Value::Bool(false),
            other => {
                return Err(SqlError::parse(
                    line,
                    format!("expected a literal parameter value, found '{other}'"),
                ))
            }
        };
        let v = if negated {
            match v {
                Value::Int(n) => Value::Int(-n),
                Value::Float(f) => Value::Float(-f),
                other => {
                    return Err(SqlError::parse(
                        line,
                        format!("cannot negate parameter value {}", other.sql_literal()),
                    ))
                }
            }
        } else {
            v
        };
        vals.push(v);
        i += 1;
        match &tokens[i].kind {
            Tok::Comma => i += 1,
            Tok::Eof => break,
            other => {
                return Err(SqlError::parse(
                    tokens[i].line,
                    format!("expected ',' between parameter values, found '{other}'"),
                ))
            }
        }
    }
    Ok(vals)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &Tok {
        let idx = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        *self.peek() == Tok::Eof
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Consume a keyword (case-insensitive bare word).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Word(w) = self.peek() {
            if w == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w == kw)
    }

    fn expect(&mut self, tok: &Tok) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.line(),
                format!("expected {tok}, found {}", self.peek()),
            ))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.line(),
                format!("expected {kw}, found {}", self.peek()),
            ))
        }
    }

    /// Any identifier: quoted (case preserved) or bare (already lowercased).
    fn identifier(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Word(w) => {
                self.bump();
                Ok(w)
            }
            Tok::QuotedIdent(w) => {
                self.bump();
                Ok(w)
            }
            other => Err(SqlError::parse(
                self.line(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("create") {
            return self.create();
        }
        if self.eat_kw("drop") {
            let is_view = if self.eat_kw("view") {
                true
            } else {
                self.expect_kw("table")?;
                false
            };
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.identifier()?;
            return Ok(Statement::Drop {
                name,
                is_view,
                if_exists,
            });
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("copy") {
            return self.copy();
        }
        if self.at_kw("select") || self.at_kw("with") {
            return Ok(Statement::Select(self.query()?));
        }
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            if !(self.at_kw("select") || self.at_kw("with")) {
                return Err(SqlError::parse(
                    self.line(),
                    "EXPLAIN supports SELECT statements only",
                ));
            }
            return Ok(Statement::Explain {
                analyze,
                query: self.query()?,
            });
        }
        Err(SqlError::parse(
            self.line(),
            format!("unexpected start of statement: {}", self.peek()),
        ))
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        let materialized = self.eat_kw("materialized");
        if self.eat_kw("view") {
            let name = self.identifier()?;
            self.expect_kw("as")?;
            let query = self.query()?;
            return Ok(Statement::CreateView {
                name,
                query,
                materialized,
            });
        }
        if materialized {
            return Err(SqlError::parse(self.line(), "expected VIEW"));
        }
        self.expect_kw("table")?;
        let name = self.identifier()?;
        self.expect(&Tok::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.identifier()?;
            let ty = self.data_type()?;
            columns.push(ColumnDef { name: col, ty });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let mut name = self.identifier()?;
        // Two-word types: "double precision".
        if name == "double" && self.at_kw("precision") {
            self.bump();
            name = "double precision".to_string();
        }
        let mut ty = DataType::parse_sql(&name)
            .ok_or_else(|| SqlError::parse(self.line(), format!("unknown type {name}")))?;
        while self.eat(&Tok::LBracket) {
            self.expect(&Tok::RBracket)?;
            ty = DataType::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.identifier()?;
        let columns = if self.eat(&Tok::LParen) {
            // Either a column list or directly VALUES (PG allows
            // `INSERT INTO t (values (...))` per Listing 1's spelling).
            if self.at_kw("values") {
                self.bump();
                let values = self.values_rows()?;
                self.expect(&Tok::RParen)?;
                return Ok(Statement::Insert {
                    table,
                    columns: None,
                    values,
                });
            }
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let values = self.values_rows()?;
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    fn values_rows(&mut self) -> Result<Vec<Vec<Expr>>> {
        let mut rows = Vec::new();
        loop {
            self.expect(&Tok::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            rows.push(row);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(rows)
    }

    fn copy(&mut self) -> Result<Statement> {
        let table = self.identifier()?;
        let columns = if self.eat(&Tok::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("from")?;
        let path = match self.bump() {
            Tok::Literal(Value::Text(p)) => p,
            other => {
                return Err(SqlError::parse(
                    self.line(),
                    format!("expected file path string, found {other}"),
                ))
            }
        };
        let mut delimiter = ',';
        let mut null_str = String::new();
        let mut header = false;
        if self.eat_kw("with") {
            self.expect(&Tok::LParen)?;
            loop {
                let opt = self.identifier()?;
                match opt.as_str() {
                    "delimiter" => {
                        if let Tok::Literal(Value::Text(d)) = self.bump() {
                            delimiter = d.chars().next().unwrap_or(',');
                        }
                    }
                    "null" => {
                        if let Tok::Literal(Value::Text(n)) = self.bump() {
                            null_str = n;
                        }
                    }
                    "format" => {
                        let fmt = self.identifier()?;
                        if fmt != "csv" {
                            return Err(SqlError::parse(
                                self.line(),
                                format!("unsupported COPY format {fmt}"),
                            ));
                        }
                    }
                    "header" => {
                        header = self.eat_kw("true") || !self.eat_kw("false");
                    }
                    other => {
                        return Err(SqlError::parse(
                            self.line(),
                            format!("unknown COPY option {other}"),
                        ))
                    }
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Statement::Copy {
            table,
            columns,
            path,
            delimiter,
            null_str,
            header,
        })
    }

    /// `WITH a AS (...), b AS (...) SELECT ...` or a bare `SELECT`.
    pub(crate) fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.identifier()?;
                self.expect_kw("as")?;
                let materialized = if self.eat_kw("materialized") {
                    Some(true)
                } else if self.eat_kw("not") {
                    self.expect_kw("materialized")?;
                    Some(false)
                } else {
                    None
                };
                self.expect(&Tok::LParen)?;
                let query = self.query()?;
                self.expect(&Tok::RParen)?;
                ctes.push(Cte {
                    name,
                    query: Box::new(query),
                    materialized,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let body = self.select_body()?;
        Ok(Query { ctes, body })
    }

    fn select_body(&mut self) -> Result<SelectBody> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("from") {
            Some(self.table_ref()?)
        } else {
            None
        };
        let selection = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            self.order_items()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Tok::Literal(Value::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqlError::parse(
                        self.line(),
                        format!("expected LIMIT count, found {other}"),
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectBody {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            items.push(OrderItem { expr, desc });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Tok::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* wildcard.
        if let Tok::Word(w) = self.peek().clone() {
            if *self.peek_at(1) == Tok::Dot && *self.peek_at(2) == Tok::Star {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(w));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.identifier()?)
        } else {
            match self.peek().clone() {
                // Implicit alias: bare identifier not a clause keyword.
                Tok::QuotedIdent(w) => {
                    self.bump();
                    Some(w)
                }
                Tok::Word(w) if !is_clause_keyword(&w) => {
                    self.bump();
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            if self.eat(&Tok::Comma) {
                let right = self.table_factor()?;
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: JoinKind::Cross,
                    on: None,
                };
                continue;
            }
            let kind = if self.eat_kw("inner") {
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.eat_kw("right") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Right
            } else if self.eat_kw("full") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Full
            } else if self.eat_kw("cross") {
                self.expect_kw("join")?;
                JoinKind::Cross
            } else if self.eat_kw("join") {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("on")?;
                Some(self.expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat(&Tok::LParen) {
            let query = self.query()?;
            self.expect(&Tok::RParen)?;
            self.eat_kw("as");
            let alias = self.identifier()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.identifier()?;
        let alias = if self.eat_kw("as") {
            Some(self.identifier()?)
        } else {
            match self.peek().clone() {
                Tok::QuotedIdent(w) => {
                    self.bump();
                    Some(w)
                }
                Tok::Word(w) if !is_clause_keyword(&w) && !is_join_keyword(&w) => {
                    self.bump();
                    Some(w)
                }
                _ => None,
            }
        };
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions -----------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let mut left = self.additive()?;
        loop {
            // IS [NOT] NULL.
            if self.eat_kw("is") {
                let negated = self.eat_kw("not");
                self.expect_kw("null")?;
                left = Expr::IsNull {
                    expr: Box::new(left),
                    negated,
                };
                continue;
            }
            // [NOT] IN (list).
            let negated_in = if self.at_kw("not") && *self.peek_at(1) == Tok::Word("in".into()) {
                self.bump();
                true
            } else {
                false
            };
            if self.eat_kw("in") {
                self.expect(&Tok::LParen)?;
                let mut list = Vec::new();
                loop {
                    list.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                left = Expr::InList {
                    expr: Box::new(left),
                    list,
                    negated: negated_in,
                };
                continue;
            } else if negated_in {
                return Err(SqlError::parse(self.line(), "expected IN after NOT"));
            }
            let op = match self.peek() {
                Tok::Eq => BinaryOp::Eq,
                Tok::NotEq => BinaryOp::NotEq,
                Tok::Lt => BinaryOp::Lt,
                Tok::Gt => BinaryOp::Gt,
                Tok::Le => BinaryOp::Le,
                Tok::Ge => BinaryOp::Ge,
                _ => break,
            };
            self.bump();
            let right = self.additive()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                Tok::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                Tok::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.eat(&Tok::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut expr = self.primary()?;
        while self.eat(&Tok::DoubleColon) {
            let ty = self.data_type()?;
            expr = Expr::Cast {
                expr: Box::new(expr),
                ty,
            };
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Literal(v) => {
                self.bump();
                Ok(Expr::Literal(v))
            }
            Tok::Param(n) => {
                self.bump();
                Ok(Expr::Parameter(n))
            }
            Tok::LParen => {
                self.bump();
                if self.at_kw("select") || self.at_kw("with") {
                    let q = self.query()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Word(w) => self.word_expr(w),
            Tok::QuotedIdent(name) => {
                self.bump();
                // Qualified: "tbl"."col".
                if self.eat(&Tok::Dot) {
                    let col = self.identifier()?;
                    return Ok(Expr::qcol(name, col));
                }
                Ok(Expr::col(name))
            }
            other => Err(SqlError::parse(
                self.line(),
                format!("unexpected token {other} in expression"),
            )),
        }
    }

    fn word_expr(&mut self, w: String) -> Result<Expr> {
        match w.as_str() {
            "null" => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            "true" => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            "false" => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            "case" => {
                self.bump();
                let mut whens = Vec::new();
                while self.eat_kw("when") {
                    let cond = self.expr()?;
                    self.expect_kw("then")?;
                    let value = self.expr()?;
                    whens.push((cond, value));
                }
                let else_expr = if self.eat_kw("else") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw("end")?;
                Ok(Expr::Case { whens, else_expr })
            }
            "cast" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect_kw("as")?;
                let ty = self.data_type()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(e),
                    ty,
                })
            }
            "array" => {
                self.bump();
                self.expect(&Tok::LBracket)?;
                let mut items = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(Expr::ArrayLiteral(items))
            }
            _ => {
                if is_clause_keyword(&w) {
                    return Err(SqlError::parse(
                        self.line(),
                        format!("unexpected keyword {w} in expression"),
                    ));
                }
                self.bump();
                // Function call?
                if *self.peek() == Tok::LParen {
                    return self.function_call(w);
                }
                // Qualified column: tbl."col" or tbl.col.
                if self.eat(&Tok::Dot) {
                    let col = self.identifier()?;
                    return Ok(Expr::qcol(w, col));
                }
                Ok(Expr::col(w))
            }
        }
    }

    fn function_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&Tok::LParen)?;
        let mut star = false;
        let mut distinct = false;
        let mut args = Vec::new();
        if self.eat(&Tok::Star) {
            star = true;
        } else if *self.peek() != Tok::RParen {
            distinct = self.eat_kw("distinct");
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let window_order = if self.eat_kw("over") {
            self.expect(&Tok::LParen)?;
            self.expect_kw("order")?;
            self.expect_kw("by")?;
            let items = self.order_items()?;
            self.expect(&Tok::RParen)?;
            Some(items)
        } else {
            None
        };
        Ok(Expr::Function {
            name,
            args,
            distinct,
            star,
            window_order,
        })
    }
}

fn is_clause_keyword(w: &str) -> bool {
    matches!(
        w,
        "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "on"
            | "inner"
            | "left"
            | "right"
            | "full"
            | "cross"
            | "join"
            | "union"
            | "as"
            | "and"
            | "or"
            | "not"
            | "is"
            | "in"
            | "when"
            | "then"
            | "else"
            | "end"
            | "desc"
            | "asc"
            | "with"
            | "select"
            | "outer"
            | "over"
    )
}

fn is_join_keyword(w: &str) -> bool {
    matches!(
        w,
        "inner" | "left" | "right" | "full" | "cross" | "join" | "on" | "outer"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_listing1_shape() {
        let sql = r#"
            WITH orig AS (
              SELECT ctid, a, s FROM data),
            curr AS (
              SELECT ctid, s FROM orig WHERE s > 1),
            orig_count AS (
              SELECT s, count(*) AS cnt FROM orig GROUP BY s),
            curr_count AS (
              SELECT s, count(*) AS cnt FROM curr GROUP BY s),
            orig_ratio AS (
              SELECT s, (cnt*1.0 / (select count(*) FROM orig)) AS ratio FROM orig_count),
            curr_ratio AS (
              SELECT s, (cnt*1.0/(select sum(cnt) FROM curr_count)) AS ratio FROM curr_count)
            SELECT o.s, o.ratio - COALESCE(c.ratio, 0) AS bias_change
            FROM curr_ratio c RIGHT OUTER JOIN orig_ratio o ON o.s = c.s;
        "#;
        let stmts = parse_script(sql).unwrap();
        let Statement::Select(q) = &stmts[0] else {
            panic!()
        };
        assert_eq!(q.ctes.len(), 6);
        let Some(TableRef::Join { kind, .. }) = &q.body.from else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::Right);
    }

    #[test]
    fn parses_ddl_and_insert() {
        let stmts = parse_script(
            "CREATE TABLE data (a int, s int); INSERT INTO data (values (1,1), (1,2));",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        let Statement::Insert { values, .. } = &stmts[1] else {
            panic!()
        };
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn parses_copy() {
        let s = parse_statement(
            "COPY patients (\"id\", \"race\") FROM 'patients.csv' WITH (DELIMITER ',', NULL '', FORMAT CSV, HEADER TRUE)",
        )
        .unwrap();
        let Statement::Copy {
            table,
            columns,
            header,
            null_str,
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(table, "patients");
        assert_eq!(columns.unwrap().len(), 2);
        assert!(header);
        assert_eq!(null_str, "");
    }

    #[test]
    fn quoted_idents_preserve_case() {
        let s = parse_statement("SELECT tb1.\"Age_Group\" FROM t tb1").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.body.projection[0] else {
            panic!()
        };
        assert_eq!(expr, &Expr::qcol("tb1", "Age_Group"));
    }

    #[test]
    fn operator_precedence() {
        let s = parse_statement("SELECT a + b * c > d AND e FROM t").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.body.projection[0] else {
            panic!()
        };
        // Top is AND.
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn case_least_greatest_cast() {
        let s = parse_statement(
            "SELECT CASE WHEN x >= 50 THEN 1 ELSE 0 END, LEAST(a, b), x::double precision, CAST(y AS INT) FROM t",
        );
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn in_list_and_is_null() {
        let s = parse_statement(
            "SELECT * FROM t WHERE county IN ('county2', 'county3') AND x IS NOT NULL AND y NOT IN (1)",
        );
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn window_row_number() {
        let s = parse_statement("SELECT ROW_NUMBER() OVER (ORDER BY v DESC) FROM t").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.body.projection[0] else {
            panic!()
        };
        let Expr::Function {
            name, window_order, ..
        } = expr
        else {
            panic!()
        };
        assert_eq!(name, "row_number");
        assert!(window_order.as_ref().unwrap()[0].desc);
    }

    #[test]
    fn create_materialized_view() {
        let s = parse_statement("CREATE MATERIALIZED VIEW v AS SELECT 1 AS one").unwrap();
        assert!(matches!(
            s,
            Statement::CreateView {
                materialized: true,
                ..
            }
        ));
    }

    #[test]
    fn not_materialized_cte() {
        let s =
            parse_statement("WITH c AS NOT MATERIALIZED (SELECT 1 AS x) SELECT x FROM c").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.ctes[0].materialized, Some(false));
    }

    #[test]
    fn array_literal_and_concat() {
        let s = parse_statement("SELECT array_fill(0, 2) || ARRAY[1] FROM t");
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn scalar_subquery_in_projection() {
        let s = parse_statement("SELECT COALESCE(x, (SELECT avg(x) FROM t)) FROM t");
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn implicit_alias_without_as() {
        let s = parse_statement("SELECT t1.a first_col FROM tbl t1").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { alias, .. } = &q.body.projection[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("first_col"));
    }

    #[test]
    fn drop_if_exists() {
        let s = parse_statement("DROP VIEW IF EXISTS v").unwrap();
        assert!(matches!(
            s,
            Statement::Drop {
                is_view: true,
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
    }
}
