//! Plan rendering (`Engine::explain`): a compact, stable textual form of the
//! optimized plan, for tests, debugging, and the optimizer-ablation
//! benchmarks.

use crate::ast::BinaryOp;
use crate::exec::NodeProfiles;
use crate::plan::{AggFunc, BExpr, PlanNode, PlanRoot, ScanSource};
use crate::trace::{OpProfile, QueryProfile};
use std::fmt::Write as _;

/// Render a bound plan as an indented operator tree.
pub fn render_plan(root: &PlanRoot) -> String {
    let mut out = String::new();
    for (i, cte) in root.ctes.iter().enumerate() {
        let _ = writeln!(out, "CTE {} [{}] (materialized)", i, cte.name);
        render_node(&cte.plan, 1, &mut out);
    }
    for (i, sub) in root.subplans.iter().enumerate() {
        let _ = writeln!(out, "InitPlan ${i}");
        render_node(sub, 1, &mut out);
    }
    render_node(&root.body, 0, &mut out);
    out
}

/// Assemble a [`QueryProfile`] from the per-node counters of one execution,
/// in the exact order [`render_plan`] renders the tree (CTE blocks, then
/// init-plans, then the body).
pub(crate) fn build_query_profile(
    root: &PlanRoot,
    profiles: &NodeProfiles,
    total_us: u64,
    result_rows: u64,
) -> QueryProfile {
    let mut ops = Vec::new();
    for (i, cte) in root.ctes.iter().enumerate() {
        let head = profiles.get(&cte.plan);
        ops.push(OpProfile {
            depth: 0,
            label: format!("CTE {} [{}] (materialized)", i, cte.name),
            rows_in: head.map_or(0, |p| p.rows_out),
            rows: head.map_or(0, |p| p.rows_out),
            batches: head.and_then(|p| (p.batches_out > 0).then_some(p.batches_out)),
            time_us: head.map_or(0, |p| p.elapsed_us),
            executed: head.is_some(),
        });
        profile_node(&cte.plan, 1, profiles, &mut ops);
    }
    for (i, sub) in root.subplans.iter().enumerate() {
        let head = profiles.get(sub);
        ops.push(OpProfile {
            depth: 0,
            label: format!("InitPlan ${i}"),
            rows_in: head.map_or(0, |p| p.rows_out),
            rows: head.map_or(0, |p| p.rows_out),
            batches: head.and_then(|p| (p.batches_out > 0).then_some(p.batches_out)),
            time_us: head.map_or(0, |p| p.elapsed_us),
            executed: head.is_some(),
        });
        profile_node(sub, 1, profiles, &mut ops);
    }
    profile_node(&root.body, 0, profiles, &mut ops);
    QueryProfile {
        ops,
        total_us,
        result_rows,
    }
}

fn profile_node(node: &PlanNode, depth: usize, profiles: &NodeProfiles, ops: &mut Vec<OpProfile>) {
    let p = profiles.get(node);
    let kids = node_children(node);
    let rows_in = kids
        .iter()
        .filter_map(|k| profiles.get(k))
        .map(|p| p.rows_out)
        .sum();
    ops.push(OpProfile {
        depth,
        label: node_label(node),
        rows_in,
        rows: p.map_or(0, |p| p.rows_out),
        batches: p.and_then(|p| (p.batches_out > 0).then_some(p.batches_out)),
        time_us: p.map_or(0, |p| p.elapsed_us),
        executed: p.is_some(),
    });
    for kid in kids {
        profile_node(kid, depth + 1, profiles, ops);
    }
}

/// Direct inputs of a node, in rendering order.
pub(crate) fn node_children(node: &PlanNode) -> Vec<&PlanNode> {
    match node {
        PlanNode::Scan { .. } | PlanNode::Values { .. } => Vec::new(),
        PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Aggregate { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Distinct { input }
        | PlanNode::WindowRowNumber { input, .. }
        | PlanNode::Unnest { input, .. } => vec![input],
        PlanNode::Join { left, right, .. } => vec![left, right],
    }
}

/// One node's `EXPLAIN` line text, without indentation.
fn node_label(node: &PlanNode) -> String {
    match node {
        PlanNode::Scan {
            source, projection, ..
        } => {
            let name = match source {
                ScanSource::Table(t) => format!("Table {t}"),
                ScanSource::MaterializedView(v) => format!("MatView {v}"),
                ScanSource::Cte(i) => format!("CTE {i}"),
            };
            format!("Scan {name} cols={}", projection.len())
        }
        PlanNode::Filter { predicate, .. } => format!("Filter {}", render_expr(predicate)),
        PlanNode::Project { exprs, .. } => format!("Project [{} exprs]", exprs.len()),
        PlanNode::Join {
            kind,
            equi,
            residual,
            ..
        } => {
            let keys: Vec<String> = equi
                .iter()
                .map(|k| {
                    format!(
                        "{}={}{}",
                        render_expr(&k.left),
                        render_expr(&k.right),
                        if k.null_safe { " (null-safe)" } else { "" }
                    )
                })
                .collect();
            format!(
                "{kind:?}Join on [{}]{}",
                keys.join(", "),
                if residual.is_some() { " +residual" } else { "" }
            )
        }
        PlanNode::Aggregate {
            group_exprs, aggs, ..
        } => {
            let fns: Vec<String> = aggs.iter().map(|a| agg_name(&a.func).to_string()).collect();
            format!(
                "Aggregate groups={} aggs=[{}]",
                group_exprs.len(),
                fns.join(", ")
            )
        }
        PlanNode::Sort { keys, .. } => format!("Sort [{} keys]", keys.len()),
        PlanNode::Limit { n, .. } => format!("Limit {n}"),
        PlanNode::Distinct { .. } => "Distinct".to_string(),
        PlanNode::WindowRowNumber { keys, .. } => {
            format!("WindowRowNumber [{} keys]", keys.len())
        }
        PlanNode::Unnest { column, .. } => format!("Unnest col#{column}"),
        PlanNode::Values { rows, .. } => format!("Values [{} rows]", rows.len()),
    }
}

fn render_node(node: &PlanNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(out, "{pad}{}", node_label(node));
    for kid in node_children(node) {
        render_node(kid, depth + 1, out);
    }
}

fn agg_name(f: &AggFunc) -> &'static str {
    match f {
        AggFunc::CountStar => "count(*)",
        AggFunc::Count { distinct: true } => "count(distinct)",
        AggFunc::Count { distinct: false } => "count",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::StddevPop => "stddev_pop",
        AggFunc::Median => "median",
        AggFunc::ArrayAgg => "array_agg",
    }
}

fn render_expr(e: &BExpr) -> String {
    match e {
        BExpr::Col(i) => format!("#{i}"),
        BExpr::Lit(v) => v.sql_literal(),
        BExpr::Param(n) => format!("${n}"),
        BExpr::Binary { op, left, right } => {
            let op = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Mod => "%",
                BinaryOp::Eq => "=",
                BinaryOp::NotEq => "<>",
                BinaryOp::Lt => "<",
                BinaryOp::Gt => ">",
                BinaryOp::Le => "<=",
                BinaryOp::Ge => ">=",
                BinaryOp::And => "AND",
                BinaryOp::Or => "OR",
                BinaryOp::Concat => "||",
            };
            format!("({} {op} {})", render_expr(left), render_expr(right))
        }
        BExpr::Unary { operand, .. } => format!("!({})", render_expr(operand)),
        BExpr::Func { func, args } => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            format!("{func:?}({})", args.join(", "))
        }
        BExpr::Case { whens, .. } => format!("CASE[{}]", whens.len()),
        BExpr::Cast { expr, ty } => format!("{}::{ty}", render_expr(expr)),
        BExpr::InList { expr, list, .. } => {
            format!("{} IN [{}]", render_expr(expr), list.len())
        }
        BExpr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        BExpr::Subplan(i) => format!("${i}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::{Engine, EngineProfile};

    fn setup(profile: EngineProfile) -> Engine {
        let mut e = Engine::new(profile);
        e.execute_script("CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1, 2), (3, 4);")
            .unwrap();
        e
    }

    #[test]
    fn explain_shows_pushed_filter_under_project() {
        let mut e = setup(EngineProfile::in_memory());
        let plan = e.explain("SELECT a * 2 AS d FROM t WHERE a > 1").unwrap();
        // Filter sits below Project after pushdown.
        let proj_pos = plan.find("Project").unwrap();
        let filter_pos = plan.find("Filter").unwrap();
        assert!(proj_pos < filter_pos, "{plan}");
        assert!(plan.contains("Scan Table t"));
    }

    #[test]
    fn explain_distinguishes_fenced_and_inlined_ctes() {
        let sql = "WITH c AS (SELECT a FROM t) SELECT a FROM c";
        let mut pg = setup(EngineProfile::disk_based_no_latency());
        let fenced = pg.explain(sql).unwrap();
        assert!(fenced.contains("CTE 0 [c] (materialized)"), "{fenced}");
        assert!(fenced.contains("Scan CTE 0"), "{fenced}");

        let mut umbra = setup(EngineProfile::in_memory());
        let inlined = umbra.explain(sql).unwrap();
        assert!(!inlined.contains("(materialized)"), "{inlined}");
        assert!(inlined.contains("Scan Table t"), "{inlined}");
    }

    #[test]
    fn explain_shows_pruned_scan_width() {
        let mut e = setup(EngineProfile::in_memory());
        // Only `a` is needed; the hidden ctid and `b` are pruned.
        let plan = e.explain("SELECT a FROM t").unwrap();
        assert!(plan.contains("cols=1"), "{plan}");
    }

    #[test]
    fn explain_renders_joins_and_aggregates() {
        let mut e = setup(EngineProfile::in_memory());
        e.execute_script("CREATE TABLE s (a int, x text); INSERT INTO s VALUES (1, 'p');")
            .unwrap();
        let plan = e
            .explain("SELECT t.a, count(*) AS n FROM t INNER JOIN s ON t.a = s.a GROUP BY t.a")
            .unwrap();
        assert!(plan.contains("InnerJoin"), "{plan}");
        assert!(
            plan.contains("Aggregate groups=1 aggs=[count(*)]"),
            "{plan}"
        );
    }

    #[test]
    fn explain_shows_subplans() {
        let mut e = setup(EngineProfile::in_memory());
        let plan = e
            .explain("SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)")
            .unwrap();
        assert!(plan.contains("InitPlan $0"), "{plan}");
    }
}
