//! Health state machine, rollback-on-WAL-failure, and statement timeouts.
//!
//! Fault-arming tests live in their own integration binary because the
//! fault registry is process-global; within this binary they serialize on
//! `TEST_LOCK`.

use etypes::fault::{self, FaultPolicy};
use etypes::Value;
use sqlengine::{Engine, EngineProfile, FsyncPolicy, Health, SqlError};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear_all();
    guard
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elrobust-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(dir: &PathBuf) -> Engine {
    Engine::open_durable(EngineProfile::in_memory(), dir, FsyncPolicy::Always).unwrap()
}

fn count(e: &mut Engine, table: &str) -> i64 {
    let rel = e
        .query(&format!("SELECT count(*) AS n FROM {table}"))
        .unwrap();
    match rel.rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("count returned {v:?}"),
    }
}

#[test]
fn failed_insert_is_invisible_now_and_after_restart() {
    let _g = locked();
    let dir = tmp_dir("divergence");
    {
        let mut e = durable(&dir);
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
            .unwrap();
        fault::set("wal.append", FaultPolicy::ErrorOnce);
        let err = e.execute("INSERT INTO t VALUES (2)").unwrap_err();
        assert!(
            matches!(err, SqlError::Storage(_)),
            "typed, not a panic: {err}"
        );
        // The regression this PR fixes: the row used to stay visible in
        // memory while replay would never reconstruct it.
        assert_eq!(count(&mut e, "t"), 1, "failed INSERT left no row behind");
        assert!(matches!(e.health(), Health::ReadOnly { .. }));
    }
    fault::clear_all();
    let mut e = durable(&dir);
    assert_eq!(count(&mut e, "t"), 1, "and none resurrected after restart");
    assert_eq!(*e.health(), Health::Healthy, "fresh engine starts healthy");
}

#[test]
fn read_only_engine_serves_reads_and_checkpoint_rearms() {
    let _g = locked();
    let dir = tmp_dir("rearm");
    let mut e = durable(&dir);
    e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
        .unwrap();
    fault::set("wal.append", FaultPolicy::ErrorOnce);
    e.execute("INSERT INTO t VALUES (2)").unwrap_err();
    assert!(matches!(e.health(), Health::ReadOnly { .. }));

    // Reads keep serving; writes fail fast with the typed read-only error
    // carrying the original cause.
    assert_eq!(count(&mut e, "t"), 1);
    let err = e.execute("INSERT INTO t VALUES (3)").unwrap_err();
    let SqlError::ReadOnly(reason) = err else {
        panic!("expected ReadOnly, got {err}");
    };
    assert!(reason.contains("wal.append"), "cause preserved: {reason}");

    // CHECKPOINT compacts memory (consistent, thanks to rollback) into a
    // fresh snapshot and truncates the WAL — safe to re-arm.
    e.checkpoint().unwrap().expect("durable engine checkpoints");
    assert_eq!(*e.health(), Health::Healthy);
    e.execute("INSERT INTO t VALUES (4)").unwrap();
    drop(e);
    let mut e = durable(&dir);
    assert_eq!(count(&mut e, "t"), 2, "write after re-arm is durable");
}

#[test]
fn ddl_rolls_back_when_the_wal_refuses_it() {
    let _g = locked();
    let dir = tmp_dir("ddl");
    let mut e = durable(&dir);
    e.execute_script("CREATE TABLE keep (a int); INSERT INTO keep VALUES (7);")
        .unwrap();

    // CREATE TABLE: the new table must not survive a failed log.
    fault::set("wal.append", FaultPolicy::ErrorOnce);
    e.execute("CREATE TABLE ghost (a int)").unwrap_err();
    assert!(e.catalog().table("ghost").is_none(), "create rolled back");

    // DROP TABLE: the dropped table must come back, rows and all.
    e.checkpoint().unwrap();
    fault::set("wal.append", FaultPolicy::ErrorOnce);
    e.execute("DROP TABLE keep").unwrap_err();
    assert_eq!(count(&mut e, "keep"), 1, "drop rolled back, rows intact");
    fault::clear_all();
}

#[test]
fn snapshot_rename_failure_degrades_checkpoint_not_process() {
    let _g = locked();
    let dir = tmp_dir("ckpt");
    let mut e = durable(&dir);
    e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
        .unwrap();
    fault::set("snapshot.rename", FaultPolicy::ErrorOnce);
    let err = e.checkpoint().unwrap_err();
    assert!(
        matches!(err, SqlError::Storage(_)),
        "typed error, no panic: {err}"
    );
    // The engine is still fully serving — a failed checkpoint degrades
    // nothing (the WAL still covers every acknowledged write).
    assert_eq!(*e.health(), Health::Healthy);
    assert_eq!(count(&mut e, "t"), 1);
    e.execute("INSERT INTO t VALUES (2)").unwrap();
    e.checkpoint().unwrap().expect("retry succeeds");
    drop(e);
    let mut e = durable(&dir);
    assert_eq!(count(&mut e, "t"), 2);
}

#[test]
fn unlogged_mode_bypasses_wal_and_read_only_gate() {
    let _g = locked();
    let dir = tmp_dir("unlogged");
    let mut e = durable(&dir);
    e.execute("CREATE TABLE base (a int)").unwrap();

    // Degrade the engine.
    fault::set("wal.append", FaultPolicy::ErrorOnce);
    e.execute("INSERT INTO base VALUES (1)").unwrap_err();
    assert!(matches!(e.health(), Health::ReadOnly { .. }));

    // Inspection-style DDL/DML still works in unlogged mode.
    e.set_unlogged(true);
    e.execute_script("CREATE TABLE scratch (a int); INSERT INTO scratch VALUES (1), (2);")
        .unwrap();
    assert_eq!(count(&mut e, "scratch"), 2);
    e.set_unlogged(false);
    drop(e);

    // Unlogged state is deliberately not durable.
    let e = durable(&dir);
    assert!(e.catalog().table("scratch").is_none());
    assert!(e.catalog().table("base").is_some());
}

#[test]
fn statement_timeout_cancels_runaway_cross_join() {
    let _g = locked();
    let mut e = Engine::new(EngineProfile::in_memory());
    e.execute("CREATE TABLE a (x int)").unwrap();
    let values: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    e.execute(&format!("INSERT INTO a VALUES {}", values.join(",")))
        .unwrap();

    e.set_statement_timeout(Some(Duration::ZERO));
    let err = e
        .query("SELECT count(*) AS n FROM a CROSS JOIN a AS b CROSS JOIN a AS c")
        .unwrap_err();
    assert!(matches!(err, SqlError::Timeout { ms: 0 }), "got {err}");

    // Clearing the budget lets the same statement finish.
    e.set_statement_timeout(None);
    let rel = e
        .query("SELECT count(*) AS n FROM a CROSS JOIN a AS b")
        .unwrap();
    assert_eq!(rel.rows[0][0], Value::Int(200 * 200));
}

#[test]
fn generous_timeout_does_not_fire() {
    let _g = locked();
    let mut e = Engine::new(EngineProfile::in_memory());
    e.execute("CREATE TABLE t (a int)").unwrap();
    e.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    e.set_statement_timeout(Some(Duration::from_secs(60)));
    let rel = e
        .query("SELECT count(*) AS n FROM t CROSS JOIN t AS b")
        .unwrap();
    assert_eq!(rel.rows[0][0], Value::Int(9));
}
