//! Replica-side engine state: pinned read-only serving, WAL-record apply,
//! snapshot-image reset, and the WAL-size auto-checkpoint policy.

use etypes::{DataType, Value};
use sqlengine::{Engine, EngineProfile, FsyncPolicy, Health, SqlError, TableImage, WalRecord};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elreplica-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn volatile() -> Engine {
    Engine::new(EngineProfile::in_memory())
}

#[test]
fn pinned_read_only_refuses_writes_even_on_volatile_engines() {
    let mut e = volatile();
    e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (1);")
        .unwrap();
    e.pin_read_only("replica: writes must go to the leader");
    assert!(matches!(e.health(), Health::ReadOnly { .. }));
    assert!(e.is_pinned_read_only());

    // Every base-table write is refused with the typed error.
    for sql in [
        "INSERT INTO t VALUES (2)",
        "CREATE TABLE u (a int)",
        "DROP TABLE t",
        "DROP TABLE IF EXISTS missing",
    ] {
        match e.execute(sql) {
            Err(SqlError::ReadOnly(reason)) => assert!(reason.contains("leader"), "{reason}"),
            other => panic!("{sql}: expected ReadOnly, got {other:?}"),
        }
    }

    // Reads, EXPLAIN and view DDL keep serving.
    let rel = e.query("SELECT a FROM t").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(1)]]);
    e.execute("CREATE VIEW v AS SELECT a FROM t").unwrap();
    e.execute("DROP VIEW v").unwrap();
    assert!(e.explain("SELECT a FROM t").is_ok());
}

#[test]
fn pinned_read_only_survives_checkpoint() {
    let dir = tmp_dir("pinned-ckpt");
    let mut e = Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
    e.pin_read_only("replica");
    e.checkpoint().unwrap();
    assert!(
        matches!(e.health(), Health::ReadOnly { .. }),
        "checkpoint must not re-arm a pinned replica"
    );
}

#[test]
fn apply_wal_record_mirrors_recovery_replay() {
    let mut leader = volatile();
    leader
        .execute_script(
            "CREATE TABLE t (id serial, v text); \
             INSERT INTO t (v) VALUES ('a'), ('b'), ('c');",
        )
        .unwrap();

    let mut follower = volatile();
    follower.pin_read_only("replica");
    // apply bypasses the read-only gate: the records ARE the leader's log.
    follower
        .apply_wal_record(WalRecord::CreateTable {
            name: "t".into(),
            columns: vec!["id".into(), "v".into()],
            types: vec![DataType::Serial, DataType::Text],
        })
        .unwrap();
    follower
        .apply_wal_record(WalRecord::Insert {
            table: "t".into(),
            rows: vec![
                vec![Value::Int(1), Value::text("a")],
                vec![Value::Int(2), Value::text("b")],
                vec![Value::Int(3), Value::text("c")],
            ],
        })
        .unwrap();

    let q = "SELECT ctid, id, v FROM t ORDER BY id";
    assert_eq!(
        leader.query(q).unwrap().rows,
        follower.query(q).unwrap().rows,
        "rows and ctids byte-identical"
    );
    assert_eq!(
        follower.catalog().table("t").unwrap().serial_next,
        vec![(0, 4)],
        "serial counters advanced past applied rows"
    );

    // Update / delete / drop replay by ctid, like recovery does.
    follower
        .apply_wal_record(WalRecord::Update {
            table: "t".into(),
            rows: vec![(1, vec![Value::Int(2), Value::text("B")])],
        })
        .unwrap();
    follower
        .apply_wal_record(WalRecord::Delete {
            table: "t".into(),
            ctids: vec![0],
        })
        .unwrap();
    assert_eq!(
        follower.query("SELECT v FROM t ORDER BY id").unwrap().rows,
        vec![vec![Value::text("B")], vec![Value::text("c")]]
    );
    follower
        .apply_wal_record(WalRecord::DropTable { name: "t".into() })
        .unwrap();
    assert!(follower.catalog().table("t").is_none());

    // Inapplicable records surface as errors, never panics.
    assert!(follower
        .apply_wal_record(WalRecord::Insert {
            table: "ghost".into(),
            rows: vec![vec![Value::Int(1)]],
        })
        .is_err());
}

#[test]
fn apply_wal_record_invalidates_dependent_plans() {
    let mut e = volatile();
    e.execute("CREATE TABLE t (a int)").unwrap();
    e.prepare_cached("SELECT a FROM t").unwrap();
    assert_eq!(e.plan_cache_len(), 1);
    e.apply_wal_record(WalRecord::DropTable { name: "t".into() })
        .unwrap();
    assert_eq!(e.plan_cache_len(), 0, "DDL apply drops dependent plans");
}

#[test]
fn reset_from_images_replaces_catalog_and_views() {
    let mut e = volatile();
    e.execute_script(
        "CREATE TABLE old (x int); INSERT INTO old VALUES (9); \
         CREATE VIEW ov AS SELECT x FROM old;",
    )
    .unwrap();
    e.prepare_cached("SELECT x FROM old").unwrap();

    let image = TableImage {
        name: "fresh".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Serial, DataType::Text],
        serial_next: vec![(0, 3)],
        rows: vec![
            vec![Value::Int(1), Value::text("a")],
            vec![Value::Int(2), Value::Null],
        ],
    };
    e.reset_from_images(vec![image]).unwrap();

    assert!(e.catalog().table("old").is_none());
    assert!(e.catalog().view_names().is_empty());
    assert_eq!(e.plan_cache_len(), 0, "bootstrap drops every cached plan");
    let rel = e.query("SELECT ctid, id FROM fresh ORDER BY id").unwrap();
    assert_eq!(rel.rows.len(), 2);
    assert_eq!(
        e.catalog().table("fresh").unwrap().serial_next,
        vec![(0, 3)]
    );
}

#[test]
fn auto_checkpoint_fires_on_wal_growth() {
    let dir = tmp_dir("autockpt");
    let mut e = Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
    e.set_auto_checkpoint_wal_bytes(Some(512));
    e.execute("CREATE TABLE t (id serial, v text)").unwrap();
    for i in 0..64 {
        e.execute(&format!("INSERT INTO t (v) VALUES ('row-{i:04}')"))
            .unwrap();
    }
    assert!(e.auto_checkpoints() > 0, "threshold crossed at least once");
    let wal_bytes = e.storage_stats().unwrap().wal.bytes;
    assert!(
        wal_bytes < 512 + 256,
        "WAL stays near the budget, got {wal_bytes}"
    );
    // The compacted state still recovers exactly.
    drop(e);
    let mut e2 = Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
    let rel = e2.query("SELECT count(*) AS n FROM t").unwrap();
    assert_eq!(rel.rows[0][0], Value::Int(64));
}

#[test]
fn auto_checkpoint_disabled_by_default_and_on_volatile() {
    let dir = tmp_dir("autockpt-off");
    let mut e = Engine::open_durable(EngineProfile::in_memory(), &dir, FsyncPolicy::Off).unwrap();
    e.execute("CREATE TABLE t (a int)").unwrap();
    for _ in 0..32 {
        e.execute("INSERT INTO t VALUES (1)").unwrap();
    }
    assert_eq!(e.auto_checkpoints(), 0);
    assert_eq!(e.storage_stats().unwrap().checkpoints, 0);

    let mut v = volatile();
    v.set_auto_checkpoint_wal_bytes(Some(1));
    v.execute("CREATE TABLE t (a int)").unwrap();
    v.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(v.auto_checkpoints(), 0, "nothing to checkpoint");
}
