//! Differential fuzzing: the row and columnar engines must answer every
//! query identically — same rows, same order, same errors.
//!
//! A seeded [`Prng`] generates NULL-heavy tables and random SELECTs over
//! filters, projections, joins, aggregates, DISTINCT, ORDER BY, and LIMIT;
//! each query runs once per execution mode on the same engine and the
//! results are compared byte-for-byte (`Debug` of the relation rows). Both
//! engine personalities run, so the fenced-CTE and inlined-CTE planners are
//! each covered.

use etypes::Prng;
use sqlengine::{Engine, EngineProfile, ExecMode};

const ROWS_T1: usize = 240;
const ROWS_T2: usize = 90;

fn seed_engine(profile: EngineProfile, rng: &mut Prng) -> Engine {
    let mut e = Engine::new(profile);
    e.execute_script(
        "CREATE TABLE t1 (a int, b int, c float, d text);
         CREATE TABLE t2 (k int, v int, w text);",
    )
    .unwrap();
    let mut inserts = String::from("INSERT INTO t1 VALUES ");
    for i in 0..ROWS_T1 {
        if i > 0 {
            inserts.push_str(", ");
        }
        let a = if rng.chance(0.25) {
            "NULL".to_string()
        } else {
            rng.range_i64(-8, 20).to_string()
        };
        let b = if rng.chance(0.3) {
            "NULL".to_string()
        } else {
            rng.range_i64(0, 6).to_string()
        };
        let c = if rng.chance(0.25) {
            "NULL".to_string()
        } else {
            format!("{:.3}", rng.range_f64(-4.0, 9.0))
        };
        let d = if rng.chance(0.3) {
            "NULL".to_string()
        } else {
            format!("'s{}'", rng.below(5))
        };
        inserts.push_str(&format!("({a}, {b}, {c}, {d})"));
    }
    e.execute(&inserts).unwrap();
    let mut inserts = String::from("INSERT INTO t2 VALUES ");
    for j in 0..ROWS_T2 {
        if j > 0 {
            inserts.push_str(", ");
        }
        let k = if rng.chance(0.2) {
            "NULL".to_string()
        } else {
            rng.range_i64(-8, 20).to_string()
        };
        let v = if rng.chance(0.3) {
            "NULL".to_string()
        } else {
            rng.range_i64(-5, 5).to_string()
        };
        let w = if rng.chance(0.25) {
            "NULL".to_string()
        } else {
            format!("'w{}'", rng.below(4))
        };
        inserts.push_str(&format!("({k}, {v}, {w})"));
    }
    e.execute(&inserts).unwrap();
    e
}

fn gen_num(rng: &mut Prng, depth: usize) -> String {
    if depth == 0 || rng.chance(0.4) {
        return match rng.below(3) {
            0 => "a".to_string(),
            1 => "b".to_string(),
            _ => rng.range_i64(-5, 10).to_string(),
        };
    }
    let l = gen_num(rng, depth - 1);
    let r = gen_num(rng, depth - 1);
    match rng.below(4) {
        0 => format!("({l} + {r})"),
        1 => format!("({l} - {r})"),
        2 => format!("({l} * {r})"),
        _ => format!("(CASE WHEN {} THEN {l} ELSE {r} END)", gen_pred(rng, 1)),
    }
}

fn gen_pred(rng: &mut Prng, depth: usize) -> String {
    if depth == 0 || rng.chance(0.35) {
        return match rng.below(6) {
            0 => format!("{} > {}", gen_num(rng, 1), gen_num(rng, 1)),
            1 => format!("{} <= {}", gen_num(rng, 1), gen_num(rng, 1)),
            2 => format!("{} = {}", gen_num(rng, 1), gen_num(rng, 1)),
            3 => format!("c < {:.2}", rng.range_f64(-2.0, 6.0)),
            4 => format!("d = 's{}'", rng.below(5)),
            _ => match rng.below(3) {
                0 => "a IS NULL".to_string(),
                1 => "c IS NOT NULL".to_string(),
                _ => format!("b IN ({}, NULL, {})", rng.below(4), rng.below(6)),
            },
        };
    }
    let l = gen_pred(rng, depth - 1);
    let r = gen_pred(rng, depth - 1);
    match rng.below(3) {
        0 => format!("({l} AND {r})"),
        1 => format!("({l} OR {r})"),
        _ => format!("NOT ({l})"),
    }
}

fn gen_query(rng: &mut Prng) -> String {
    match rng.below(6) {
        // Filter + project over t1.
        0 => format!(
            "SELECT {} AS x, {} AS y, d FROM t1 WHERE {}",
            gen_num(rng, 2),
            gen_num(rng, 2),
            gen_pred(rng, 2),
        ),
        // Join (equi, all supported kinds) with residual-ish predicates.
        1 => {
            let kind = ["INNER", "LEFT", "RIGHT", "FULL"][rng.below(4)];
            format!(
                "SELECT t1.a, t1.d, t2.v, t2.w FROM t1 {kind} JOIN t2 ON t1.a = t2.k WHERE {}",
                gen_pred(rng, 1),
            )
        }
        // Grouped aggregate.
        2 => format!(
            "SELECT b, count(*) AS n, sum(a) AS s, avg(c) AS m, min(a) AS lo, max(c) AS hi \
             FROM t1 WHERE {} GROUP BY b",
            gen_pred(rng, 2),
        ),
        // Global aggregate (possibly over an empty filter result).
        3 => format!(
            "SELECT count(*) AS n, sum({}) AS s FROM t1 WHERE {}",
            gen_num(rng, 2),
            gen_pred(rng, 2),
        ),
        // DISTINCT + ORDER BY + LIMIT.
        4 => format!(
            "SELECT DISTINCT b, d FROM t1 WHERE {} ORDER BY b, d LIMIT {}",
            gen_pred(rng, 2),
            rng.below(8) + 1,
        ),
        // CTE over a join, aggregated.
        _ => "WITH j AS (SELECT t1.b AS b, t2.v AS v FROM t1 INNER JOIN t2 ON t1.a = t2.k) \
              SELECT b, count(*) AS n, sum(v) AS s FROM j GROUP BY b ORDER BY b LIMIT 10"
            .to_string(),
    }
}

/// Run one SQL text under a mode; errors collapse to their display text so
/// both engines must fail identically too.
fn run(e: &mut Engine, mode: ExecMode, sql: &str) -> String {
    e.set_exec_mode(mode);
    match e.query(sql) {
        Ok(rel) => format!("{:?}|{:?}", rel.columns, rel.rows),
        Err(err) => format!("ERR {err}"),
    }
}

fn diff_profile(profile: EngineProfile, seed: u64, queries: usize) {
    let mut rng = Prng::new(seed);
    let mut e = seed_engine(profile, &mut rng);
    for q in 0..queries {
        let sql = gen_query(&mut rng);
        let row = run(&mut e, ExecMode::Row, &sql);
        let col = run(&mut e, ExecMode::Columnar, &sql);
        assert_eq!(row, col, "query {q} diverged (columnar): {sql}");
        let auto = run(&mut e, ExecMode::Auto, &sql);
        assert_eq!(row, auto, "query {q} diverged (auto): {sql}");
    }
    // The comparison is only meaningful if the columnar engine actually ran
    // vectorized operators rather than falling back wholesale.
    assert!(
        e.stats().batches_executed > 0,
        "columnar runs produced no batches"
    );
}

#[test]
fn row_and_columnar_agree_disk_profile() {
    diff_profile(EngineProfile::disk_based_no_latency(), 0xE1E9_0001, 150);
}

#[test]
fn row_and_columnar_agree_in_memory_profile() {
    diff_profile(EngineProfile::in_memory(), 0xE1E9_0002, 150);
}

/// Lazy AND must not evaluate the right side for short-circuited rows: a
/// division that would blow up on b = 0 is guarded by `b <> 0`.
#[test]
fn columnar_preserves_lazy_and_semantics() {
    let mut rng = Prng::new(7);
    let mut e = seed_engine(EngineProfile::in_memory(), &mut rng);
    e.execute("INSERT INTO t1 VALUES (3, 0, 1.0, 'z')").unwrap();
    let sql = "SELECT a, b FROM t1 WHERE b <> 0 AND a / b > 1";
    let row = run(&mut e, ExecMode::Row, sql);
    let col = run(&mut e, ExecMode::Columnar, sql);
    assert!(!row.starts_with("ERR"), "guarded division ran: {row}");
    assert_eq!(row, col);
}

/// Unvectorized operators (window functions, unnest, cross joins) bridge
/// back to the row engine and still answer identically.
#[test]
fn fallback_bridge_matches_row_engine() {
    let mut rng = Prng::new(11);
    let mut e = seed_engine(EngineProfile::in_memory(), &mut rng);
    for sql in [
        "SELECT a, ROW_NUMBER() OVER (ORDER BY a) AS rn FROM t1 WHERE a IS NOT NULL LIMIT 20",
        "SELECT t1.a, t2.v FROM t1 CROSS JOIN t2 WHERE t1.a = 1 AND t2.v = 2",
        "SELECT u FROM unnest(array[1, 2, 3]) AS u",
    ] {
        let row = run(&mut e, ExecMode::Row, sql);
        let col = run(&mut e, ExecMode::Columnar, sql);
        assert_eq!(row, col, "fallback diverged: {sql}");
    }
}
