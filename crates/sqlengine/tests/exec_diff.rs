//! Differential fuzzing: the row and columnar engines must answer every
//! query identically — same rows, same order, same errors.
//!
//! The seeded corpus generator lives in [`sqlengine::fuzz`] (it is shared
//! with the sharded-routing differential test in `elephant-server`): a
//! [`Prng`] builds NULL-heavy tables and random SELECTs over filters,
//! projections, joins, aggregates, DISTINCT, ORDER BY, and LIMIT; each
//! query runs once per execution mode on the same engine and the results
//! are compared byte-for-byte (`Debug` of the relation rows). Both engine
//! personalities run, so the fenced-CTE and inlined-CTE planners are each
//! covered.

use etypes::Prng;
use sqlengine::fuzz::{gen_query, seed_statements};
use sqlengine::{Engine, EngineProfile, ExecMode};

fn seed_engine(profile: EngineProfile, rng: &mut Prng) -> Engine {
    let mut e = Engine::new(profile);
    for stmt in seed_statements(rng) {
        e.execute(&stmt).unwrap();
    }
    e
}

/// Run one SQL text under a mode; errors collapse to their display text so
/// both engines must fail identically too.
fn run(e: &mut Engine, mode: ExecMode, sql: &str) -> String {
    e.set_exec_mode(mode);
    match e.query(sql) {
        Ok(rel) => format!("{:?}|{:?}", rel.columns, rel.rows),
        Err(err) => format!("ERR {err}"),
    }
}

fn diff_profile(profile: EngineProfile, seed: u64, queries: usize) {
    let mut rng = Prng::new(seed);
    let mut e = seed_engine(profile, &mut rng);
    for q in 0..queries {
        let sql = gen_query(&mut rng);
        let row = run(&mut e, ExecMode::Row, &sql);
        let col = run(&mut e, ExecMode::Columnar, &sql);
        assert_eq!(row, col, "query {q} diverged (columnar): {sql}");
        let auto = run(&mut e, ExecMode::Auto, &sql);
        assert_eq!(row, auto, "query {q} diverged (auto): {sql}");
    }
    // The comparison is only meaningful if the columnar engine actually ran
    // vectorized operators rather than falling back wholesale.
    assert!(
        e.stats().batches_executed > 0,
        "columnar runs produced no batches"
    );
}

#[test]
fn row_and_columnar_agree_disk_profile() {
    diff_profile(EngineProfile::disk_based_no_latency(), 0xE1E9_0001, 150);
}

#[test]
fn row_and_columnar_agree_in_memory_profile() {
    diff_profile(EngineProfile::in_memory(), 0xE1E9_0002, 150);
}

/// Lazy AND must not evaluate the right side for short-circuited rows: a
/// division that would blow up on b = 0 is guarded by `b <> 0`.
#[test]
fn columnar_preserves_lazy_and_semantics() {
    let mut rng = Prng::new(7);
    let mut e = seed_engine(EngineProfile::in_memory(), &mut rng);
    e.execute("INSERT INTO t1 VALUES (3, 0, 1.0, 'z')").unwrap();
    let sql = "SELECT a, b FROM t1 WHERE b <> 0 AND a / b > 1";
    let row = run(&mut e, ExecMode::Row, sql);
    let col = run(&mut e, ExecMode::Columnar, sql);
    assert!(!row.starts_with("ERR"), "guarded division ran: {row}");
    assert_eq!(row, col);
}

/// Unvectorized operators (window functions, unnest, cross joins) bridge
/// back to the row engine and still answer identically.
#[test]
fn fallback_bridge_matches_row_engine() {
    let mut rng = Prng::new(11);
    let mut e = seed_engine(EngineProfile::in_memory(), &mut rng);
    for sql in [
        "SELECT a, ROW_NUMBER() OVER (ORDER BY a) AS rn FROM t1 WHERE a IS NOT NULL LIMIT 20",
        "SELECT t1.a, t2.v FROM t1 CROSS JOIN t2 WHERE t1.a = 1 AND t2.v = 2",
        "SELECT u FROM unnest(array[1, 2, 3]) AS u",
    ] {
        let row = run(&mut e, ExecMode::Row, sql);
        let col = run(&mut e, ExecMode::Columnar, sql);
        assert_eq!(row, col, "fallback diverged: {sql}");
    }
}
