//! Two-phase-commit participant hooks: prepare/commit/abort semantics,
//! in-doubt recovery, and fault injection on the new WAL edges.
//!
//! Fault-arming tests serialize on `TEST_LOCK` because the fault registry
//! is process-global.

use etypes::fault;
use etypes::Value;
use sqlengine::{Engine, EngineProfile, FsyncPolicy, Health, SqlError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear_all();
    guard
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eltxn-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(dir: &PathBuf) -> Engine {
    Engine::open_durable(EngineProfile::in_memory(), dir, FsyncPolicy::Always).unwrap()
}

fn count(e: &mut Engine, table: &str) -> i64 {
    let rel = e
        .query(&format!("SELECT count(*) AS n FROM {table}"))
        .unwrap();
    match rel.rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("count returned {v:?}"),
    }
}

#[test]
fn prepared_then_committed_survives_restart() {
    let _g = locked();
    let dir = tmp_dir("commit");
    {
        let mut e = durable(&dir);
        e.execute("CREATE TABLE t (a int)").unwrap();
        let rows = e
            .prepare_txn(1, "INSERT INTO t VALUES (1), (2); INSERT INTO t VALUES (3)")
            .unwrap();
        assert_eq!(rows, 3);
        assert_eq!(e.prepared_txn_id(), Some(1));
        assert_eq!(count(&mut e, "t"), 3, "effects visible while prepared");
        e.commit_prepared(1).unwrap();
        assert_eq!(e.prepared_txn_id(), None);
    }
    let mut e = durable(&dir);
    assert_eq!(count(&mut e, "t"), 3);
    let report = e.recovery_report().unwrap();
    assert_eq!(report.txn_committed, 1);
}

#[test]
fn aborted_txn_unwinds_memory_and_disk() {
    let _g = locked();
    let dir = tmp_dir("abort");
    {
        let mut e = durable(&dir);
        e.execute_script("CREATE TABLE t (a int); INSERT INTO t VALUES (0)")
            .unwrap();
        e.prepare_txn(1, "INSERT INTO t VALUES (1); CREATE TABLE u (b int)")
            .unwrap();
        assert_eq!(count(&mut e, "t"), 2);
        e.abort_prepared(1).unwrap();
        assert_eq!(count(&mut e, "t"), 1, "insert unwound");
        assert!(
            e.execute("SELECT * FROM u").is_err(),
            "created table unwound"
        );
        assert_eq!(*e.health(), Health::Healthy, "abort is not a failure");
    }
    let mut e = durable(&dir);
    assert_eq!(count(&mut e, "t"), 1);
    assert_eq!(e.recovery_report().unwrap().txn_aborted, 1);
}

#[test]
fn in_doubt_txn_presumed_aborted_then_committed_by_decision() {
    let _g = locked();
    let dir = tmp_dir("indoubt");
    {
        let mut e = durable(&dir);
        e.execute("CREATE TABLE t (a int)").unwrap();
        e.prepare_txn(9, "INSERT INTO t VALUES (1)").unwrap();
        // Crash while in-doubt: drop without a decision.
    }
    // No decision map: presumed abort.
    {
        let mut e = durable(&dir);
        assert_eq!(count(&mut e, "t"), 0);
        assert_eq!(e.recovery_report().unwrap().txn_indoubt_aborted, 1);
    }
    // A second in-doubt group, this time resolved by a commit decision.
    {
        let mut e = durable(&dir);
        e.prepare_txn(10, "INSERT INTO t VALUES (2)").unwrap();
    }
    let mut e = Engine::open_durable_with_decisions(
        EngineProfile::in_memory(),
        &dir,
        FsyncPolicy::Always,
        HashMap::from([(10, true)]),
    )
    .unwrap();
    assert_eq!(count(&mut e, "t"), 1);
    assert_eq!(e.recovery_report().unwrap().txn_indoubt_committed, 1);
}

#[test]
fn failed_statement_mid_prepare_unwinds_earlier_statements() {
    let _g = locked();
    let dir = tmp_dir("midfail");
    let mut e = durable(&dir);
    e.execute("CREATE TABLE t (a int)").unwrap();
    let err = e.prepare_txn(2, "INSERT INTO t VALUES (1); INSERT INTO nope VALUES (2)");
    assert!(err.is_err());
    assert_eq!(e.prepared_txn_id(), None);
    assert_eq!(count(&mut e, "t"), 0, "first statement unwound");
    assert_eq!(*e.health(), Health::Healthy);
    // The engine stays fully usable.
    e.execute("INSERT INTO t VALUES (7)").unwrap();
    assert_eq!(count(&mut e, "t"), 1);
}

#[test]
fn volatile_engine_supports_prepare_and_abort() {
    let _g = locked();
    let mut e = Engine::new(EngineProfile::in_memory());
    e.execute("CREATE TABLE t (a int)").unwrap();
    e.prepare_txn(1, "INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(count(&mut e, "t"), 1);
    e.abort_prepared(1).unwrap();
    assert_eq!(count(&mut e, "t"), 0, "volatile abort unwinds memory");
    e.prepare_txn(2, "INSERT INTO t VALUES (2)").unwrap();
    e.commit_prepared(2).unwrap();
    assert_eq!(count(&mut e, "t"), 1);
}

#[test]
fn second_prepare_and_mismatched_outcomes_are_refused() {
    let _g = locked();
    let dir = tmp_dir("guards");
    let mut e = durable(&dir);
    e.execute("CREATE TABLE t (a int)").unwrap();
    e.prepare_txn(1, "INSERT INTO t VALUES (1)").unwrap();
    assert!(e.prepare_txn(2, "INSERT INTO t VALUES (2)").is_err());
    assert!(e.commit_prepared(99).is_err(), "wrong id refused");
    assert!(e.abort_prepared(99).is_err());
    assert!(
        e.checkpoint().is_err(),
        "checkpoint refused while undecided"
    );
    e.commit_prepared(1).unwrap();
    assert_eq!(count(&mut e, "t"), 1);
    e.checkpoint().unwrap().unwrap();
}

#[test]
fn failed_prepare_fsync_unwinds_and_degrades() {
    let _g = locked();
    let dir = tmp_dir("prepfault");
    let mut e = durable(&dir);
    e.execute("CREATE TABLE t (a int)").unwrap();
    fault::configure("txn.prepare_fsync=error_once").unwrap();
    let err = e.prepare_txn(1, "INSERT INTO t VALUES (1)");
    fault::clear("txn.prepare_fsync");
    assert!(matches!(err, Err(SqlError::Storage(_))));
    assert_eq!(e.prepared_txn_id(), None);
    assert!(matches!(e.health(), Health::ReadOnly { .. }));
    // Reads still serve; the unwound insert is gone.
    assert_eq!(count(&mut e, "t"), 0);
    // Checkpoint re-arms, writes work again.
    e.checkpoint().unwrap().unwrap();
    e.execute("INSERT INTO t VALUES (5)").unwrap();
    assert_eq!(count(&mut e, "t"), 1);
}

#[test]
fn failed_commit_marker_keeps_memory_and_recovery_completes() {
    let _g = locked();
    let dir = tmp_dir("commitfault");
    {
        let mut e = durable(&dir);
        e.execute("CREATE TABLE t (a int)").unwrap();
        e.prepare_txn(4, "INSERT INTO t VALUES (1)").unwrap();
        fault::configure("txn.commit_append=error_once").unwrap();
        let err = e.commit_prepared(4);
        fault::clear("txn.commit_append");
        assert!(err.is_err());
        assert_eq!(
            count(&mut e, "t"),
            1,
            "decision was commit: effects are kept"
        );
        assert!(matches!(e.health(), Health::ReadOnly { .. }));
    }
    // The group is in-doubt on disk; the coordinator's decision completes it.
    let mut e = Engine::open_durable_with_decisions(
        EngineProfile::in_memory(),
        &dir,
        FsyncPolicy::Always,
        HashMap::from([(4, true)]),
    )
    .unwrap();
    assert_eq!(count(&mut e, "t"), 1);
    assert_eq!(e.recovery_report().unwrap().txn_indoubt_committed, 1);
}
