//! Columnar-execution observability: exact `EXPLAIN ANALYZE` cardinalities
//! (rows *and* batches) under both engine personalities, engine counters,
//! Auto-mode dispatch, and mode-keyed plan caching.

use sqlengine::{Engine, EngineProfile, ExecMode};

const N: usize = 1500; // > one 1024-row batch, < two full batches

fn seed(profile: EngineProfile) -> Engine {
    let mut e = Engine::new(profile);
    e.execute("CREATE TABLE t (a int, b int)").unwrap();
    let mut insert = String::from("INSERT INTO t VALUES ");
    for i in 0..N {
        if i > 0 {
            insert.push_str(", ");
        }
        insert.push_str(&format!("({i}, {})", i % 7));
    }
    e.execute(&insert).unwrap();
    e
}

/// Exact per-operator rows and batches in columnar mode; the same plan in
/// row mode must not report batches at all.
fn batches_are_exact(profile: EngineProfile) {
    let mut e = seed(profile);
    let sql = "SELECT a * 2 AS d FROM t WHERE a < 10";

    e.set_exec_mode(ExecMode::Columnar);
    let (_, prof) = e.query_profiled(sql).unwrap();
    let scan = prof.find("Scan Table t").unwrap();
    assert_eq!(scan.rows, N as u64);
    assert_eq!(scan.batches, Some(2), "1500 rows = 2 batches of <=1024");
    let filter = prof.find("Filter").unwrap();
    assert_eq!(filter.rows, 10);
    // Every survivor sits in the first input batch; the second batch
    // filters to nothing and is dropped, not emitted empty.
    assert_eq!(filter.batches, Some(1));
    let project = prof.find("Project").unwrap();
    assert_eq!(project.rows, 10);
    assert_eq!(project.batches, Some(1));
    let rendered = prof.render();
    assert!(
        rendered.contains(&format!("Scan Table t cols=1 (rows={N} batches=2 time=")),
        "{rendered}"
    );

    e.set_exec_mode(ExecMode::Row);
    let (_, prof) = e.query_profiled(sql).unwrap();
    assert_eq!(prof.find("Scan Table t").unwrap().rows, N as u64);
    for op in &prof.ops {
        assert_eq!(op.batches, None, "row mode reported batches: {}", op.label);
    }
    assert!(!prof.render().contains("batches="), "{}", prof.render());
}

#[test]
fn batches_are_exact_disk_profile() {
    batches_are_exact(EngineProfile::disk_based_no_latency());
}

#[test]
fn batches_are_exact_in_memory_profile() {
    batches_are_exact(EngineProfile::in_memory());
}

/// A materialized CTE (the disk personality's fence) is itself executed
/// batch-at-a-time and reports batches on its head line; the inlined
/// personality never materializes it in the first place.
#[test]
fn cte_personalities_report_batches() {
    let sql = "WITH c AS (SELECT a FROM t WHERE a < 1200) SELECT count(*) AS n FROM c";

    let mut fenced = seed(EngineProfile::disk_based_no_latency());
    fenced.set_exec_mode(ExecMode::Columnar);
    let (rel, prof) = fenced.query_profiled(sql).unwrap();
    assert_eq!(rel.rows[0][0], etypes::Value::Int(1200));
    let cte = prof.find("CTE 0 [c] (materialized)").unwrap();
    assert_eq!(cte.rows, 1200);
    assert_eq!(cte.batches, Some(2), "1200 CTE rows = 2 batches");
    let scan_cte = prof.find("Scan CTE 0").unwrap();
    assert_eq!(scan_cte.rows, 1200);
    assert_eq!(scan_cte.batches, Some(2));

    let mut inlined = seed(EngineProfile::in_memory());
    inlined.set_exec_mode(ExecMode::Columnar);
    let (rel, prof) = inlined.query_profiled(sql).unwrap();
    assert_eq!(rel.rows[0][0], etypes::Value::Int(1200));
    assert!(
        prof.find("CTE 0").is_none(),
        "inlined personality fences no CTE"
    );
    let scan = prof.find("Scan Table t").unwrap();
    assert_eq!(scan.rows, N as u64);
    assert_eq!(scan.batches, Some(2));
}

/// A fallback subtree (window function) runs on the row engine — no batches
/// on its operators — while vectorized operators above it still report
/// batches; the bridge is counted once.
#[test]
fn fallback_subtree_reports_no_batches() {
    let mut e = seed(EngineProfile::in_memory());
    e.set_exec_mode(ExecMode::Columnar);
    let before = e.stats().colexec_fallbacks;
    let (_, prof) = e
        .query_profiled(
            "SELECT rn FROM (SELECT a, ROW_NUMBER() OVER (ORDER BY a) AS rn FROM t) AS s \
             WHERE rn <= 5",
        )
        .unwrap();
    assert_eq!(e.stats().colexec_fallbacks, before + 1);
    let window = prof.find("WindowRowNumber").unwrap();
    assert_eq!(window.rows, N as u64);
    assert_eq!(window.batches, None, "row-engine subtree has no batches");
    let filter = prof.find("Filter").unwrap();
    assert_eq!(filter.rows, 5);
    assert!(
        filter.batches.is_some(),
        "vectorized parent reports batches"
    );
}

/// Engine counters: columnar runs count batches, row runs never do, and
/// Auto only chooses columnar for fully vectorized plans.
#[test]
fn exec_stats_and_auto_dispatch() {
    let mut e = seed(EngineProfile::in_memory());
    e.query("SELECT sum(a) AS s FROM t").unwrap();
    assert_eq!(e.stats().batches_executed, 0, "row mode is the default");

    e.set_exec_mode(ExecMode::Auto);
    e.query("SELECT sum(a) AS s FROM t WHERE b = 3").unwrap();
    let after_auto = e.stats().batches_executed;
    assert!(
        after_auto > 0,
        "fully vectorized plan runs columnar in auto"
    );
    assert_eq!(e.stats().colexec_fallbacks, 0);

    // A window function makes the plan not fully vectorized: Auto uses the
    // row engine outright instead of paying the bridge.
    e.query("SELECT a, ROW_NUMBER() OVER (ORDER BY a) AS rn FROM t LIMIT 3")
        .unwrap();
    assert_eq!(e.stats().batches_executed, after_auto);
    assert_eq!(e.stats().colexec_fallbacks, 0);
}

/// The plan cache is keyed by (mode, sql): switching modes re-plans rather
/// than reusing the other mode's entry.
#[test]
fn plan_cache_is_mode_keyed() {
    let mut e = seed(EngineProfile::in_memory());
    let sql = "SELECT count(*) AS n FROM t WHERE a < 100";
    e.query_cached(sql).unwrap();
    e.query_cached(sql).unwrap();
    assert_eq!(e.plan_cache_stats().hits, 1);
    assert_eq!(e.plan_cache_stats().misses, 1);

    e.set_exec_mode(ExecMode::Columnar);
    let rel = e.query_cached(sql).unwrap();
    assert_eq!(rel.rows[0][0], etypes::Value::Int(100));
    assert_eq!(e.plan_cache_stats().misses, 2, "new mode, new entry");
    e.query_cached(sql).unwrap();
    assert_eq!(e.plan_cache_stats().hits, 2);
    assert_eq!(e.plan_cache_len(), 2);
}

#[test]
fn exec_mode_parses_and_renders() {
    assert_eq!("row".parse::<ExecMode>().unwrap(), ExecMode::Row);
    assert_eq!("COLUMNAR".parse::<ExecMode>().unwrap(), ExecMode::Columnar);
    assert_eq!("Auto".parse::<ExecMode>().unwrap(), ExecMode::Auto);
    assert!("vectorized".parse::<ExecMode>().is_err());
    assert_eq!(ExecMode::Columnar.to_string(), "columnar");
    assert_eq!(ExecMode::default(), ExecMode::Row);
}
