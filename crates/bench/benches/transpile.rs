//! Microbenchmark counterpart of Table 3: transpilation time per pipeline
//! and target mode. The paper reports 17–134 ms (CPython); the Rust pipeline
//! capture + SQL generation is far below that, but the *relative* shape
//! (healthcare/compas > adult; +inspection > +sklearn > pandas) holds.

use bench::data::pipeline_files_cached;
use bench::microbench::Group;
use mlinspect::backends::pandas::FileRegistry;
use mlinspect::backends::sql::SqlBackend;
use mlinspect::capture::capture_with_seed;
use mlinspect::pipelines;
use mlinspect::sqlgen::SqlMode;

fn registry(pipeline: &str) -> FileRegistry {
    let mut files = FileRegistry::new();
    for (name, content) in pipeline_files_cached(pipeline, 200, 97) {
        files.insert(name, content);
    }
    files
}

fn source(pipeline: &str) -> &'static str {
    match pipeline {
        "healthcare" => pipelines::HEALTHCARE,
        "compas" => pipelines::COMPAS,
        "adult_simple" => pipelines::ADULT_SIMPLE,
        "adult_complex" => pipelines::ADULT_COMPLEX,
        _ => unreachable!(),
    }
}

fn bench_transpile() {
    let mut group = Group::new("transpile");
    for pipeline in ["healthcare", "compas", "adult_simple", "adult_complex"] {
        let files = registry(pipeline);
        let src = source(pipeline);
        for mode in [SqlMode::Cte, SqlMode::View] {
            group.bench_function(format!("{pipeline}/{mode:?}"), || {
                let captured = capture_with_seed(src, 0).unwrap();
                std::hint::black_box(SqlBackend::transpile(&captured.dag, &files, mode).unwrap());
            });
        }
    }
}

fn bench_capture() {
    let mut group = Group::new("capture");
    for pipeline in ["healthcare", "compas"] {
        let src = source(pipeline);
        group.bench_function(pipeline, || {
            std::hint::black_box(capture_with_seed(src, 0).unwrap());
        });
    }
}

fn main() {
    bench_transpile();
    bench_capture();
}
