//! Microbenchmarks of the durable storage layer: WAL append throughput
//! under each fsync policy, checkpointing, and cold-start recovery of a
//! 100k-row store from the WAL versus from a snapshot.

use bench::microbench::Group;
use elephant_store::{FsyncPolicy, Store, StoreConfig, TableImage, WalRecord};
use etypes::{DataType, Value};
use std::path::PathBuf;

const RECOVERY_ROWS: usize = 100_000;
const BATCH: usize = 1_000;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elephant-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf, fsync: FsyncPolicy) -> Store {
    let (store, _tables, _report) =
        Store::open(StoreConfig::new(dir).with_fsync(fsync)).expect("open store");
    store
}

fn schema_record() -> WalRecord {
    WalRecord::CreateTable {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Int, DataType::Int],
    }
}

fn batch(start: usize, n: usize) -> WalRecord {
    WalRecord::Insert {
        table: "t".into(),
        rows: (start..start + n)
            .map(|i| vec![Value::Int(i as i64), Value::Int((i % 997) as i64)])
            .collect(),
    }
}

/// Append cost of one 1000-row insert record per fsync policy. `always`
/// pays a real fsync per acknowledged record — that gap *is* the paper's
/// durability tax.
fn bench_wal_append() {
    let mut group = Group::new("wal_append_1k_rows");
    group.sample_size(10);
    for (label, fsync) in [
        ("fsync_off", FsyncPolicy::Off),
        ("fsync_every_100", FsyncPolicy::EveryN(100)),
        ("fsync_always", FsyncPolicy::Always),
    ] {
        let dir = fresh_dir(label);
        let mut store = open(&dir, fsync);
        store.log(&schema_record()).unwrap();
        let mut next = 0usize;
        group.bench_function(label, || {
            store.log(&batch(next, BATCH)).unwrap();
            next += BATCH;
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Checkpoint cost: folding a 100k-row table into a columnar snapshot.
fn bench_checkpoint() {
    let mut group = Group::new("checkpoint_100k_rows");
    group.sample_size(5);
    let dir = fresh_dir("checkpoint");
    let mut store = open(&dir, FsyncPolicy::Off);
    let image = TableImage {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Int, DataType::Int],
        serial_next: Vec::new(),
        rows: (0..RECOVERY_ROWS)
            .map(|i| vec![Value::Int(i as i64), Value::Int((i % 997) as i64)])
            .collect(),
    };
    group.bench_function("snapshot_write", || {
        std::hint::black_box(store.checkpoint(&[&image]).unwrap());
    });
    drop(group);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cold-start recovery of 100k rows: replaying the whole WAL versus
/// loading a snapshot with an empty WAL — the case `CHECKPOINT` buys.
fn bench_recovery() {
    let mut group = Group::new("recovery_100k_rows");
    group.sample_size(5);

    // Store A: everything still in the WAL.
    let wal_dir = fresh_dir("recover-wal");
    {
        let mut store = open(&wal_dir, FsyncPolicy::Off);
        store.log(&schema_record()).unwrap();
        for start in (0..RECOVERY_ROWS).step_by(BATCH) {
            store.log(&batch(start, BATCH)).unwrap();
        }
    }
    group.bench_function("wal_replay", || {
        let (_store, tables, report) =
            Store::open(StoreConfig::new(&wal_dir).with_fsync(FsyncPolicy::Off)).unwrap();
        assert_eq!(tables[0].rows.len(), RECOVERY_ROWS);
        std::hint::black_box(report);
    });

    // Store B: same rows, but checkpointed into a snapshot first.
    let snap_dir = fresh_dir("recover-snap");
    {
        let mut store = open(&snap_dir, FsyncPolicy::Off);
        store.log(&schema_record()).unwrap();
        for start in (0..RECOVERY_ROWS).step_by(BATCH) {
            store.log(&batch(start, BATCH)).unwrap();
        }
    }
    {
        let (mut store, tables, _report) =
            Store::open(StoreConfig::new(&snap_dir).with_fsync(FsyncPolicy::Off)).unwrap();
        let refs: Vec<&TableImage> = tables.iter().collect();
        store.checkpoint(&refs).unwrap();
    }
    group.bench_function("snapshot_load", || {
        let (_store, tables, report) =
            Store::open(StoreConfig::new(&snap_dir).with_fsync(FsyncPolicy::Off)).unwrap();
        assert_eq!(tables[0].rows.len(), RECOVERY_ROWS);
        std::hint::black_box(report);
    });

    drop(group);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

fn main() {
    bench_wal_append();
    bench_checkpoint();
    bench_recovery();
}
