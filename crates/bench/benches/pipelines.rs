//! Microbenchmark counterpart of Figure 7 at one fixed size: each pipeline's
//! preprocessing phase on the baseline and the two engine profiles.

use bench::microbench::Group;
use bench::{run_once, Phase, Target};

const ROWS: usize = 2_000;

fn bench_phase(phase: Phase) {
    let mut group = Group::new(phase.name());
    group.sample_size(10);
    for pipeline in ["healthcare", "compas", "adult simple", "adult complex"] {
        for target in [Target::Pandas, Target::PgViewMat, Target::UmbraCte] {
            let label = format!("{}/{}", pipeline.replace(' ', "_"), target.name());
            group.bench_function(label, || {
                std::hint::black_box(run_once(pipeline, phase, target, ROWS, 0));
            });
        }
    }
}

fn main() {
    bench_phase(Phase::PandasOnly);
    bench_phase(Phase::Preprocessing);
    bench_phase(Phase::Inspection);
}
