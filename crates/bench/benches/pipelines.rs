//! Criterion counterpart of Figure 7 at one fixed size: each pipeline's
//! preprocessing phase on the baseline and the two engine profiles.

use bench::{run_once, Phase, Target};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ROWS: usize = 2_000;

fn bench_phase(c: &mut Criterion, phase: Phase) {
    let mut group = c.benchmark_group(phase.name());
    group.sample_size(10);
    for pipeline in ["healthcare", "compas", "adult simple", "adult complex"] {
        for target in [Target::Pandas, Target::PgViewMat, Target::UmbraCte] {
            let label = format!("{}/{}", pipeline.replace(' ', "_"), target.name());
            group.bench_with_input(BenchmarkId::from_parameter(label), &target, |b, t| {
                b.iter(|| run_once(pipeline, phase, *t, ROWS, 0))
            });
        }
    }
    group.finish();
}

fn bench_pandas_ops(c: &mut Criterion) {
    bench_phase(c, Phase::PandasOnly);
}

fn bench_preprocessing(c: &mut Criterion) {
    bench_phase(c, Phase::Preprocessing);
}

fn bench_inspection(c: &mut Criterion) {
    bench_phase(c, Phase::Inspection);
}

criterion_group!(benches, bench_pandas_ops, bench_preprocessing, bench_inspection);
criterion_main!(benches);
