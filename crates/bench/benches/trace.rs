//! Tracing-overhead benchmark: the gate for "always-on-cheap".
//!
//! Runs the same cached SELECT hot loop in three configurations —
//! phase tracing enabled (the default), tracing disabled, and the full
//! distributed-tracing path the sharded server drives per command
//! (install a query-id [`TraceContext`], run, drain the per-statement
//! phase spans) — and fails — exits non-zero — when either traced
//! configuration's median is more than [`MAX_OVERHEAD_PCT`] slower than
//! untraced. Also measures what `EXPLAIN ANALYZE` (per-operator
//! profiling) costs relative to a plain query. Writes the numbers to
//! `BENCH_trace.json` at the workspace root.
//!
//! Samples for the tracing configurations are interleaved so clock
//! drift and cache warm-up hit all sides equally.

use etypes::{next_span_id, TraceContext};
use sqlengine::{Engine, EngineProfile};
use std::time::Instant;

/// Tracing may not slow the hot query path by more than this.
const MAX_OVERHEAD_PCT: f64 = 5.0;

const ROWS: usize = 10_000;
const QUERY: &str =
    "SELECT grp, count(*) AS n, sum(v) AS s FROM t WHERE v >= 100 GROUP BY grp ORDER BY grp";
const SAMPLES: usize = 31;
const ITERS_PER_SAMPLE: u32 = 20;

fn build_engine() -> Engine {
    let mut engine = Engine::new(EngineProfile::in_memory());
    engine
        .execute("CREATE TABLE t (grp int, v int)")
        .expect("create");
    let mut values = String::from("INSERT INTO t VALUES ");
    for i in 0..ROWS {
        if i > 0 {
            values.push(',');
        }
        values.push_str(&format!("({}, {})", i % 7, (i * 37) % 1000));
    }
    engine.execute(&values).expect("insert");
    engine
}

/// One timed sample: `ITERS_PER_SAMPLE` runs of the hot query, ns/iter.
fn sample(engine: &mut Engine) -> u64 {
    let started = Instant::now();
    for _ in 0..ITERS_PER_SAMPLE {
        let rel = engine.query(QUERY).expect("query");
        assert_eq!(rel.rows.len(), 7);
    }
    started.elapsed().as_nanos() as u64 / u64::from(ITERS_PER_SAMPLE)
}

fn median(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn main() {
    let mut engine = build_engine();

    // Warm up: populate the plan cache and fault everything in.
    for _ in 0..20 {
        engine.query(QUERY).expect("warmup");
    }

    let mut on = Vec::with_capacity(SAMPLES);
    let mut off = Vec::with_capacity(SAMPLES);
    let mut propagated = Vec::with_capacity(SAMPLES);
    for round in 0..SAMPLES {
        engine.set_tracing(true);
        on.push(sample(&mut engine));
        engine.set_tracing(false);
        off.push(sample(&mut engine));
        // The sharded server's per-command ritual: install a query-scoped
        // context, execute, drain the phase spans for the span tree.
        engine.set_tracing(true);
        let started = Instant::now();
        for i in 0..ITERS_PER_SAMPLE {
            engine.set_trace_context(Some(TraceContext {
                query_id: (round as u64) * u64::from(ITERS_PER_SAMPLE) + u64::from(i) + 1,
                parent_span: next_span_id(),
            }));
            let rel = engine.query(QUERY).expect("query");
            assert_eq!(rel.rows.len(), 7);
            let spans = engine.take_phase_spans();
            assert!(!spans.is_empty(), "context run must surface phase spans");
        }
        propagated.push(started.elapsed().as_nanos() as u64 / u64::from(ITERS_PER_SAMPLE));
        engine.set_trace_context(None);
    }
    engine.set_tracing(true);

    let traced_ns = median(on);
    let untraced_ns = median(off);
    let propagated_ns = median(propagated);
    let overhead_pct = (traced_ns as f64 / untraced_ns as f64 - 1.0) * 100.0;
    let propagated_overhead_pct = (propagated_ns as f64 / untraced_ns as f64 - 1.0) * 100.0;

    // EXPLAIN ANALYZE pays per-operator profiling on top of execution.
    let analyze_ns = median(
        (0..SAMPLES)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..ITERS_PER_SAMPLE {
                    let text = engine.explain_analyze(QUERY).expect("analyze");
                    assert!(text.contains("Execution: rows=7"));
                }
                started.elapsed().as_nanos() as u64 / u64::from(ITERS_PER_SAMPLE)
            })
            .collect(),
    );
    let analyze_over_query_pct = (analyze_ns as f64 / traced_ns as f64 - 1.0) * 100.0;

    let phase_counts: Vec<String> = sqlengine::Phase::ALL
        .iter()
        .map(|p| format!("\"{}\": {}", p.name(), engine.trace().phase(*p).count()))
        .collect();

    println!("== trace_overhead ==");
    println!("query traced      : {traced_ns} ns/iter");
    println!("query untraced    : {untraced_ns} ns/iter");
    println!("query w/ query-id : {propagated_ns} ns/iter");
    println!("overhead          : {overhead_pct:.2}% (limit {MAX_OVERHEAD_PCT}%)");
    println!("query-id overhead : {propagated_overhead_pct:.2}% (limit {MAX_OVERHEAD_PCT}%)");
    println!("explain analyze   : {analyze_ns} ns/iter ({analyze_over_query_pct:+.2}% vs QUERY)");

    let json = format!(
        "{{\n  \"bench\": \"trace\",\n  \"rows\": {ROWS},\n  \"samples\": {SAMPLES},\n  \
         \"iters_per_sample\": {ITERS_PER_SAMPLE},\n  \"query_traced_ns\": {traced_ns},\n  \
         \"query_untraced_ns\": {untraced_ns},\n  \"query_propagated_ns\": {propagated_ns},\n  \
         \"tracing_overhead_pct\": {overhead_pct:.3},\n  \
         \"query_id_propagation_overhead_pct\": {propagated_overhead_pct:.3},\n  \
         \"overhead_limit_pct\": {MAX_OVERHEAD_PCT},\n  \"explain_analyze_ns\": {analyze_ns},\n  \
         \"explain_analyze_over_query_pct\": {analyze_over_query_pct:.3},\n  \
         \"phase_sample_counts\": {{ {} }}\n}}\n",
        phase_counts.join(", ")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let path = root.join("BENCH_trace.json");
    std::fs::write(&path, json).expect("write BENCH_trace.json");
    println!("wrote {}", path.display());

    if overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "FAIL: tracing overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget"
        );
        std::process::exit(1);
    }
    if propagated_overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "FAIL: query-id propagation overhead {propagated_overhead_pct:.2}% exceeds the \
             {MAX_OVERHEAD_PCT}% budget"
        );
        std::process::exit(1);
    }
}
