//! Row vs. columnar execution: the paired-ratio benchmark behind the
//! vectorized engine's performance claim.
//!
//! The same cached queries — filter, project, grouped aggregate, and an
//! equi-join — run over 100k-row datagen tables under `ExecMode::Row` and
//! `ExecMode::Columnar` on the same engine, with samples interleaved so
//! clock drift and cache warm-up hit both sides equally. Writes
//! `BENCH_exec.json` at the workspace root and fails — exits non-zero —
//! when the columnar engine is not at least [`MIN_SPEEDUP`]× faster on the
//! filter and aggregate workloads (the paper's batch-friendly shapes).

use etypes::CsvOptions;
use sqlengine::{Engine, EngineProfile, ExecMode};
use std::time::Instant;

/// Columnar must beat row-at-a-time by at least this factor on the gated
/// (filter, aggregate) workloads.
const MIN_SPEEDUP: f64 = 1.5;

const ROWS: usize = 100_000;
const SAMPLES: usize = 15;
const ITERS_PER_SAMPLE: u32 = 3;

struct Workload {
    name: &'static str,
    sql: &'static str,
    /// Gate `MIN_SPEEDUP` on this workload's ratio.
    gated: bool,
}

const WORKLOADS: [Workload; 4] = [
    Workload {
        name: "filter",
        sql: "SELECT passenger_count, trip_distance FROM taxi \
              WHERE trip_distance > 2.0 AND passenger_count = 1",
        gated: true,
    },
    Workload {
        name: "project",
        sql: "SELECT trip_distance * 1.609 AS km, fare_amount + 1.0 AS f, \
              \"PULocationID\" - \"DOLocationID\" AS hop FROM taxi",
        gated: false,
    },
    Workload {
        name: "agg",
        sql: "SELECT payment_type, count(*) AS n, sum(fare_amount) AS s, \
              avg(trip_distance) AS m FROM taxi GROUP BY payment_type",
        gated: true,
    },
    Workload {
        name: "join",
        sql: "SELECT p.race, h.smoker, h.complications FROM patients p \
              INNER JOIN histories h ON p.ssn = h.ssn \
              WHERE h.complications >= 2",
        gated: false,
    },
];

fn build_engine() -> Engine {
    let mut e = Engine::new(EngineProfile::in_memory());
    let opts = CsvOptions::default().with_na("?");
    e.execute(
        "CREATE TABLE taxi (\"VendorID\" int, passenger_count int, trip_distance float, \
         \"PULocationID\" int, \"DOLocationID\" int, payment_type int, fare_amount float)",
    )
    .expect("create taxi");
    e.copy_from_str("taxi", None, &datagen::taxi_csv(ROWS, 42), &opts)
        .expect("load taxi");
    e.execute(
        "CREATE TABLE patients (id int, first_name text, last_name text, race text, \
         county text, num_children int, income int, age_group text, ssn text)",
    )
    .expect("create patients");
    e.copy_from_str("patients", None, &datagen::patients_csv(ROWS, 42), &opts)
        .expect("load patients");
    e.execute("CREATE TABLE histories (smoker text, complications int, ssn text)")
        .expect("create histories");
    e.copy_from_str("histories", None, &datagen::histories_csv(ROWS, 42), &opts)
        .expect("load histories");
    e
}

/// One timed sample of a cached query under the engine's current mode,
/// ns/iter. Returns the row count too so both modes can be cross-checked.
fn sample(e: &mut Engine, sql: &str) -> (u64, usize) {
    let mut rows = 0;
    let started = Instant::now();
    for _ in 0..ITERS_PER_SAMPLE {
        rows = std::hint::black_box(e.query_cached(sql).expect("query"))
            .rows
            .len();
    }
    (
        started.elapsed().as_nanos() as u64 / u64::from(ITERS_PER_SAMPLE),
        rows,
    )
}

fn median(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn main() {
    let mut e = build_engine();
    let mut entries = Vec::new();
    let mut gate_failed = false;

    println!("== exec: row vs columnar ({ROWS} rows) ==");
    for w in &WORKLOADS {
        // Warm both plan-cache entries (the cache is keyed by mode).
        e.set_exec_mode(ExecMode::Row);
        let warm_rows = e.query_cached(w.sql).expect("warmup").rows.len();
        e.set_exec_mode(ExecMode::Columnar);
        e.query_cached(w.sql).expect("warmup");

        let mut row_ns = Vec::with_capacity(SAMPLES);
        let mut col_ns = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            e.set_exec_mode(ExecMode::Row);
            let (ns, rows) = sample(&mut e, w.sql);
            assert_eq!(rows, warm_rows, "{}: row-mode cardinality drifted", w.name);
            row_ns.push(ns);
            e.set_exec_mode(ExecMode::Columnar);
            let (ns, rows) = sample(&mut e, w.sql);
            assert_eq!(rows, warm_rows, "{}: columnar cardinality differs", w.name);
            col_ns.push(ns);
        }
        let row_ns = median(row_ns);
        let col_ns = median(col_ns);
        let speedup = row_ns as f64 / col_ns as f64;
        let gate = if w.gated {
            format!(" (gate >= {MIN_SPEEDUP}x)")
        } else {
            String::new()
        };
        println!(
            "{:<8} row {row_ns:>10} ns/iter  columnar {col_ns:>10} ns/iter  \
             speedup {speedup:.2}x{gate}",
            w.name
        );
        if w.gated && speedup < MIN_SPEEDUP {
            gate_failed = true;
        }
        entries.push(format!(
            "    {{ \"op\": \"{}\", \"rows\": {warm_rows}, \"row_ns\": {row_ns}, \
             \"columnar_ns\": {col_ns}, \"speedup\": {speedup:.3}, \"gated\": {} }}",
            w.name, w.gated
        ));
    }
    assert!(
        e.stats().batches_executed > 0 && e.stats().colexec_fallbacks == 0,
        "benchmark queries must be fully vectorized"
    );

    let json = format!(
        "{{\n  \"bench\": \"exec\",\n  \"rows\": {ROWS},\n  \"samples\": {SAMPLES},\n  \
         \"iters_per_sample\": {ITERS_PER_SAMPLE},\n  \"min_speedup_gate\": {MIN_SPEEDUP},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let path = root.join("BENCH_exec.json");
    std::fs::write(&path, json).expect("write BENCH_exec.json");
    println!("wrote {}", path.display());

    if gate_failed {
        eprintln!("FAIL: columnar execution missed the {MIN_SPEEDUP}x gate on a gated workload");
        std::process::exit(1);
    }
}
