//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **holistic optimization** (filter pushdown + projection pruning across
//!    inlined views) — the mechanism behind the paper's VIEW-mode wins,
//! 2. **the CTE fence** — materialize vs. inline,
//! 3. **view materialization under repeated inspection** — why §6.3's
//!    materialized views pay off.

use bench::microbench::Group;
use mlinspect::backends::pandas::FileRegistry;
use mlinspect::backends::sql::SqlBackend;
use mlinspect::backends::{BaselineCosts, RunConfig};
use mlinspect::capture::capture_with_seed;
use mlinspect::inspection::Inspection;
use mlinspect::pipelines;
use mlinspect::sqlgen::SqlMode;
use sqlengine::{Engine, EngineProfile};

const ROWS: usize = 20_000;

fn taxi_files() -> FileRegistry {
    let mut files = FileRegistry::new();
    files.insert("taxi.csv", datagen::taxi_csv(ROWS, 7));
    files
}

fn inspection_config(columns: &[&str]) -> RunConfig {
    RunConfig {
        inspections: vec![Inspection::HistogramForColumns(
            columns.iter().map(|c| c.to_string()).collect(),
        )],
        keep_relations: false,
        force_outputs: true,
        baseline_costs: BaselineCosts::zero(),
    }
}

fn run_taxi(profile: EngineProfile, mode: SqlMode, materialize: bool) {
    let files = taxi_files();
    let config = inspection_config(&["passenger_count", "trip_distance", "payment_type"]);
    let captured = capture_with_seed(pipelines::TAXI, 0).unwrap();
    let mut engine = Engine::new(profile);
    SqlBackend::run(
        &captured.dag,
        &files,
        &config,
        &mut engine,
        mode,
        materialize,
    )
    .unwrap();
}

fn bench_optimizer_ablation() {
    let mut group = Group::new("optimizer_ablation");
    group.sample_size(10);
    let mut on = EngineProfile::in_memory();
    on.name = "opt-on".into();
    let mut off = EngineProfile::in_memory();
    off.name = "opt-off".into();
    off.enable_optimizer = false;
    group.bench_function("holistic_on", || run_taxi(on.clone(), SqlMode::View, false));
    group.bench_function("holistic_off", || {
        run_taxi(off.clone(), SqlMode::View, false)
    });
}

fn bench_cte_fence_ablation() {
    let mut group = Group::new("cte_fence_ablation");
    group.sample_size(10);
    // Same disk profile; the only difference is whether the fence applies.
    let fenced = EngineProfile::disk_based_no_latency();
    let mut inlined = EngineProfile::disk_based_no_latency();
    inlined.materialize_ctes = false;
    group.bench_function("fenced", || run_taxi(fenced.clone(), SqlMode::Cte, false));
    group.bench_function("inlined", || run_taxi(inlined.clone(), SqlMode::Cte, false));
}

fn bench_materialization_ablation() {
    let mut group = Group::new("materialization_ablation");
    group.sample_size(10);
    let profile = EngineProfile::disk_based_no_latency();
    group.bench_function("views_plain", || {
        run_taxi(profile.clone(), SqlMode::View, false)
    });
    group.bench_function("views_materialized", || {
        run_taxi(profile.clone(), SqlMode::View, true)
    });
}

fn main() {
    bench_optimizer_ablation();
    bench_cte_fence_ablation();
    bench_materialization_ablation();
}
