//! Sharded write path: throughput scaling and group-commit amortization.
//!
//! **Part 1 — scaling.** Eight writers hammer eight disjoint tables
//! (spread evenly over the shards by [`elephant_server::shard_of`]) on
//! servers with 1, 2, and 4 shards. WAL-append latency is injected through
//! the fault registry (`wal.append` → `DelayUs`): CI machines write to
//! tmpfs, which hides the storage latency that dominates a real durable
//! write path, and the injected sleep restores it *and* parallelizes
//! across executor threads exactly like real blocking I/O does. The gate:
//! four shards must push at least [`MIN_SCALING`]× the single-shard
//! statement throughput.
//!
//! **Part 2 — group commit.** A two-shard `--fsync always` server under
//! the same eight writers, with the *fsync* slowed instead of the append:
//! while one fsync is in flight the executor's queue fills, the next batch
//! commits as a group, and `STATS wal_commits_per_fsync` must exceed 1 —
//! i.e. one fsync acknowledges several writes.
//!
//! **Part 3 — 2PC overhead.** The distributed-transaction subsystem (the
//! coordinator, the decision log, the consistent-cut gate) must be free
//! for writes that never cross shards: the same storm against tables all
//! owned by ONE shard of a four-shard server may run at most
//! [`MAX_2PC_OVERHEAD`]× slower than against a single-shard server, where
//! the router short-circuits before any of that machinery.
//!
//! Writes `BENCH_shard.json` at the workspace root; exits non-zero when a
//! gate fails.

use elephant_server::{shard_of, start, ElephantClient, ServerConfig};
use etypes::fault::{self, FaultPolicy};
use sqlengine::FsyncPolicy;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Four shards must beat one shard by at least this factor on the
/// latency-bound write storm.
const MIN_SCALING: f64 = 2.0;

/// Single-shard writes on a multi-shard server (2PC machinery present but
/// bypassed) may cost at most this factor over a one-shard server.
const MAX_2PC_OVERHEAD: f64 = 1.05;

const WRITERS: usize = 8;
const STMTS_PER_WRITER: usize = 40;
const APPEND_DELAY_US: u64 = 2_000;
const FSYNC_DELAY_US: u64 = 2_000;
const GC_STMTS_PER_WRITER: usize = 30;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("elephant-bench-shard-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Eight table names spread evenly over four shards (and, because
/// `h % 2 == (h % 4) % 2`, evenly over two as well).
fn tables() -> Vec<String> {
    let mut out = Vec::new();
    for want in [0usize, 1, 2, 3, 0, 1, 2, 3] {
        let name = (0..10_000)
            .map(|i| format!("bt{i}"))
            .find(|n| shard_of(n, 4) == want && !out.contains(n))
            .expect("candidate space exhausted");
        out.push(name);
    }
    out
}

/// Run the 8-writer storm against a `shards`-shard durable server with
/// `fsync=off` and the injected append delay; returns statements/second.
fn storm_throughput(shards: usize, tables: &[String]) -> f64 {
    let dir = tmp_dir(&format!("scale{shards}"));
    let handle = start(ServerConfig {
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Off,
        shards,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut admin = ElephantClient::connect(addr).unwrap();
    for t in tables {
        admin
            .query_raw(&format!("CREATE TABLE {t} (x int)"))
            .unwrap();
    }

    // Latency goes live only for the measured storm, not the DDL.
    fault::set("wal.append", FaultPolicy::DelayUs(APPEND_DELAY_US));
    let barrier = Arc::new(Barrier::new(WRITERS + 1));
    let workers: Vec<_> = tables
        .iter()
        .map(|t| {
            let table = t.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = ElephantClient::connect(addr).unwrap();
                barrier.wait();
                for seq in 0..STMTS_PER_WRITER {
                    c.query_raw(&format!("INSERT INTO {table} VALUES ({seq})"))
                        .unwrap();
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = started.elapsed();
    fault::clear_all();

    admin.shutdown().unwrap();
    drop(admin);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    (WRITERS * STMTS_PER_WRITER) as f64 / elapsed.as_secs_f64()
}

fn stat_f64(stats: &str, key: &str) -> f64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in stats:\n{stats}"))
        .parse()
        .unwrap()
}

/// Part 2: fsync=always, two shards, slow fsyncs. Returns
/// (wal_group_commits, wal_commits_per_fsync, fsyncs_per_statement).
fn group_commit_storm(tables: &[String]) -> (u64, f64, f64) {
    let dir = tmp_dir("group");
    let handle = start(ServerConfig {
        data_dir: Some(dir.clone()),
        fsync: FsyncPolicy::Always,
        shards: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut admin = ElephantClient::connect(addr).unwrap();
    for t in tables {
        admin
            .query_raw(&format!("CREATE TABLE {t} (x int)"))
            .unwrap();
    }

    fault::set("wal.fsync", FaultPolicy::DelayUs(FSYNC_DELAY_US));
    let barrier = Arc::new(Barrier::new(WRITERS + 1));
    let workers: Vec<_> = tables
        .iter()
        .map(|t| {
            let table = t.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = ElephantClient::connect(addr).unwrap();
                barrier.wait();
                for seq in 0..GC_STMTS_PER_WRITER {
                    c.query_raw(&format!("INSERT INTO {table} VALUES ({seq})"))
                        .unwrap();
                }
            })
        })
        .collect();
    barrier.wait();
    for w in workers {
        w.join().unwrap();
    }
    fault::clear_all();

    let stats = admin.stats().unwrap();
    let group_commits = stat_f64(&stats, "wal_group_commits") as u64;
    let per_fsync = stat_f64(&stats, "wal_commits_per_fsync");
    let statements = (WRITERS * GC_STMTS_PER_WRITER) as f64;
    let fsyncs_per_stmt = group_commits as f64 / statements;

    admin.shutdown().unwrap();
    drop(admin);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    (group_commits, per_fsync, fsyncs_per_stmt)
}

/// Eight table names that all hash to shard 0 of four: on the four-shard
/// server every write is single-shard, exercising resolve + routing with
/// the transaction subsystem compiled in but never entered.
fn colocated_tables() -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while out.len() < WRITERS {
        let name = format!("ct{i}");
        if shard_of(&name, 4) == 0 {
            out.push(name);
        }
        i += 1;
    }
    out
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tables = tables();
    let mut gate_failed = false;

    println!(
        "== shard: write scaling ({WRITERS} writers x {STMTS_PER_WRITER} stmts, \
         {APPEND_DELAY_US} us injected append latency) =="
    );
    let mut throughput = Vec::new();
    for shards in [1usize, 2, 4] {
        // Best of two rounds: sleeps dominate, so variance is tiny, but the
        // first round also pays connection warm-up.
        let a = storm_throughput(shards, &tables);
        let b = storm_throughput(shards, &tables);
        let stmts_per_sec = a.max(b);
        println!("shards={shards}  {stmts_per_sec:>9.0} stmts/s");
        throughput.push((shards, stmts_per_sec));
    }
    let s1 = throughput[0].1;
    let s4 = throughput[2].1;
    let scaling = s4 / s1;
    println!("scaling 4/1: {scaling:.2}x (gate >= {MIN_SCALING}x)");
    if scaling < MIN_SCALING {
        gate_failed = true;
    }
    // On >= 4 real cores the CPU-bound path must scale too; single-core CI
    // can only parallelize the blocking I/O, which the gate above covers.
    let cpu_gate_enforced = cores >= 4;

    println!(
        "== shard: group commit (fsync=always, 2 shards, {FSYNC_DELAY_US} us \
         injected fsync latency) =="
    );
    let (group_commits, per_fsync, fsyncs_per_stmt) = group_commit_storm(&tables);
    println!(
        "wal_group_commits {group_commits}  wal_commits_per_fsync {per_fsync:.2} \
         (gate > 1.0)  fsyncs/stmt {fsyncs_per_stmt:.3}"
    );
    if per_fsync <= 1.0 || group_commits == 0 {
        gate_failed = true;
    }

    println!(
        "== shard: 2PC overhead on single-shard writes (co-located tables, \
         {APPEND_DELAY_US} us injected append latency) =="
    );
    let colocated = colocated_tables();
    // Best of two per configuration, same as the scaling storm.
    let base = storm_throughput(1, &colocated).max(storm_throughput(1, &colocated));
    let routed = storm_throughput(4, &colocated).max(storm_throughput(4, &colocated));
    let overhead = base / routed;
    println!(
        "1-shard {base:>9.0} stmts/s  4-shard(one hot) {routed:>9.0} stmts/s  \
         overhead {overhead:.3}x (gate <= {MAX_2PC_OVERHEAD}x)"
    );
    if overhead > MAX_2PC_OVERHEAD {
        gate_failed = true;
    }

    let thr_json: Vec<String> = throughput
        .iter()
        .map(|(s, t)| format!("    {{ \"shards\": {s}, \"stmts_per_sec\": {t:.1} }}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"cores\": {cores},\n  \"writers\": {WRITERS},\n  \
         \"statements_per_writer\": {STMTS_PER_WRITER},\n  \
         \"append_delay_us\": {APPEND_DELAY_US},\n  \"throughput\": [\n{}\n  ],\n  \
         \"scaling_4_over_1\": {scaling:.3},\n  \"min_scaling_gate\": {MIN_SCALING},\n  \
         \"cpu_gate_enforced\": {cpu_gate_enforced},\n  \"group_commit\": {{\n    \
         \"shards\": 2,\n    \"fsync_delay_us\": {FSYNC_DELAY_US},\n    \
         \"statements\": {},\n    \"wal_group_commits\": {group_commits},\n    \
         \"wal_commits_per_fsync\": {per_fsync:.3},\n    \
         \"fsyncs_per_statement\": {fsyncs_per_stmt:.4},\n    \
         \"gate\": \"wal_commits_per_fsync > 1.0\"\n  }},\n  \
         \"txn_overhead\": {{\n    \
         \"single_shard_stmts_per_sec\": {base:.1},\n    \
         \"four_shard_pinned_stmts_per_sec\": {routed:.1},\n    \
         \"overhead_ratio\": {overhead:.4},\n    \
         \"gate\": \"overhead_ratio <= {MAX_2PC_OVERHEAD}\"\n  }}\n}}\n",
        thr_json.join(",\n"),
        WRITERS * GC_STMTS_PER_WRITER,
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let path = root.join("BENCH_shard.json");
    std::fs::write(&path, json).expect("write BENCH_shard.json");
    println!("wrote {}", path.display());

    if gate_failed {
        eprintln!(
            "FAIL: sharded write path missed a gate \
             (scaling {scaling:.2}x, commits/fsync {per_fsync:.2}, \
             2pc overhead {overhead:.3}x)"
        );
        std::process::exit(1);
    }
}
