//! Failpoint-overhead benchmark: the gate for "free when disabled".
//!
//! The fault registry promises that a disarmed [`etypes::fault::fire`] is
//! one relaxed atomic load. This bench measures that cost directly —
//! billions of production-path hits must not notice the instrumentation —
//! and fails (exits non-zero) when the disabled path exceeds
//! [`MAX_DISABLED_NS`] per call. For context it also measures the slow
//! path taken while an unrelated site is armed (registry lookup under a
//! mutex) and an armed `prob:0` site that never fires. Writes the numbers
//! to `BENCH_faults.json` at the workspace root.

use etypes::fault::{self, FaultPolicy};
use std::hint::black_box;
use std::time::Instant;

/// Budget for a disarmed fire(): generous multiple of a relaxed load so CI
/// noise cannot flake it, but far below anything doing real work (a mutex
/// lock, a map lookup, a syscall).
const MAX_DISABLED_NS: f64 = 25.0;

const CALLS: u64 = 20_000_000;
const SAMPLES: usize = 7;

/// ns per fire() over `CALLS` calls of the named site.
fn sample(site: &str) -> f64 {
    let started = Instant::now();
    for _ in 0..CALLS {
        let r = fault::fire(black_box(site));
        debug_assert!(r.is_ok());
        black_box(&r);
    }
    started.elapsed().as_nanos() as f64 / CALLS as f64
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    // Initialize the registry (applies ELEPHANT_FAULTS, which must be
    // unset here) and verify nothing is armed.
    fault::clear_all();
    assert_eq!(fault::armed(), 0, "bench requires a disarmed registry");
    let _ = fault::fire("warmup");

    // Fast path: zero sites armed anywhere — one relaxed load.
    let disabled_ns = median((0..SAMPLES).map(|_| sample("wal.append")).collect());

    // Slow path, miss: an unrelated site is armed, so every fire() takes
    // the registry mutex and misses the lookup.
    fault::set("some.other.site", FaultPolicy::Error);
    let unrelated_armed_ns = median((0..SAMPLES).map(|_| sample("wal.append")).collect());
    fault::clear_all();

    // Slow path, hit: the site itself is armed with prob:0 — full policy
    // evaluation (PRNG draw) on every call, never fires.
    fault::set("wal.append", FaultPolicy::Prob(0.0));
    let armed_prob0_ns = median((0..SAMPLES).map(|_| sample("wal.append")).collect());
    fault::clear_all();

    println!("== faults_overhead ==");
    println!("disabled fire()        : {disabled_ns:.2} ns/call (budget {MAX_DISABLED_NS} ns)");
    println!("unrelated site armed   : {unrelated_armed_ns:.2} ns/call");
    println!("armed prob:0           : {armed_prob0_ns:.2} ns/call");

    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \"calls_per_sample\": {CALLS},\n  \
         \"samples\": {SAMPLES},\n  \"disabled_ns_per_call\": {disabled_ns:.3},\n  \
         \"disabled_budget_ns\": {MAX_DISABLED_NS},\n  \
         \"unrelated_armed_ns_per_call\": {unrelated_armed_ns:.3},\n  \
         \"armed_prob0_ns_per_call\": {armed_prob0_ns:.3}\n}}\n"
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let path = root.join("BENCH_faults.json");
    std::fs::write(&path, json).expect("write BENCH_faults.json");
    println!("wrote {}", path.display());

    if disabled_ns > MAX_DISABLED_NS {
        eprintln!(
            "FAIL: disabled failpoint costs {disabled_ns:.2} ns/call, \
             over the {MAX_DISABLED_NS} ns budget"
        );
        std::process::exit(1);
    }
}
