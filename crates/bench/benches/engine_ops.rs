//! Microbenchmarks of the SQL engine against the dataframe baseline on the
//! individual operators the pipelines are made of (selection, join,
//! group-by) — the substrate behind Figure 10's per-operation view.

use bench::microbench::Group;
use dataframe::{AggFunc, AggSpec, DataFrame, ElemOp, JoinType};
use etypes::Value;
use sqlengine::{Engine, EngineProfile};

const ROWS: usize = 10_000;

fn seed_engine(profile: EngineProfile) -> Engine {
    let mut e = Engine::new(profile);
    e.execute("CREATE TABLE t (g int, v int)").unwrap();
    let rows: Vec<String> = (0..ROWS)
        .map(|i| format!("({}, {})", i % 10, i % 997))
        .collect();
    e.execute(&format!("INSERT INTO t VALUES {}", rows.join(",")))
        .unwrap();
    e
}

fn seed_frame() -> DataFrame {
    let g: Vec<Value> = (0..ROWS).map(|i| Value::Int((i % 10) as i64)).collect();
    let v: Vec<Value> = (0..ROWS).map(|i| Value::Int((i % 997) as i64)).collect();
    DataFrame::from_columns(vec![
        dataframe::Series::new("g", g),
        dataframe::Series::new("v", v),
    ])
    .unwrap()
}

fn bench_selection() {
    let mut group = Group::new("selection");
    let df = seed_frame();
    group.bench_function("dataframe", || {
        let mask = df
            .column("v")
            .unwrap()
            .binary_scalar(ElemOp::Gt, &Value::Int(500))
            .unwrap();
        std::hint::black_box(df.filter(&mask).unwrap());
    });
    for profile in [EngineProfile::in_memory(), EngineProfile::disk_based()] {
        let mut e = seed_engine(profile.clone());
        group.bench_function(format!("sql/{}", profile.name), || {
            std::hint::black_box(e.query("SELECT g, v FROM t WHERE v > 500").unwrap());
        });
    }
}

fn bench_group_by() {
    let mut group = Group::new("group_by");
    let df = seed_frame();
    group.bench_function("dataframe", || {
        std::hint::black_box(
            df.groupby(&["g"])
                .unwrap()
                .agg(&[AggSpec {
                    output: "m".into(),
                    input: "v".into(),
                    func: AggFunc::Mean,
                }])
                .unwrap(),
        );
    });
    for profile in [EngineProfile::in_memory(), EngineProfile::disk_based()] {
        let mut e = seed_engine(profile.clone());
        group.bench_function(format!("sql/{}", profile.name), || {
            std::hint::black_box(e.query("SELECT g, avg(v) AS m FROM t GROUP BY g").unwrap());
        });
    }
}

fn bench_join() {
    let mut group = Group::new("join");
    group.sample_size(20);
    let df = seed_frame();
    let lookup = DataFrame::from_columns(vec![
        dataframe::Series::new("g", (0..10).map(Value::Int).collect::<Vec<_>>()),
        dataframe::Series::new(
            "label",
            (0..10)
                .map(|i| Value::text(format!("g{i}")))
                .collect::<Vec<_>>(),
        ),
    ])
    .unwrap();
    group.bench_function("dataframe", || {
        std::hint::black_box(df.merge(&lookup, &["g"], JoinType::Inner).unwrap());
    });
    for profile in [EngineProfile::in_memory(), EngineProfile::disk_based()] {
        let mut e = seed_engine(profile.clone());
        e.execute("CREATE TABLE lk (g int, label text)").unwrap();
        let rows: Vec<String> = (0..10).map(|i| format!("({i}, 'g{i}')")).collect();
        e.execute(&format!("INSERT INTO lk VALUES {}", rows.join(",")))
            .unwrap();
        group.bench_function(format!("sql/{}", profile.name), || {
            std::hint::black_box(
                e.query("SELECT t.g, v, label FROM t INNER JOIN lk ON t.g = lk.g")
                    .unwrap(),
            );
        });
    }
}

fn bench_cte_fence() {
    // The optimization fence itself: the same query with a fenced vs an
    // inlined CTE, on the same (in-memory) engine.
    let mut group = Group::new("cte_fence");
    let mut e = seed_engine(EngineProfile::in_memory());
    group.bench_function("inlined", || {
        std::hint::black_box(
            e.query("WITH c AS (SELECT g, v FROM t) SELECT count(*) AS n FROM c WHERE v > 900")
                .unwrap(),
        );
    });
    let mut e = seed_engine(EngineProfile::in_memory());
    group.bench_function("fenced", || {
        std::hint::black_box(
            e.query(
                "WITH c AS MATERIALIZED (SELECT g, v FROM t) SELECT count(*) AS n FROM c WHERE v > 900",
            )
            .unwrap(),
        );
    });
}

fn main() {
    bench_selection();
    bench_group_by();
    bench_join();
    bench_cte_fence();
}
