//! Replication-overhead benchmark: the gate for "streaming is free-ish".
//!
//! Runs the same single-row INSERT hot loop against two live deployments —
//! a standalone durable server, and a leader with one connected follower —
//! and fails (exits non-zero) when the leader's median write latency is
//! more than [`MAX_OVERHEAD_PCT`] above the standalone's. The WAL feeder
//! tails the log and ships frames off the commit path, so a connected
//! follower should cost the writer close to nothing.
//!
//! Also measures steady-state catch-up (how long the follower needs to
//! drain the backlog once writes stop) and a follower read sample, and
//! writes everything to `BENCH_repl.json` at the workspace root.
//!
//! Samples for the two deployments are interleaved so clock drift, page
//! cache, and background load hit both sides equally.

use elephant_server::{start, ElephantClient, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A connected follower may not slow leader writes by more than this.
const MAX_OVERHEAD_PCT: f64 = 5.0;

const SAMPLES: usize = 61;
const ITERS_PER_SAMPLE: u32 = 30;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("elephant-bench-repl-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One timed sample: `ITERS_PER_SAMPLE` acknowledged single-row inserts,
/// ns/insert — each one a full WAL append + fsync + ack round trip.
fn sample(c: &mut ElephantClient, next: &mut i64) -> u64 {
    let started = Instant::now();
    for _ in 0..ITERS_PER_SAMPLE {
        c.query_raw(&format!("INSERT INTO bench VALUES ({next})"))
            .expect("insert");
        *next += 1;
    }
    started.elapsed().as_nanos() as u64 / u64::from(ITERS_PER_SAMPLE)
}

fn median(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn committed_lsn(leader: &mut ElephantClient) -> u64 {
    ElephantClient::parse_watermark(&leader.lag().expect("LAG"), "committed_lsn")
        .expect("committed_lsn")
}

fn applied_lsn(follower: &mut ElephantClient) -> u64 {
    ElephantClient::parse_watermark(&follower.lag().expect("LAG"), "applied_lsn")
        .expect("applied_lsn")
}

fn shutdown(mut c: ElephantClient, handle: ServerHandle) {
    c.shutdown().expect("SHUTDOWN");
    drop(c);
    handle.join();
}

fn main() {
    let solo_dir = tmp("standalone");
    let lead_dir = tmp("leader");

    let solo_handle = start(ServerConfig {
        data_dir: Some(solo_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("start standalone");
    let lead_handle = start(ServerConfig {
        data_dir: Some(lead_dir.clone()),
        repl_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    })
    .expect("start leader");
    let repl_addr = lead_handle.repl_addr().expect("repl addr").to_string();
    let follower_handle = start(ServerConfig {
        replicate_from: Some(repl_addr),
        ..ServerConfig::default()
    })
    .expect("start follower");

    let mut solo = ElephantClient::connect(solo_handle.local_addr()).expect("connect");
    let mut lead = ElephantClient::connect(lead_handle.local_addr()).expect("connect");
    let mut follower = ElephantClient::connect(follower_handle.local_addr()).expect("connect");

    for c in [&mut solo, &mut lead] {
        c.query_raw("CREATE TABLE bench (v int)").expect("create");
    }

    // Warm up both write paths (plan cache, WAL file, follower stream).
    let (mut solo_next, mut lead_next) = (0i64, 0i64);
    for _ in 0..20 {
        sample(&mut solo, &mut solo_next);
        sample(&mut lead, &mut lead_next);
    }

    // Paired comparison: each sample measures both deployments back to
    // back and contributes one leader/standalone ratio. A scheduler or
    // fsync hiccup that lands inside one half skews only that pair, and
    // the median over pairs discards it — far more robust on a shared
    // box than comparing two independently-taken medians.
    let mut solo_ns = Vec::with_capacity(SAMPLES);
    let mut lead_ns = Vec::with_capacity(SAMPLES);
    let mut ratios = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let s = sample(&mut solo, &mut solo_next);
        let l = sample(&mut lead, &mut lead_next);
        solo_ns.push(s);
        lead_ns.push(l);
        ratios.push(l as f64 / s as f64);
    }
    let solo_med = median(solo_ns);
    let lead_med = median(lead_ns);
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;

    // Steady-state catch-up: writes just stopped; how stale is the replica?
    let target = committed_lsn(&mut lead);
    let catch_up_started = Instant::now();
    while applied_lsn(&mut follower) < target {
        assert!(
            catch_up_started.elapsed() < Duration::from_secs(30),
            "follower never caught up"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    let catch_up_ns = catch_up_started.elapsed().as_nanos() as u64;

    // Follower read sample: the replica serves the whole table.
    let rows_written = lead_next;
    let read_ns = median(
        (0..SAMPLES)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..ITERS_PER_SAMPLE {
                    let body = follower
                        .query_raw("SELECT count(*) AS n FROM bench")
                        .expect("follower read");
                    assert_eq!(body, format!("n\n{rows_written}\n"));
                }
                started.elapsed().as_nanos() as u64 / u64::from(ITERS_PER_SAMPLE)
            })
            .collect(),
    );

    let stats = lead.stats().expect("STATS");
    let bytes_shipped = ElephantClient::parse_watermark(&stats, "repl_bytes_shipped").unwrap_or(0);

    println!("== repl_overhead ==");
    println!("standalone write  : {solo_med} ns/insert");
    println!("leader write      : {lead_med} ns/insert (1 follower connected)");
    println!("overhead          : {overhead_pct:.2}% (limit {MAX_OVERHEAD_PCT}%)");
    println!("catch-up after stop: {catch_up_ns} ns");
    println!("follower read     : {read_ns} ns/query");
    println!("bytes shipped     : {bytes_shipped}");

    let json = format!(
        "{{\n  \"bench\": \"repl\",\n  \"samples\": {SAMPLES},\n  \
         \"iters_per_sample\": {ITERS_PER_SAMPLE},\n  \"followers\": 1,\n  \
         \"standalone_insert_ns\": {solo_med},\n  \"leader_insert_ns\": {lead_med},\n  \
         \"leader_overhead_pct\": {overhead_pct:.3},\n  \
         \"overhead_limit_pct\": {MAX_OVERHEAD_PCT},\n  \
         \"catch_up_after_stop_ns\": {catch_up_ns},\n  \
         \"follower_read_ns\": {read_ns},\n  \"rows_replicated\": {rows_written},\n  \
         \"bytes_shipped\": {bytes_shipped}\n}}\n"
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let path = root.join("BENCH_repl.json");
    std::fs::write(&path, json).expect("write BENCH_repl.json");
    println!("wrote {}", path.display());

    shutdown(follower, follower_handle);
    shutdown(lead, lead_handle);
    shutdown(solo, solo_handle);
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&lead_dir);

    if overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "FAIL: replication overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget"
        );
        std::process::exit(1);
    }
}
