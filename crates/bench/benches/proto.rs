//! Protocol v2: pipelining speedup, BATCH amortization, and chunked
//! streaming under the result-buffer cap.
//!
//! **Part 1 — pipelining.** The same 2000 parameterized point lookups
//! (`EXECUTE byid (i)` against a prepared `SELECT ... WHERE a = $1`) run
//! two ways against one in-memory server: request-per-round-trip on a v1
//! connection, and windows of 500 in-flight commands on a v2
//! [`PipelineClient`]. Every v1 lookup pays write + read + server flush
//! per command; the pipeline pays them per window. The gate:
//! pipelined throughput must be at least [`MIN_PIPELINE_SPEEDUP`]× the
//! request-per-round-trip throughput.
//!
//! **Part 2 — BATCH ingest.** 2000 single-row INSERTs, one frame each on
//! v1 versus `BATCH` frames of 500 statements on v2. Informational (the
//! framing amortization rides the same pipe as part 1); reported in the
//! JSON for tracking.
//!
//! **Part 3 — streaming.** One `SELECT` over a 10^6-row table streams
//! ~7 MB of CSV through 64 KiB v2 chunks. The response must reassemble to
//! exactly the expected row count, and the server's own accounting must
//! show the buffered bytes never exceeded the configured
//! `--max-result-buffer-bytes` cap — the bound on per-response memory —
//! and drained back to zero afterwards.
//!
//! Writes `BENCH_proto.json` at the workspace root; exits non-zero when a
//! gate fails.

use elephant_server::{start, ElephantClient, PipelineClient, ServerConfig};
use std::time::Instant;

/// Pipelined point lookups must beat request-per-round-trip by this much.
const MIN_PIPELINE_SPEEDUP: f64 = 3.0;

/// Point lookups per side in part 1.
const LOOKUPS: usize = 2_000;

/// Commands kept in flight per pipeline window (bounded so responses never
/// outgrow the socket buffers while the client is still writing).
const WINDOW: usize = 500;

/// Rows in the lookup table (and the modulus for lookup keys). Small on
/// purpose: the gate compares wire paths, so the per-lookup engine work
/// must stay far below the per-round-trip overhead being amortized.
const TABLE_ROWS: usize = 10;

/// Concurrent pipelined connections in the many-clients load section.
const CLIENTS: usize = 8;

/// Lookups each of the many clients runs.
const LOOKUPS_PER_CLIENT: usize = 1_000;

/// Single-row INSERTs per side in part 2.
const INSERTS: usize = 2_000;

/// Statements per BATCH frame in part 2.
const BATCH_SIZE: usize = 500;

/// Rows streamed in part 3.
const STREAM_ROWS: usize = 1_000_000;

/// The v2 result-buffer cap the streaming server runs with.
const STREAM_CAP: usize = 64 << 20;

fn stat_u64(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in stats:\n{stats}"))
        .trim()
        .parse()
        .unwrap()
}

/// Bulk-load `rows` ints into `table` in frames of 10k values.
fn load_ints(c: &mut ElephantClient, table: &str, rows: usize) {
    c.query_raw(&format!("CREATE TABLE {table} (a int)"))
        .unwrap();
    let mut next = 0usize;
    while next < rows {
        let hi = (next + 10_000).min(rows);
        let values: Vec<String> = (next..hi).map(|i| format!("({i})")).collect();
        c.query_raw(&format!("INSERT INTO {table} VALUES {}", values.join(",")))
            .unwrap();
        next = hi;
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut gate_failed = false;

    let handle = start(ServerConfig {
        max_result_buffer_bytes: STREAM_CAP,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut admin = ElephantClient::connect(addr).unwrap();

    // ---- Part 1: pipelined point lookups vs request-per-round-trip ----
    println!(
        "== proto: {LOOKUPS} point lookups, v1 round-trips vs v2 pipeline \
         (window {WINDOW}) =="
    );
    admin.query_raw("CREATE TABLE pt (a int, b text)").unwrap();
    let mut next = 0usize;
    while next < TABLE_ROWS {
        let hi = (next + 5_000).min(TABLE_ROWS);
        let values: Vec<String> = (next..hi).map(|i| format!("({i}, 'name-{i}')")).collect();
        admin
            .query_raw(&format!("INSERT INTO pt VALUES {}", values.join(",")))
            .unwrap();
        next = hi;
    }
    let commands: Vec<String> = (0..LOOKUPS)
        .map(|i| format!("EXECUTE byid ({})", (i * 37) % TABLE_ROWS))
        .collect();

    // v1: one round trip per lookup. A short untimed warmup settles the
    // connection, allocator, and plan bindings before the clock starts.
    let mut v1 = ElephantClient::connect(addr).unwrap();
    v1.send("PREPARE byid AS SELECT b FROM pt WHERE a = $1")
        .unwrap();
    for cmd in commands.iter().take(WINDOW / 2) {
        v1.send(cmd).unwrap();
    }
    let started = Instant::now();
    for cmd in &commands {
        v1.send(cmd).unwrap();
    }
    let v1_ops = LOOKUPS as f64 / started.elapsed().as_secs_f64();

    // v2: the same commands, WINDOW in flight at a time.
    let mut v2 = PipelineClient::connect(addr).unwrap();
    v2.send("PREPARE byid AS SELECT b FROM pt WHERE a = $1")
        .unwrap();
    for result in v2.pipeline(&commands[..WINDOW / 2]).unwrap() {
        result.unwrap();
    }
    let started = Instant::now();
    for window in commands.chunks(WINDOW) {
        for result in v2.pipeline(window).unwrap() {
            result.unwrap();
        }
    }
    let v2_ops = LOOKUPS as f64 / started.elapsed().as_secs_f64();

    let speedup = v2_ops / v1_ops;
    println!(
        "v1 {v1_ops:>9.0} lookups/s   v2 pipelined {v2_ops:>9.0} lookups/s   \
         speedup {speedup:.2}x (gate >= {MIN_PIPELINE_SPEEDUP}x)"
    );
    if speedup < MIN_PIPELINE_SPEEDUP {
        gate_failed = true;
    }

    // Many clients: CLIENTS pipelined connections hammering the same
    // table concurrently, each with its own prepared statement and
    // sequence space. Informational — the aggregate shows the overlapped
    // submission path holds up under connection concurrency, not just on
    // one quiet socket.
    let started = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = PipelineClient::connect(addr).unwrap();
                c.send("PREPARE byid AS SELECT b FROM pt WHERE a = $1")
                    .unwrap();
                let cmds: Vec<String> = (0..LOOKUPS_PER_CLIENT)
                    .map(|i| format!("EXECUTE byid ({})", (w + i * 37) % TABLE_ROWS))
                    .collect();
                for window in cmds.chunks(WINDOW) {
                    for result in c.pipeline(window).unwrap() {
                        result.unwrap();
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    let many_ops = (CLIENTS * LOOKUPS_PER_CLIENT) as f64 / started.elapsed().as_secs_f64();
    println!(
        "{CLIENTS} pipelined clients x {LOOKUPS_PER_CLIENT} lookups: \
         {many_ops:>9.0} lookups/s aggregate"
    );

    // ---- Part 2: BATCH ingest vs per-statement frames ----
    println!("== proto: {INSERTS} INSERTs, v1 frames vs BATCH of {BATCH_SIZE} ==");
    admin.query_raw("CREATE TABLE ing1 (a int)").unwrap();
    admin.query_raw("CREATE TABLE ing2 (a int)").unwrap();

    let started = Instant::now();
    for i in 0..INSERTS {
        v1.send(&format!("QUERY INSERT INTO ing1 VALUES ({i})"))
            .unwrap();
    }
    let v1_ins = INSERTS as f64 / started.elapsed().as_secs_f64();

    let statements: Vec<String> = (0..INSERTS)
        .map(|i| format!("INSERT INTO ing2 VALUES ({i})"))
        .collect();
    let started = Instant::now();
    for frame in statements.chunks(BATCH_SIZE) {
        let bodies = v2.batch(frame).unwrap();
        assert_eq!(bodies.len(), frame.len());
    }
    let batch_ins = INSERTS as f64 / started.elapsed().as_secs_f64();
    assert_eq!(
        admin.query_raw("SELECT count(*) AS n FROM ing2").unwrap(),
        format!("n\n{INSERTS}\n")
    );
    println!(
        "v1 {v1_ins:>9.0} stmts/s   BATCH {batch_ins:>9.0} stmts/s   \
         amortization {:.2}x",
        batch_ins / v1_ins
    );

    // ---- Part 3: chunked streaming of 10^6 rows under the cap ----
    println!("== proto: stream {STREAM_ROWS} rows through 64 KiB chunks ==");
    load_ints(&mut admin, "big", STREAM_ROWS);
    let started = Instant::now();
    let body = v2.send("QUERY SELECT a FROM big").unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    let rows = body.lines().count() - 1; // header line
    assert_eq!(rows, STREAM_ROWS, "stream dropped or duplicated rows");
    let mb_per_sec = body.len() as f64 / 1e6 / elapsed;

    let stats = v2.send("STATS").unwrap();
    let chunks = stat_u64(&stats, "chunks_streamed");
    let peak = stat_u64(&stats, "result_buffer_peak_bytes");
    let now = stat_u64(&stats, "result_buffer_bytes");
    println!(
        "{} bytes in {elapsed:.3}s  {mb_per_sec:.0} MB/s  chunks {chunks}  \
         buffered peak {peak} (cap {STREAM_CAP})  buffered now {now}",
        body.len()
    );
    if peak as usize > STREAM_CAP || peak == 0 {
        println!("FAIL: peak buffered bytes outside (0, cap]");
        gate_failed = true;
    }
    if now != 0 {
        println!("FAIL: buffered bytes did not drain to zero");
        gate_failed = true;
    }
    if (chunks as usize) < body.len() / (64 * 1024) {
        println!("FAIL: fewer chunks than the body size requires");
        gate_failed = true;
    }

    admin.shutdown().unwrap();
    drop((admin, v1, v2));
    handle.join();

    let json = format!(
        "{{\n  \"bench\": \"proto\",\n  \"cores\": {cores},\n  \
         \"point_lookups\": {{\n    \"lookups\": {LOOKUPS},\n    \
         \"window\": {WINDOW},\n    \"v1_ops_per_sec\": {v1_ops:.1},\n    \
         \"v2_pipelined_ops_per_sec\": {v2_ops:.1},\n    \
         \"speedup\": {speedup:.3},\n    \
         \"gate\": \"speedup >= {MIN_PIPELINE_SPEEDUP}\"\n  }},\n  \
         \"many_clients\": {{\n    \"clients\": {CLIENTS},\n    \
         \"lookups_per_client\": {LOOKUPS_PER_CLIENT},\n    \
         \"aggregate_ops_per_sec\": {many_ops:.1}\n  }},\n  \
         \"batch_ingest\": {{\n    \"statements\": {INSERTS},\n    \
         \"batch_size\": {BATCH_SIZE},\n    \
         \"v1_stmts_per_sec\": {v1_ins:.1},\n    \
         \"batch_stmts_per_sec\": {batch_ins:.1},\n    \
         \"amortization\": {:.3}\n  }},\n  \
         \"streaming\": {{\n    \"rows\": {STREAM_ROWS},\n    \
         \"bytes\": {},\n    \"seconds\": {elapsed:.3},\n    \
         \"mb_per_sec\": {mb_per_sec:.1},\n    \
         \"chunks_streamed\": {chunks},\n    \
         \"result_buffer_peak_bytes\": {peak},\n    \
         \"cap_bytes\": {STREAM_CAP},\n    \
         \"gate\": \"0 < result_buffer_peak_bytes <= cap_bytes && drains to 0\"\n  }}\n}}\n",
        batch_ins / v1_ins,
        body.len(),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let path = root.join("BENCH_proto.json");
    std::fs::write(&path, json).expect("write BENCH_proto.json");
    println!("wrote {}", path.display());

    if gate_failed {
        eprintln!(
            "FAIL: protocol v2 missed a gate (speedup {speedup:.2}x, \
             peak {peak} bytes, cap {STREAM_CAP})"
        );
        std::process::exit(1);
    }
}
