//! A dependency-free microbenchmark runner (Criterion replacement).
//!
//! The workspace must build and test fully offline, so the benches cannot
//! depend on the external `criterion` crate. This module provides the small
//! subset the benches need: grouped labels, automatic iteration-count
//! calibration so fast closures are timed over many iterations, and a
//! median-of-samples report rendered with [`crate::report`].

use crate::report::{fmt_duration, TextTable};
use std::time::{Duration, Instant};

/// Minimum wall-clock time one calibrated sample should take.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// A named group of related benchmarks, rendered as one table on drop.
pub struct Group {
    name: String,
    samples: usize,
    table: TextTable,
    ran_any: bool,
}

impl Group {
    /// Start a group with the default sample count (10).
    pub fn new(name: impl Into<String>) -> Group {
        Group {
            name: name.into(),
            samples: 10,
            table: TextTable::new(&["benchmark", "median", "min", "max", "iters/sample"]),
            ran_any: false,
        }
    }

    /// Override the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Time `f`, calibrating the per-sample iteration count so that each
    /// sample runs for at least [`TARGET_SAMPLE_TIME`].
    pub fn bench_function(&mut self, label: impl AsRef<str>, mut f: impl FnMut()) -> &mut Self {
        let mut iters: u32 = 1;
        loop {
            let t = run_sample(&mut f, iters);
            if t >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| run_sample(&mut f, iters) / iters)
            .collect();
        per_iter.sort();
        self.table.row(vec![
            label.as_ref().to_string(),
            fmt_duration(per_iter[per_iter.len() / 2]),
            fmt_duration(per_iter[0]),
            fmt_duration(per_iter[per_iter.len() - 1]),
            iters.to_string(),
        ]);
        self.ran_any = true;
        self
    }

    /// Print the group's table (also called on drop).
    pub fn finish(&mut self) {
        if self.ran_any {
            println!("== {} ==\n{}", self.name, self.table.render());
            self.ran_any = false;
        }
    }
}

impl Drop for Group {
    fn drop(&mut self) {
        self.finish();
    }
}

fn run_sample(f: &mut impl FnMut(), iters: u32) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
        std::hint::black_box(());
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_and_reports() {
        let mut g = Group::new("test");
        g.sample_size(3).bench_function("noop", || {});
        assert!(g.ran_any);
        g.finish();
        assert!(!g.ran_any);
    }
}
