//! Execution targets and measurement phases.

use crate::data::{pipeline_files_cached, sensitive_columns};
use mlinspect::backends::pandas::{FileRegistry, PandasBackend};
use mlinspect::backends::sql::SqlBackend;
use mlinspect::backends::{RunArtifacts, RunConfig};
use mlinspect::capture::capture_with_seed;
use mlinspect::dag::{Dag, OpKind};
use mlinspect::inspection::Inspection;
use mlinspect::pipelines;
use mlinspect::sqlgen::SqlMode;
use sqlengine::{Engine, EngineProfile};
use std::time::{Duration, Instant};

/// The execution targets of Figure 7/8/11: the pandas baseline plus the two
/// modelled database systems in CTE and VIEW modes (PostgreSQL additionally
/// with materialized views).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Pandas,
    PgCte,
    PgView,
    /// PostgreSQL, VIEW mode with materialization (§3.4.2).
    PgViewMat,
    UmbraCte,
    UmbraView,
}

impl Target {
    /// All targets in presentation order.
    pub fn all() -> [Target; 6] {
        [
            Target::Pandas,
            Target::PgCte,
            Target::PgView,
            Target::PgViewMat,
            Target::UmbraCte,
            Target::UmbraView,
        ]
    }

    /// Column label.
    pub fn name(&self) -> &'static str {
        match self {
            Target::Pandas => "pandas",
            Target::PgCte => "pg-cte",
            Target::PgView => "pg-view",
            Target::PgViewMat => "pg-view-mat",
            Target::UmbraCte => "umbra-cte",
            Target::UmbraView => "umbra-view",
        }
    }

    fn engine(&self) -> Option<(EngineProfile, SqlMode, bool)> {
        Some(match self {
            Target::Pandas => return None,
            Target::PgCte => (EngineProfile::disk_based(), SqlMode::Cte, false),
            Target::PgView => (EngineProfile::disk_based(), SqlMode::View, false),
            Target::PgViewMat => (EngineProfile::disk_based(), SqlMode::View, true),
            Target::UmbraCte => (EngineProfile::in_memory(), SqlMode::Cte, false),
            Target::UmbraView => (EngineProfile::in_memory(), SqlMode::View, false),
        })
    }
}

/// What part of the pipeline a measurement covers (the three panels of
/// Figure 7 plus the end-to-end runs of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Only the pandas operators (§6.1 / Figure 7a).
    PandasOnly,
    /// Plus the scikit-learn operators, no inspection, no training
    /// (§6.2 / Figure 7b).
    Preprocessing,
    /// Plus per-operator inspection (§6.3 / Figure 7c).
    Inspection,
    /// The whole pipeline including training and scoring (§6.4 / Figure 8).
    EndToEnd,
}

impl Phase {
    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::PandasOnly => "pandas-ops",
            Phase::Preprocessing => "preprocessing",
            Phase::Inspection => "inspection",
            Phase::EndToEnd => "end-to-end",
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Wall-clock of transpilation + load + execution (the paper's
    /// adapter-inclusive timing).
    pub elapsed: Duration,
    /// Everything the run produced.
    pub artifacts: RunArtifacts,
}

fn source_for(pipeline: &str, phase: Phase) -> &'static str {
    match phase {
        Phase::PandasOnly => pipelines::pandas_prefix(pipeline)
            .unwrap_or_else(|| panic!("no pandas prefix for {pipeline}")),
        _ => match pipeline {
            "healthcare" => pipelines::HEALTHCARE,
            "compas" => pipelines::COMPAS,
            "adult simple" => pipelines::ADULT_SIMPLE,
            "adult complex" => pipelines::ADULT_COMPLEX,
            "taxi" => pipelines::TAXI,
            other => panic!("unknown pipeline '{other}'"),
        },
    }
}

/// Drop training/scoring nodes for the preprocessing-only phases.
fn strip_model_nodes(dag: &mut Dag) {
    dag.nodes
        .retain(|n| !matches!(n.kind, OpKind::ModelFit { .. } | OpKind::ModelScore { .. }));
}

/// Run one `(pipeline, phase, target)` cell at `rows` input tuples and
/// return its timing. Dataset bytes are generated (and cached) outside the
/// timed section; capture, loading and execution are inside it, matching the
/// paper's measurements which include transpilation (~100 ms there) and the
/// adapter call.
pub fn run_once(
    pipeline: &str,
    phase: Phase,
    target: Target,
    rows: usize,
    seed: u64,
) -> RunMeasurement {
    run_once_with_columns(
        pipeline,
        phase,
        target,
        rows,
        seed,
        sensitive_columns(pipeline),
    )
}

/// [`run_once`] with an explicit set of inspected columns (Figure 11 varies
/// this from one to five).
pub fn run_once_with_columns(
    pipeline: &str,
    phase: Phase,
    target: Target,
    rows: usize,
    seed: u64,
    columns: &[&str],
) -> RunMeasurement {
    let file_pairs = pipeline_files_cached(pipeline, rows, 97);
    let mut files = FileRegistry::new();
    for (name, content) in &file_pairs {
        files.insert(name.clone(), content.clone());
    }
    let source = source_for(pipeline, phase);
    let config = RunConfig {
        inspections: if phase == Phase::Inspection || phase == Phase::EndToEnd {
            vec![Inspection::HistogramForColumns(
                columns.iter().map(|c| c.to_string()).collect(),
            )]
        } else {
            Vec::new()
        },
        keep_relations: false,
        force_outputs: true,
        baseline_costs: Default::default(),
    };

    let started = Instant::now();
    let mut captured = capture_with_seed(source, seed).expect("pipeline captures");
    if matches!(
        phase,
        Phase::PandasOnly | Phase::Preprocessing | Phase::Inspection
    ) {
        strip_model_nodes(&mut captured.dag);
    }
    let artifacts = match target.engine() {
        None => PandasBackend::run(&captured.dag, &files, &config).expect("baseline run"),
        Some((profile, mode, materialize)) => {
            let mut engine = Engine::new(profile);
            SqlBackend::run(
                &captured.dag,
                &files,
                &config,
                &mut engine,
                mode,
                materialize,
            )
            .expect("sql run")
        }
    };
    RunMeasurement {
        elapsed: started.elapsed(),
        artifacts,
    }
}

/// Median wall-clock of `reps` runs of one cell.
pub fn measure(pipeline: &str, phase: Phase, target: Target, rows: usize, reps: usize) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|r| run_once(pipeline, phase, target, rows, r as u64).elapsed)
        .collect();
    times.sort();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_of_figure7_runs() {
        for pipeline in ["healthcare", "compas", "adult simple", "adult complex"] {
            for phase in [Phase::PandasOnly, Phase::Preprocessing, Phase::Inspection] {
                for target in [Target::Pandas, Target::PgCte, Target::UmbraView] {
                    let m = run_once(pipeline, phase, target, 120, 0);
                    assert!(
                        m.elapsed > Duration::ZERO,
                        "{pipeline}/{phase:?}/{target:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn end_to_end_produces_accuracy() {
        let m = run_once("adult simple", Phase::EndToEnd, Target::UmbraCte, 200, 0);
        assert_eq!(m.artifacts.accuracies.len(), 1);
    }

    #[test]
    fn taxi_with_varying_columns() {
        for k in 1..=3 {
            let cols = &datagen::taxi::INSPECTED_COLUMNS[..k];
            let m = run_once_with_columns("taxi", Phase::Inspection, Target::PgCte, 300, 0, cols);
            assert!(m.elapsed > Duration::ZERO);
        }
    }

    #[test]
    fn preprocessing_phase_strips_training() {
        let m = run_once("healthcare", Phase::Preprocessing, Target::Pandas, 100, 0);
        assert!(m.artifacts.accuracies.is_empty());
    }
}
