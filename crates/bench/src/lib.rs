//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). See `src/bin/repro.rs` for the command-line driver and
//! `benches/` for the microbenchmarks (run on the dependency-free
//! [`microbench`] runner so the whole workspace builds offline).

pub mod data;
pub mod harness;
pub mod microbench;
pub mod report;

pub use harness::{run_once, Phase, RunMeasurement, Target};
