//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). See `src/bin/repro.rs` for the command-line driver and
//! `benches/` for the Criterion microbenchmarks.

pub mod data;
pub mod harness;
pub mod report;

pub use harness::{run_once, Phase, RunMeasurement, Target};
