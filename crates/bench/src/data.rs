//! Benchmark datasets: the paper's pipelines at configurable sizes
//! ("generated size 10^2 to 10^6", Table 2).

use std::collections::HashMap;
use std::sync::Mutex;

type FileCache = HashMap<(String, usize, u64), Vec<(String, String)>>;

/// The CSVs one pipeline reads, sized to `rows` tuples for the primary
/// input (secondary inputs scale proportionally, like the original
/// train/test file pairs).
pub fn pipeline_files(pipeline: &str, rows: usize, seed: u64) -> Vec<(String, String)> {
    match pipeline {
        "healthcare" => vec![
            ("patients.csv".into(), datagen::patients_csv(rows, seed)),
            ("histories.csv".into(), datagen::histories_csv(rows, seed)),
        ],
        "compas" => vec![
            ("compas_train.csv".into(), datagen::compas_csv(rows, seed)),
            (
                "compas_test.csv".into(),
                datagen::compas_csv((rows / 3).max(30), seed + 1),
            ),
        ],
        "adult simple" | "adult complex" => vec![
            ("adult_train.csv".into(), datagen::adult_csv(rows, seed)),
            (
                "adult_test.csv".into(),
                datagen::adult_csv((rows / 3).max(30), seed + 1),
            ),
        ],
        "taxi" => vec![("taxi.csv".into(), datagen::taxi_csv(rows, seed))],
        other => panic!("unknown pipeline '{other}'"),
    }
}

/// Cached variant: dataset generation is excluded from measurements, and
/// sweeps reuse the same bytes across targets.
pub fn pipeline_files_cached(pipeline: &str, rows: usize, seed: u64) -> Vec<(String, String)> {
    static CACHE: Mutex<Option<FileCache>> = Mutex::new(None);
    let key = (pipeline.to_string(), rows, seed);
    let mut guard = CACHE.lock().expect("cache lock");
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(hit) = cache.get(&key) {
        return hit.clone();
    }
    let files = pipeline_files(pipeline, rows, seed);
    // Bound memory: large sweeps would otherwise pin gigabytes.
    if cache.len() > 8 {
        cache.clear();
    }
    cache.insert(key, files.clone());
    files
}

/// The sensitive columns inspected per pipeline (paper §6: race and
/// age_group for healthcare; race elsewhere).
pub fn sensitive_columns(pipeline: &str) -> &'static [&'static str] {
    match pipeline {
        "healthcare" => &["race", "age_group"],
        "compas" => &["race", "sex"],
        "adult simple" | "adult complex" => &["race", "sex"],
        "taxi" => &["passenger_count"],
        _ => &[],
    }
}

/// Original dataset sizes (Table 2) for the end-to-end experiment.
pub fn original_size(pipeline: &str) -> usize {
    match pipeline {
        "healthcare" => datagen::sizes::HEALTHCARE,
        "compas" => datagen::sizes::COMPAS,
        "adult simple" | "adult complex" => datagen::sizes::ADULT,
        _ => 1000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_cover_all_pipelines() {
        for p in [
            "healthcare",
            "compas",
            "adult simple",
            "adult complex",
            "taxi",
        ] {
            let files = pipeline_files(p, 50, 1);
            assert!(!files.is_empty(), "{p}");
            assert!(files[0].1.lines().count() > 10, "{p}");
        }
    }

    #[test]
    fn cache_returns_identical_bytes() {
        let a = pipeline_files_cached("healthcare", 60, 2);
        let b = pipeline_files_cached("healthcare", 60, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn sensitive_columns_defined() {
        assert_eq!(sensitive_columns("healthcare"), &["race", "age_group"]);
    }
}
