//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig7b --sizes 100,1000,10000 --reps 3
//! ```
//!
//! | command  | paper artefact |
//! |----------|----------------|
//! | `table3` | transpilation time |
//! | `fig7a`  | pandas-only runtime sweep |
//! | `fig7b`  | + scikit-learn |
//! | `fig7c`  | + inspection |
//! | `fig8`   | end-to-end incl. training |
//! | `fig9`   | ratio changes during preprocessing (healthcare) |
//! | `table4` | ratios before/after preprocessing |
//! | `table5` | model accuracy over 5 runs |
//! | `fig10`  | operation-level breakdown (compas) |
//! | `fig11`  | runtime vs. number of inspected columns (taxi) |

/// Print a line to stdout *and* append it to the per-command artifact under
/// `target/repro/` (when the tee initialized successfully).
macro_rules! out {
    () => { crate::tee::line("") };
    ($($t:tt)*) => { crate::tee::line(&format!($($t)*)) };
}

mod tee {
    //! Mirrors repro output into `target/repro/repro_<command>.txt` so runs
    //! leave a machine-diffable artifact without littering the repo root.

    use std::fs::{self, File};
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::Mutex;

    static SINK: Mutex<Option<File>> = Mutex::new(None);

    /// Open the artifact file for `command`; returns its path on success.
    /// Failures (read-only checkout, ...) degrade to stdout-only output.
    pub fn init(command: &str) -> Option<PathBuf> {
        let target = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target"));
        let dir = target.join("repro");
        fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("repro_{command}.txt"));
        let file = File::create(&path).ok()?;
        *SINK.lock().unwrap() = Some(file);
        Some(path)
    }

    pub fn line(s: &str) {
        println!("{s}");
        if let Some(f) = SINK.lock().unwrap().as_mut() {
            let _ = writeln!(f, "{s}");
        }
    }
}

use bench::data::{original_size, pipeline_files_cached, sensitive_columns};
use bench::report::{fmt_duration, fmt_factor, TextTable};
use bench::{run_once, Phase, Target};
use mlinspect::backends::pandas::FileRegistry;
use mlinspect::backends::sql::SqlBackend;
use mlinspect::capture::capture_with_seed;
use mlinspect::checks::bias::overall_change;
use mlinspect::pipelines;
use mlinspect::sqlgen::SqlMode;
use std::time::{Duration, Instant};

const PIPELINES: [&str; 4] = ["healthcare", "compas", "adult simple", "adult complex"];

struct Options {
    sizes: Vec<usize>,
    reps: usize,
    runs: usize,
    rows: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let opts = parse_options(&args[1.min(args.len())..]);

    match tee::init(command) {
        Some(path) => eprintln!("writing artifact to {}", path.display()),
        None => eprintln!("could not open artifact file; printing to stdout only"),
    }

    match command {
        "table3" => table3(),
        "fig7a" => fig7(
            Phase::PandasOnly,
            "Figure 7a — pandas operations only",
            &opts,
        ),
        "fig7b" => fig7(
            Phase::Preprocessing,
            "Figure 7b — plus scikit-learn operations",
            &opts,
        ),
        "fig7c" => fig7(Phase::Inspection, "Figure 7c — plus inspection", &opts),
        "fig8" => fig8(&opts),
        "fig9" => fig9(),
        "table4" => table4(),
        "table5" => table5(&opts),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "all" => {
            table3();
            fig7(
                Phase::PandasOnly,
                "Figure 7a — pandas operations only",
                &opts,
            );
            fig7(
                Phase::Preprocessing,
                "Figure 7b — plus scikit-learn operations",
                &opts,
            );
            fig7(Phase::Inspection, "Figure 7c — plus inspection", &opts);
            fig8(&opts);
            fig9();
            table4();
            table5(&opts);
            fig10(&opts);
            fig11(&opts);
        }
        other => {
            eprintln!("unknown command '{other}'; see the module docs for the list");
            std::process::exit(2);
        }
    }
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        sizes: vec![100, 1_000, 10_000],
        reps: 1,
        runs: 5,
        rows: 50_000,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                if let Some(v) = it.next() {
                    opts.sizes = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                }
            }
            "--reps" => {
                if let Some(v) = it.next() {
                    opts.reps = v.parse().unwrap_or(1);
                }
            }
            "--runs" => {
                if let Some(v) = it.next() {
                    opts.runs = v.parse().unwrap_or(5);
                }
            }
            "--rows" => {
                if let Some(v) = it.next() {
                    opts.rows = v.parse().unwrap_or(100_000);
                }
            }
            _ => {}
        }
    }
    opts
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

// ---- Table 3: transpilation time ---------------------------------------------

fn table3() {
    out!("== Table 3 — transpilation time to SQL ==");
    out!("(pandas prefix / full pipeline with scikit-learn / plus inspection queries)\n");
    let mut table = TextTable::new(&[
        "pipeline",
        "pandas VIEW",
        "pandas CTE",
        "+sklearn VIEW",
        "+sklearn CTE",
        "+inspection VIEW",
        "+inspection CTE",
    ]);
    for pipeline in PIPELINES {
        let files = registry(pipeline, 200);
        let mut cells = vec![pipeline.to_string()];
        for (source, with_inspection) in [
            (pipelines::pandas_prefix(pipeline).unwrap(), false),
            (full_source(pipeline), false),
            (full_source(pipeline), true),
        ] {
            for mode in [SqlMode::View, SqlMode::Cte] {
                let started = Instant::now();
                let captured = capture_with_seed(source, 0).unwrap();
                let transpiled = SqlBackend::transpile(&captured.dag, &files, mode).unwrap();
                if with_inspection {
                    // Generating the inspection-enabled queries: one query
                    // string per operator per sensitive column.
                    for entry in transpiled.container.entries() {
                        for col in sensitive_columns(pipeline) {
                            let select = format!(
                                "SELECT \"{col}\", count(*) FROM {} GROUP BY \"{col}\"",
                                entry.name
                            );
                            std::hint::black_box(transpiled.container.query(mode, &select));
                        }
                    }
                }
                std::hint::black_box(&transpiled);
                cells.push(fmt_duration(started.elapsed()));
            }
        }
        table.row(cells);
    }
    out!("{}", table.render());
}

// ---- Figure 7: runtime sweeps ------------------------------------------------

fn fig7(phase: Phase, title: &str, opts: &Options) {
    out!("== {title} ==\n");
    for pipeline in PIPELINES {
        out!("-- {pipeline} --");
        let mut table = TextTable::new(&[
            "rows",
            "pandas",
            "pg-cte",
            "pg-view",
            "pg-view-mat",
            "umbra-cte",
            "umbra-view",
            "best-speedup",
        ]);
        for &rows in &opts.sizes {
            let mut cells = vec![rows.to_string()];
            let mut pandas_time = Duration::ZERO;
            let mut best = Duration::MAX;
            for target in Target::all() {
                let t = median(
                    (0..opts.reps)
                        .map(|r| run_once(pipeline, phase, target, rows, r as u64).elapsed)
                        .collect(),
                );
                if target == Target::Pandas {
                    pandas_time = t;
                } else {
                    best = best.min(t);
                }
                cells.push(fmt_duration(t));
            }
            cells.push(fmt_factor(pandas_time, best));
            table.row(cells);
        }
        out!("{}", table.render());
    }
}

// ---- Figure 8: end-to-end ------------------------------------------------------

fn fig8(opts: &Options) {
    out!("== Figure 8 — end-to-end performance (original sizes, incl. training) ==\n");
    let mut table = TextTable::new(&[
        "pipeline",
        "rows",
        "pandas",
        "pg-cte",
        "pg-view-mat",
        "umbra-cte",
        "accuracy",
    ]);
    for pipeline in PIPELINES {
        let rows = original_size(pipeline);
        let mut cells = vec![pipeline.to_string(), rows.to_string()];
        let mut accuracy = None;
        for target in [
            Target::Pandas,
            Target::PgCte,
            Target::PgViewMat,
            Target::UmbraCte,
        ] {
            let m = median_run(pipeline, Phase::EndToEnd, target, rows, opts.reps);
            if accuracy.is_none() {
                accuracy = m.1;
            }
            cells.push(fmt_duration(m.0));
        }
        cells.push(
            accuracy
                .map(|a| format!("{a:.4}"))
                .unwrap_or_else(|| "-".into()),
        );
        table.row(cells);
    }
    out!("{}", table.render());
}

fn median_run(
    pipeline: &str,
    phase: Phase,
    target: Target,
    rows: usize,
    reps: usize,
) -> (Duration, Option<f64>) {
    let mut times = Vec::new();
    let mut accuracy = None;
    for r in 0..reps.max(1) {
        let m = run_once(pipeline, phase, target, rows, r as u64);
        accuracy = m.artifacts.accuracies.first().copied().or(accuracy);
        times.push(m.elapsed);
    }
    (median(times), accuracy)
}

// ---- Figure 9: ratio changes during preprocessing -----------------------------

fn fig9() {
    out!("== Figure 9 — ratio changes during preprocessing (healthcare) ==\n");
    let m = run_once(
        "healthcare",
        Phase::Inspection,
        Target::UmbraCte,
        original_size("healthcare"),
        0,
    );
    let captured = capture_with_seed(pipelines::HEALTHCARE, 0).unwrap();
    for column in ["race", "age_group"] {
        out!("-- column: {column} --");
        let mut table = TextTable::new(&["op", "line", "value", "ratio", "change vs input"]);
        for node in &captured.dag.nodes {
            let Some(hist) = m.artifacts.inspections.histogram(node.id, column) else {
                continue;
            };
            let input_hist = node
                .kind
                .inputs()
                .first()
                .and_then(|i| m.artifacts.inspections.histogram(*i, column));
            for (value, ratio) in hist.ratios() {
                let change = input_hist
                    .map(|ih| format!("{:+.3}", ratio - ih.ratio(&value)))
                    .unwrap_or_else(|| "-".into());
                table.row(vec![
                    node.kind.label().to_string(),
                    node.line.to_string(),
                    value.to_string(),
                    format!("{ratio:.3}"),
                    change,
                ]);
            }
        }
        out!("{}", table.render());
    }
}

// ---- Table 4: ratios before/after preprocessing --------------------------------

fn table4() {
    out!("== Table 4 — ratios before/after preprocessing ==\n");
    for (pipeline, column) in [("healthcare", "race"), ("adult simple", "race")] {
        let m = run_once(
            pipeline,
            Phase::Inspection,
            Target::UmbraCte,
            original_size(pipeline),
            0,
        );
        let captured = capture_with_seed(full_source(pipeline), 0).unwrap();
        let Some(change) = overall_change(&captured.dag, &m.artifacts.inspections, column) else {
            continue;
        };
        out!("-- ({pipeline}) column {column} --");
        let mut table = TextTable::new(&["value", "before", "after"]);
        for (value, _) in &change.before.counts {
            table.row(vec![
                value.to_string(),
                format!("{:.6}", change.before.ratio(value)),
                format!("{:.6}", change.after.ratio(value)),
            ]);
        }
        out!("{}", table.render());
    }
}

// ---- Table 5: model accuracy over runs -----------------------------------------

fn table5(opts: &Options) {
    out!(
        "== Table 5 — model accuracy measurements ({} runs) ==\n",
        opts.runs
    );
    let mut table = TextTable::new(&["pipeline", "avg", "median", "min", "max"]);
    for pipeline in PIPELINES {
        let mut accs: Vec<f64> = (0..opts.runs)
            .map(|seed| {
                run_once(
                    pipeline,
                    Phase::EndToEnd,
                    Target::UmbraCte,
                    original_size(pipeline),
                    seed as u64,
                )
                .artifacts
                .accuracies[0]
            })
            .collect();
        accs.sort_by(f64::total_cmp);
        let avg = accs.iter().sum::<f64>() / accs.len() as f64;
        let median = accs[accs.len() / 2];
        table.row(vec![
            pipeline.to_string(),
            format!("{avg:.4}"),
            format!("{median:.4}"),
            format!("{:.4}", accs[0]),
            format!("{:.4}", accs[accs.len() - 1]),
        ]);
    }
    out!("{}", table.render());
}

// ---- Figure 10: operation-level breakdown ---------------------------------------

fn fig10(opts: &Options) {
    out!("== Figure 10 — operation-level performance (compas) ==\n");
    let sizes = if opts.sizes == vec![100, 1_000, 10_000] {
        vec![10_000, 100_000]
    } else {
        opts.sizes.clone()
    };
    for rows in sizes {
        out!("-- {rows} tuples --");
        let pandas = run_once("compas", Phase::EndToEnd, Target::Pandas, rows, 0);
        let pg = run_once("compas", Phase::EndToEnd, Target::PgViewMat, rows, 0);
        let mut table = TextTable::new(&["op", "pandas", "pg-view-mat"]);
        for ((id, label, t_pandas), (_, _, t_pg)) in pandas
            .artifacts
            .op_timings
            .iter()
            .zip(&pg.artifacts.op_timings)
        {
            table.row(vec![
                format!("#{id} {label}"),
                fmt_duration(*t_pandas),
                fmt_duration(*t_pg),
            ]);
        }
        table.row(vec![
            "TOTAL".into(),
            fmt_duration(pandas.elapsed),
            fmt_duration(pg.elapsed),
        ]);
        out!("{}", table.render());
    }
}

// ---- Figure 11: varying the number of inspected columns -------------------------

fn fig11(opts: &Options) {
    out!(
        "== Figure 11 — runtime vs. number of inspected columns (taxi, {} rows) ==\n",
        opts.rows
    );
    let mut table = TextTable::new(&[
        "#columns",
        "pandas",
        "pg-cte",
        "pg-view",
        "umbra-cte",
        "umbra-view",
    ]);
    for k in 1..=datagen::taxi::INSPECTED_COLUMNS.len() {
        let columns = &datagen::taxi::INSPECTED_COLUMNS[..k];
        let mut cells = vec![k.to_string()];
        for target in [
            Target::Pandas,
            Target::PgCte,
            Target::PgView,
            Target::UmbraCte,
            Target::UmbraView,
        ] {
            let t = median(
                (0..opts.reps)
                    .map(|r| {
                        bench::harness::run_once_with_columns(
                            "taxi",
                            Phase::Inspection,
                            target,
                            opts.rows,
                            r as u64,
                            columns,
                        )
                        .elapsed
                    })
                    .collect(),
            );
            cells.push(fmt_duration(t));
        }
        table.row(cells);
    }
    out!("{}", table.render());
}

// ---- helpers --------------------------------------------------------------------

fn full_source(pipeline: &str) -> &'static str {
    match pipeline {
        "healthcare" => pipelines::HEALTHCARE,
        "compas" => pipelines::COMPAS,
        "adult simple" => pipelines::ADULT_SIMPLE,
        "adult complex" => pipelines::ADULT_COMPLEX,
        other => panic!("unknown pipeline '{other}'"),
    }
}

fn registry(pipeline: &str, rows: usize) -> FileRegistry {
    let mut files = FileRegistry::new();
    for (name, content) in pipeline_files_cached(pipeline, rows, 97) {
        files.insert(name, content);
    }
    files
}
