//! Plain-text tables for the reproduction reports.

use std::fmt::Write as _;
use std::time::Duration;

/// An aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (h, w) in self.header.iter().zip(&widths) {
            let _ = write!(out, "{h:>w$}  ");
        }
        out.push('\n');
        for w in &widths {
            let _ = write!(out, "{}  ", "-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(out, "{c:>w$}  ");
            }
            out.push('\n');
        }
        out
    }
}

/// Human-friendly duration: `1.23s` / `45.6ms` / `789µs`.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Speedup factor `baseline / measured`, rendered like the paper's
/// "factor of N" statements.
pub fn fmt_factor(baseline: Duration, measured: Duration) -> String {
    if measured.is_zero() {
        return "inf".to_string();
    }
    let f = baseline.as_secs_f64() / measured.as_secs_f64();
    if f >= 10.0 {
        format!("×{f:.0}")
    } else {
        format!("×{f:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["rows", "pandas", "umbra"]);
        t.row(vec!["100".into(), "1.0ms".into(), "0.5ms".into()]);
        t.row(vec!["100000".into(), "900ms".into(), "9.1ms".into()]);
        let s = t.render();
        assert!(s.contains("rows"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(120)), "120µs");
    }

    #[test]
    fn factor_formatting() {
        assert_eq!(
            fmt_factor(Duration::from_secs(10), Duration::from_secs(1)),
            "×10"
        );
        assert_eq!(
            fmt_factor(Duration::from_secs(3), Duration::from_secs(2)),
            "×1.5"
        );
    }
}
