//! The adult (census income) dataset.
//!
//! Same conventions as the UCI file used by mlinspect: headerless leading
//! row-number column, `?` for missing workclass/occupation, label column
//! `income-per-year` with classes `>50K` / `<=50K`.

use crate::Prng;
use std::fmt::Write as _;

const WORKCLASSES: &[&str] = &[
    "Private",
    "Self-emp-not-inc",
    "Local-gov",
    "State-gov",
    "Federal-gov",
];
const EDUCATIONS: &[&str] = &[
    "HS-grad",
    "Some-college",
    "Bachelors",
    "Masters",
    "Doctorate",
    "11th",
];
const EDU_YEARS: &[i64] = &[9, 10, 13, 14, 16, 7];
const MARITAL: &[&str] = &["Married-civ-spouse", "Never-married", "Divorced"];
const OCCUPATIONS: &[&str] = &[
    "Tech-support",
    "Craft-repair",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
];
const RELATIONSHIPS: &[&str] = &["Husband", "Wife", "Own-child", "Not-in-family"];
const RACES: &[&str] = &[
    "White",
    "Black",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
];
const RACE_WEIGHTS: &[f64] = &[0.85, 0.09, 0.03, 0.02, 0.01];
const SEXES: &[&str] = &["Male", "Female"];
const COUNTRIES: &[&str] = &["United-States", "Mexico", "Philippines", "Germany"];

/// Generate `n` adult rows. Income correlates with education, age and hours
/// so both adult pipelines train a meaningful classifier; ~6% of workclass /
/// occupation entries are `?`.
pub fn adult_csv(n: usize, seed: u64) -> String {
    let mut rng = Prng::new(seed ^ 0xAD01);
    let mut out = String::with_capacity(n * 128);
    out.push_str(
        "age,workclass,fnlwgt,education,education-num,marital-status,occupation,relationship,race,sex,capital-gain,capital-loss,hours-per-week,native-country,income-per-year\n",
    );
    for i in 0..n {
        let age = 17 + rng.below(62) as i64;
        let edu = rng.weighted(&[0.32, 0.26, 0.22, 0.12, 0.04, 0.04]);
        let hours = 20 + rng.below(50) as i64;
        // ~25% positive class (like the real adult dataset) with a steep
        // logit in the numeric features, so adult-simple's logistic
        // regression lands near the paper's 0.8779 accuracy.
        let signal = EDU_YEARS[edu] as f64 / 16.0 * 0.5
            + (age as f64 - 17.0) / 62.0 * 0.25
            + hours as f64 / 70.0 * 0.25;
        let rich = rng.chance(((signal - 0.62) * 6.0 + 0.25).clamp(0.02, 0.98));
        let workclass = if rng.chance(0.06) {
            "?".to_string()
        } else {
            WORKCLASSES[rng.below(WORKCLASSES.len())].to_string()
        };
        let occupation = if rng.chance(0.06) {
            "?".to_string()
        } else {
            OCCUPATIONS[rng.below(OCCUPATIONS.len())].to_string()
        };
        let _ = writeln!(
            out,
            "{i},{age},{workclass},{fnlwgt},{education},{edu_num},{marital},{occupation},{rel},{race},{sex},{gain},{loss},{hours},{country},{income}",
            fnlwgt = 10_000 + rng.below(900_000),
            education = EDUCATIONS[edu],
            edu_num = EDU_YEARS[edu],
            marital = MARITAL[rng.below(MARITAL.len())],
            rel = RELATIONSHIPS[rng.below(RELATIONSHIPS.len())],
            race = RACES[rng.weighted(RACE_WEIGHTS)],
            sex = SEXES[rng.weighted(&[0.67, 0.33])],
            gain = if rng.chance(0.08) { rng.below(20_000) } else { 0 },
            loss = if rng.chance(0.05) { rng.below(2_000) } else { 0 },
            country = COUNTRIES[rng.weighted(&[0.9, 0.05, 0.03, 0.02])],
            income = if rich { ">50K" } else { "<=50K" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::{read_csv_str, CsvOptions};

    #[test]
    fn schema_matches_table2() {
        let t = read_csv_str(&adult_csv(10, 1), &CsvOptions::default().with_na("?")).unwrap();
        assert_eq!(t.columns[0], "index_");
        assert!(t.columns.iter().any(|c| c == "income-per-year"));
        assert!(t.columns.iter().any(|c| c == "hours-per-week"));
        assert_eq!(t.columns.len(), 16);
    }

    #[test]
    fn income_correlates_with_education() {
        let t = read_csv_str(&adult_csv(5000, 2), &CsvOptions::default().with_na("?")).unwrap();
        let edu_i = t.columns.iter().position(|c| c == "education-num").unwrap();
        let inc_i = t
            .columns
            .iter()
            .position(|c| c == "income-per-year")
            .unwrap();
        let rich_rate = |min_edu: i64| -> f64 {
            let rows: Vec<bool> = t
                .rows
                .iter()
                .filter(|r| r[edu_i].as_i64().unwrap() >= min_edu)
                .map(|r| r[inc_i] == ">50K".into())
                .collect();
            rows.iter().filter(|b| **b).count() as f64 / rows.len().max(1) as f64
        };
        assert!(rich_rate(14) > rich_rate(0));
    }

    #[test]
    fn has_missing_markers() {
        assert!(adult_csv(2000, 3).contains(",?,"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(adult_csv(10, 4), adult_csv(10, 4));
    }
}
