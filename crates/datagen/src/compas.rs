//! The compas dataset (recidivism scores).
//!
//! Matches the mlinspect convention: the first column is an unnamed pandas
//! row number (the header has one fewer field than the rows — paper §6).
//! Only the columns the compas pipeline touches get realistic behaviour; the
//! remaining Table 2 columns are filled with plausible constants.

use crate::Prng;
use std::fmt::Write as _;

const RACES: &[&str] = &[
    "African-American",
    "Caucasian",
    "Hispanic",
    "Other",
    "Asian",
];
const RACE_WEIGHTS: &[f64] = &[0.45, 0.35, 0.1, 0.07, 0.03];
const SCORE_TEXTS: &[&str] = &["Low", "Medium", "High", "N/A"];
const CHARGE_DEGREES: &[&str] = &["F", "M", "O"];
const SEXES: &[&str] = &["Male", "Female"];

/// Generate `n` compas rows. Score correlates with priors/age so a trained
/// model has signal; ~8% of `is_recid` values are the `-1` sentinel and a
/// few `days_b_screening_arrest` fall outside ±30, both filtered by the
/// pipeline.
pub fn compas_csv(n: usize, seed: u64) -> String {
    let mut rng = Prng::new(seed ^ 0xC0FFEE);
    let mut out = String::with_capacity(n * 128);
    out.push_str(
        "sex,dob,age,c_charge_degree,race,score_text,priors_count,days_b_screening_arrest,decile_score,is_recid,two_year_recid,c_jail_in,c_jail_out\n",
    );
    for i in 0..n {
        let age = 18 + rng.below(60) as i64;
        let priors = rng.below(15) as i64;
        // The compas pipeline's features are is_recid (one-hot) and age
        // (binned); drive the score mostly from those two so the logistic
        // regression reaches paper-like accuracy (Table 5: compas ≈ 0.81).
        let is_recid: i64 = if rng.chance(0.08) {
            -1
        } else {
            rng.chance((priors as f64 / 15.0).clamp(0.1, 0.9)) as i64
        };
        let risk = 0.55 * (is_recid == 1) as i64 as f64
            + 0.35 * (60 - (age - 18)) as f64 / 60.0
            + 0.10 * priors as f64 / 15.0;
        let score_idx = if rng.chance(0.05) {
            3 // N/A, filtered out
        } else if risk + (rng.unit() - 0.5) * 0.95 > 0.62 {
            2
        } else if risk + (rng.unit() - 0.5) * 0.95 > 0.45 {
            1
        } else {
            0
        };
        let days = if rng.chance(0.07) {
            (rng.below(300) as i64) - 150
        } else {
            (rng.below(61) as i64) - 30
        };
        let decile = 1 + ((risk * 10.0) as i64).clamp(0, 9);
        let _ = writeln!(
            out,
            "{i},{sex},{dob},{age},{degree},{race},{score},{priors},{days},{decile},{is_recid},{two_year},2013-01-01 06:00:00,2013-01-03 06:00:00",
            sex = SEXES[rng.below(2)],
            dob = format_args!("19{:02}-01-15", 90 - rng.below(60)),
            degree = CHARGE_DEGREES[rng.weighted(&[0.6, 0.38, 0.02])],
            race = RACES[rng.weighted(RACE_WEIGHTS)],
            score = SCORE_TEXTS[score_idx],
            two_year = (is_recid == 1 && rng.chance(0.8)) as i64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::{read_csv_str, CsvOptions};

    #[test]
    fn leading_row_number_column_is_headerless() {
        let t = read_csv_str(&compas_csv(20, 1), &CsvOptions::default().with_na("?")).unwrap();
        assert_eq!(t.columns[0], "index_");
        assert_eq!(t.columns[1], "sex");
        assert_eq!(t.rows.len(), 20);
    }

    #[test]
    fn contains_filterable_sentinels() {
        let csv = compas_csv(2000, 3);
        assert!(csv.contains(",N/A,"));
        assert!(csv.contains(",-1,"));
    }

    #[test]
    fn score_correlates_with_priors() {
        let t = read_csv_str(&compas_csv(3000, 5), &CsvOptions::default()).unwrap();
        let score_i = t.columns.iter().position(|c| c == "score_text").unwrap();
        let priors_i = t.columns.iter().position(|c| c == "priors_count").unwrap();
        let mean_priors = |label: &str| -> f64 {
            let rows: Vec<i64> = t
                .rows
                .iter()
                .filter(|r| r[score_i] == label.into())
                .map(|r| r[priors_i].as_i64().unwrap())
                .collect();
            rows.iter().sum::<i64>() as f64 / rows.len().max(1) as f64
        };
        assert!(mean_priors("High") > mean_priors("Low"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(compas_csv(10, 9), compas_csv(10, 9));
    }
}
