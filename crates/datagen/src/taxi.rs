//! The NYC Taxi trip-record dataset (Figure 11's workload).
//!
//! Only the columns the experiment touches are generated: the selection runs
//! on `passenger_count` and inspection expands over `trip_distance`,
//! `PULocationID`, `DOLocationID` and `payment_type` (§6.6).

use crate::Prng;
use std::fmt::Write as _;

/// The five columns §6.6 inspects, in the order the experiment adds them.
pub const INSPECTED_COLUMNS: &[&str] = &[
    "passenger_count",
    "trip_distance",
    "PULocationID",
    "DOLocationID",
    "payment_type",
];

/// Generate `n` taxi rows.
pub fn taxi_csv(n: usize, seed: u64) -> String {
    let mut rng = Prng::new(seed ^ 0x7A71);
    let mut out = String::with_capacity(n * 48);
    out.push_str("VendorID,passenger_count,trip_distance,PULocationID,DOLocationID,payment_type,fare_amount\n");
    for _ in 0..n {
        let passengers = rng.weighted(&[0.72, 0.14, 0.06, 0.04, 0.03, 0.01]);
        let distance = (rng.unit() * 15.0 * rng.unit() + 0.3).max(0.1);
        let _ = writeln!(
            out,
            "{vendor},{passengers},{distance:.2},{pu},{dol},{pay},{fare:.2}",
            vendor = 1 + rng.below(2),
            pu = 1 + rng.below(265),
            dol = 1 + rng.below(265),
            pay = 1 + rng.weighted(&[0.7, 0.25, 0.03, 0.02]),
            fare = 2.5 + distance * 2.6 + rng.unit(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::{read_csv_str, CsvOptions};

    #[test]
    fn contains_inspected_columns() {
        let t = read_csv_str(&taxi_csv(10, 1), &CsvOptions::default()).unwrap();
        for col in INSPECTED_COLUMNS {
            assert!(t.columns.iter().any(|c| c == col), "{col}");
        }
    }

    #[test]
    fn selection_passenger_count_gt_1_is_selective() {
        let t = read_csv_str(&taxi_csv(5000, 2), &CsvOptions::default()).unwrap();
        let pc = t
            .columns
            .iter()
            .position(|c| c == "passenger_count")
            .unwrap();
        let kept = t
            .rows
            .iter()
            .filter(|r| r[pc].as_i64().unwrap() > 1)
            .count();
        let fraction = kept as f64 / t.rows.len() as f64;
        // Most rides are single-passenger; the filter keeps a minority.
        assert!(fraction > 0.05 && fraction < 0.5, "{fraction}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(taxi_csv(5, 9), taxi_csv(5, 9));
    }
}
