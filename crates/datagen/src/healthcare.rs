//! The healthcare dataset: `patients.csv` + `histories.csv`.
//!
//! Schema (Table 2): patients {id, first_name, last_name, race, county,
//! num_children, income, age_group, ssn}, histories {smoker, complications,
//! ssn}; sensitive columns are `race` and `age_group`; `?` marks NULLs.

use crate::Prng;
use std::fmt::Write as _;

const FIRST_NAMES: &[&str] = &[
    "alice", "bob", "carol", "dan", "erin", "frank", "grace", "heidi", "ivan", "judy",
];
const LAST_NAMES: &[&str] = &[
    "smith", "jones", "lee", "brown", "garcia", "miller", "davis", "wilson", "moore", "taylor",
];
/// Race distribution is intentionally skewed so county filters can introduce
/// measurable bias (Figure 3's example).
const RACES: &[&str] = &["race1", "race2", "race3"];
const RACE_WEIGHTS: &[f64] = &[0.45, 0.35, 0.20];
const COUNTIES: &[&str] = &["county1", "county2", "county3", "county4"];
const AGE_GROUPS: &[&str] = &["age_group1", "age_group2", "age_group3"];

/// Generate `n` rows of `patients.csv`. Counties correlate with race and age
/// group, so the pipeline's `isin(COUNTIES_OF_INTEREST)` selection shifts
/// both sensitive ratios — the technical bias the paper inspects.
pub fn patients_csv(n: usize, seed: u64) -> String {
    let mut rng = Prng::new(seed ^ 0xABCD);
    let mut out = String::with_capacity(n * 64);
    out.push_str("id,first_name,last_name,race,county,num_children,income,age_group,ssn\n");
    for i in 0..n {
        let race = rng.weighted(RACE_WEIGHTS);
        // County skew: race3 and age_group1 concentrate in county1, which the
        // pipeline filters away.
        let county = if race == 2 && rng.chance(0.6) {
            0
        } else {
            rng.below(COUNTIES.len())
        };
        let age_group = if county == 0 && rng.chance(0.5) {
            0
        } else {
            rng.below(AGE_GROUPS.len())
        };
        // income stays non-null: the pipeline feeds it to StandardScaler
        // without imputation (nulls live in the imputed `smoker` column).
        let num_children = rng.below(5);
        let income: String = format!("{}", 20_000 + rng.below(120_000));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},ssn{}",
            i,
            FIRST_NAMES[rng.below(FIRST_NAMES.len())],
            LAST_NAMES[rng.below(LAST_NAMES.len())],
            RACES[race],
            COUNTIES[county],
            num_children,
            income,
            AGE_GROUPS[age_group],
            i,
        );
    }
    out
}

/// Generate `n` rows of `histories.csv` whose `ssn` values join `patients`.
/// ~5% of smoker entries are `?` (the imputed column). Complications are
/// strongly driven by smoking so the trained model has signal: the pipeline
/// predicts `complications > 1.2 * mean_complications(age_group)` from
/// features including the imputed smoker flag, giving paper-like accuracies
/// (Table 5: healthcare ≈ 0.9).
pub fn histories_csv(n: usize, seed: u64) -> String {
    let mut rng = Prng::new(seed ^ 0x1234);
    let mut out = String::with_capacity(n * 24);
    out.push_str("smoker,complications,ssn\n");
    for i in 0..n {
        let is_smoker = rng.chance(0.3);
        let smoker = if rng.chance(0.05) {
            "?"
        } else if is_smoker {
            "yes"
        } else {
            "no"
        };
        // ~85% signal with overlap, so accuracy lands near the paper's 0.9.
        let complications = if is_smoker == rng.chance(0.88) {
            3 + rng.below(3) // 3..=5
        } else {
            rng.below(3) // 0..=2
        };
        let _ = writeln!(out, "{smoker},{complications},ssn{i}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::{read_csv_str, CsvOptions};

    #[test]
    fn schema_matches_table2() {
        let t = read_csv_str(&patients_csv(50, 1), &CsvOptions::default().with_na("?")).unwrap();
        assert_eq!(
            t.columns,
            vec![
                "id",
                "first_name",
                "last_name",
                "race",
                "county",
                "num_children",
                "income",
                "age_group",
                "ssn"
            ]
        );
        assert_eq!(t.rows.len(), 50);
    }

    #[test]
    fn histories_join_patients_on_ssn() {
        let p = read_csv_str(&patients_csv(30, 7), &CsvOptions::default().with_na("?")).unwrap();
        let h = read_csv_str(&histories_csv(30, 7), &CsvOptions::default().with_na("?")).unwrap();
        let ssn_p = p.columns.iter().position(|c| c == "ssn").unwrap();
        let ssn_h = h.columns.iter().position(|c| c == "ssn").unwrap();
        for (pr, hr) in p.rows.iter().zip(&h.rows) {
            assert_eq!(pr[ssn_p], hr[ssn_h]);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(patients_csv(20, 5), patients_csv(20, 5));
        assert_ne!(patients_csv(20, 5), patients_csv(20, 6));
    }

    #[test]
    fn contains_nulls_marked_with_question_mark() {
        let csv = histories_csv(500, 2);
        assert!(csv.lines().any(|l| l.starts_with("?,")));
    }
}
