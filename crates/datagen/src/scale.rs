//! Dataset scaling by replication (§6: "replicating the original one until
//! the desired size is reached").

/// Replicate a CSV body (keeping its single header line) until it has
/// `target_rows` data rows. Truncates the final copy so the result is exact.
/// Key-like columns are left untouched, matching the paper's protocol — which
/// is also why it notes replication can blow up join results; generators that
/// need join-safe scaling should synthesize rather than replicate.
pub fn replicate_csv(csv: &str, target_rows: usize) -> String {
    let mut lines = csv.lines();
    let Some(header) = lines.next() else {
        return String::new();
    };
    let body: Vec<&str> = lines.filter(|l| !l.is_empty()).collect();
    let mut out = String::with_capacity(csv.len() * (target_rows / body.len().max(1) + 1));
    out.push_str(header);
    out.push('\n');
    if body.is_empty() {
        return out;
    }
    for i in 0..target_rows {
        out.push_str(body[i % body.len()]);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicates_to_exact_size() {
        let csv = "a,b\n1,2\n3,4\n";
        let scaled = replicate_csv(csv, 5);
        assert_eq!(scaled.lines().count(), 6); // header + 5
        assert!(scaled.ends_with("1,2\n"));
    }

    #[test]
    fn truncates_below_original() {
        let csv = "a\n1\n2\n3\n";
        let scaled = replicate_csv(csv, 1);
        assert_eq!(scaled, "a\n1\n");
    }

    #[test]
    fn empty_body_keeps_header() {
        assert_eq!(replicate_csv("a,b\n", 10), "a,b\n");
    }
}
