#![warn(missing_docs)]
//! Synthetic datasets matching the paper's evaluation (Table 2).
//!
//! The original evaluation uses the mlinspect repository's healthcare,
//! compas and adult CSVs plus the NYC Taxi trip records. Those exact files
//! are not redistributable here, so this crate generates deterministic
//! synthetic datasets with the **same schemas, categorical cardinalities and
//! null conventions** (`?` as NA marker, a headerless leading row-number
//! column for compas/adult), and supports the paper's scaling protocol:
//! "datasets were either extended with generated mocking data or by
//! replicating the original one until the desired size is reached" (§6).
//!
//! All generators are seeded and pure: same seed → same bytes.

pub mod adult;
pub mod compas;
pub mod healthcare;
pub mod scale;
pub mod taxi;

pub use adult::adult_csv;
pub use compas::compas_csv;
pub use healthcare::{histories_csv, patients_csv};
pub use scale::replicate_csv;
pub use taxi::taxi_csv;

/// Original dataset sizes reported in Table 2.
pub mod sizes {
    /// healthcare: patients/histories rows.
    pub const HEALTHCARE: usize = 889;
    /// compas rows.
    pub const COMPAS: usize = 2167;
    /// adult rows.
    pub const ADULT: usize = 9771;
    /// NYC taxi January 2019 rows.
    pub const TAXI_2019_01: usize = 7_667_793;
    /// NYC taxi January 2021 rows (cleaned).
    pub const TAXI_2021_01: usize = 1_271_414;
}

/// A tiny deterministic generator (xorshift*), so datasets do not depend on
/// `rand` version details and remain stable across releases.
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    /// Seeded constructor; seed 0 is remapped to a fixed constant.
    pub fn new(seed: u64) -> Prng {
        Prng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Weighted choice: returns an index with probability proportional to
    /// `weights[i]`.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut p = Prng::new(1);
        for _ in 0..100 {
            assert_ne!(p.weighted(&[0.0, 1.0, 0.0]), 0);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut p = Prng::new(3);
        for _ in 0..1000 {
            let u = p.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
