#![warn(missing_docs)]
//! Synthetic datasets matching the paper's evaluation (Table 2).
//!
//! The original evaluation uses the mlinspect repository's healthcare,
//! compas and adult CSVs plus the NYC Taxi trip records. Those exact files
//! are not redistributable here, so this crate generates deterministic
//! synthetic datasets with the **same schemas, categorical cardinalities and
//! null conventions** (`?` as NA marker, a headerless leading row-number
//! column for compas/adult), and supports the paper's scaling protocol:
//! "datasets were either extended with generated mocking data or by
//! replicating the original one until the desired size is reached" (§6).
//!
//! All generators are seeded and pure: same seed → same bytes.

pub mod adult;
pub mod compas;
pub mod healthcare;
pub mod scale;
pub mod taxi;

pub use adult::adult_csv;
pub use compas::compas_csv;
pub use healthcare::{histories_csv, patients_csv};
pub use scale::replicate_csv;
pub use taxi::taxi_csv;

/// Original dataset sizes reported in Table 2.
pub mod sizes {
    /// healthcare: patients/histories rows.
    pub const HEALTHCARE: usize = 889;
    /// compas rows.
    pub const COMPAS: usize = 2167;
    /// adult rows.
    pub const ADULT: usize = 9771;
    /// NYC taxi January 2019 rows.
    pub const TAXI_2019_01: usize = 7_667_793;
    /// NYC taxi January 2021 rows (cleaned).
    pub const TAXI_2021_01: usize = 1_271_414;
}

/// The deterministic generator all datasets are built from (xorshift*, the
/// same algorithm this crate always used, now shared workspace-wide from
/// [`etypes::rng`] so datasets remain stable across releases).
pub use etypes::Prng;
