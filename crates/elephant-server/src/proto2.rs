//! Protocol v2: the pipelined wire subsystem.
//!
//! Negotiated per connection: a client's first frame `HELLO v2` (ordinary
//! v1 framing) is answered with `+2\nv2\n`, after which both directions
//! switch to sequence-tagged v2 frames. Clients that never send the
//! handshake stay on v1 byte-for-byte — nothing in the v1 path changes.
//!
//! **Requests** are length-prefixed and tagged with a client-chosen,
//! strictly increasing sequence id:
//!
//! ```text
//! @<seq> <len>\n<payload bytes>\n
//! ```
//!
//! The payload is the same command text v1 accepts (`QUERY ...`,
//! `BATCH ...`, `EXECUTE name (args)`, ...). Because every response
//! carries its request's sequence id, a client may write many frames
//! before reading any response — **pipelining** — and match responses to
//! requests by id. The server still executes strictly in arrival order and
//! responds in that order; the ids make the ordering *checkable* and let a
//! retrying client resend exactly the commands that failed.
//!
//! **Responses** come in three shapes:
//!
//! * success — `+<seq> <len>\n<body>\n`
//! * error — `-<seq> <len>\n<CODE> <message>\n`
//! * stream chunk — `*<seq> <len>\n<bytes>\n`
//!
//! Result bodies larger than [`V2_CHUNK`] are **streamed**: the server
//! writes consecutive `*<seq>` chunks (each at most `V2_CHUNK` bytes)
//! followed by a `+<seq>` trailer whose body is
//! `stream bytes=<total> chunks=<n>`. The client reassembles the chunks;
//! the trailer lets it verify nothing was lost. Bodies larger than the
//! server's `--max-result-buffer-bytes` cap are refused with
//! `ERR_OVERSIZED` instead of being buffered, which is what bounds the
//! server's per-response memory.
//!
//! The v2 session loop **overlaps** executor work with its own socket
//! I/O: commands whose routing has no cross-command effects are queued on
//! their shard without waiting
//! ([`crate::shard::ShardRouter::submit_pipelined`]) and the session keeps
//! a FIFO of in-flight replies, answered strictly in request order — so
//! while the executor runs command *n*, the session is already parsing
//! and submitting *n+1*. Commands that do have cross-command effects
//! (DDL, PREPARE, broadcasts, cross-shard plans) first drain the FIFO and
//! then run on the ordinary synchronous path, which is what keeps the
//! observable ordering identical to v1. At most [`V2_MAX_INFLIGHT`]
//! replies are held per connection. The remaining throughput win is
//! syscall amortization: the write buffer is flushed **lazily** — only
//! when the read buffer is empty and the next read would block — so a
//! burst of pipelined commands is answered with a handful of `write`
//! syscalls instead of one flush per response.

use crate::executor::Reply;
use crate::metrics::Metrics;
use crate::protocol::{codes, parse_command, Command, MAX_FRAME};
use crate::shard::{PendingReply, ShardRouter, Submission};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The v1 frame that upgrades a connection to protocol v2.
pub const HELLO_V2: &str = "HELLO v2";

/// Fixed chunk size for streamed result bodies (64 KiB). Bodies at or
/// under this travel as one ordinary `+<seq>` response.
pub const V2_CHUNK: usize = 64 * 1024;

/// Most replies a v2 session holds in flight before it stops reading and
/// drains — bounds per-connection reply memory no matter how far ahead a
/// client pipelines.
pub const V2_MAX_INFLIGHT: usize = 128;

/// Why a v2 frame could not be read.
#[derive(Debug)]
pub enum V2Error {
    /// Underlying transport error (includes mid-frame disconnects).
    Io(io::Error),
    /// Read timed out with no (complete) frame; call again — partial data
    /// is preserved in the reader state.
    Timeout,
    /// The header declared a payload larger than [`MAX_FRAME`]. The
    /// payload has been drained; reply on `seq` and keep the connection.
    Oversized {
        /// Sequence id from the offending header.
        seq: u64,
        /// Declared payload length.
        declared: usize,
    },
    /// The payload arrived whole but is not valid UTF-8. The stream is
    /// still in sync; reply on `seq` and keep the connection.
    BadPayload {
        /// Sequence id from the offending header.
        seq: u64,
    },
    /// The header line is not `@<seq> <len>`. The stream cannot be
    /// resynchronized — answer once on sequence 0 and close.
    BadHeader(String),
}

impl From<io::Error> for V2Error {
    fn from(e: io::Error) -> Self {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            V2Error::Timeout
        } else {
            V2Error::Io(e)
        }
    }
}

/// Parse a v2 request header line (without the trailing newline) into
/// `(seq, len)`. Pure — the fuzz harness drives it directly.
pub fn parse_v2_header(line: &str) -> Result<(u64, usize), String> {
    let rest = line
        .strip_prefix('@')
        .ok_or_else(|| format!("expected '@<seq> <len>', got '{}'", printable(line)))?;
    let (seq_text, len_text) = rest
        .split_once(' ')
        .ok_or_else(|| format!("expected '@<seq> <len>', got '{}'", printable(line)))?;
    let seq: u64 = seq_text
        .parse()
        .map_err(|_| format!("bad sequence id '{}'", printable(seq_text)))?;
    let len: usize = len_text
        .trim()
        .parse()
        .map_err(|_| format!("bad length '{}'", printable(len_text)))?;
    Ok((seq, len))
}

/// Render untrusted header bytes safely for an error message.
fn printable(s: &str) -> String {
    s.chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_graphic() || c == ' ' {
                c
            } else {
                '.'
            }
        })
        .collect()
}

/// Reusable per-connection v2 frame reader. Like the v1
/// [`crate::protocol::FrameReader`], all partial state lives here so reads
/// resume cleanly after a socket timeout (the shutdown-drain poll).
#[derive(Debug, Default)]
pub struct V2FrameReader {
    line: String,
    payload: Vec<u8>,
    payload_filled: usize,
    seq: u64,
    /// Set while draining an oversized payload: (remaining, seq, declared).
    draining: Option<(usize, u64, usize)>,
}

impl V2FrameReader {
    /// Create an empty reader state.
    pub fn new() -> V2FrameReader {
        V2FrameReader::default()
    }

    /// Read one `@<seq> <len>` frame. `Ok(None)` on clean EOF at a frame
    /// boundary; [`V2Error::Timeout`] means "no complete frame yet".
    pub fn read_frame(&mut self, r: &mut impl BufRead) -> Result<Option<(u64, String)>, V2Error> {
        if let Some((remaining, seq, declared)) = self.draining.take() {
            return self.drain_oversized(r, remaining, seq, declared);
        }
        if self.payload_filled > 0 || !self.payload.is_empty() {
            return self.read_payload(r);
        }
        loop {
            match r.read_line(&mut self.line) {
                Ok(0) => {
                    return if self.line.is_empty() {
                        Ok(None)
                    } else {
                        self.line.clear();
                        Err(V2Error::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        )))
                    };
                }
                Ok(_) if !self.line.ends_with('\n') => continue,
                Ok(_) => break,
                Err(e) => return Err(V2Error::from(e)),
            }
        }
        let line = std::mem::take(&mut self.line);
        let line = line.trim_end_matches(['\n', '\r']);
        let (seq, len) = parse_v2_header(line).map_err(V2Error::BadHeader)?;
        if len > MAX_FRAME {
            // +1 for the trailing newline after the payload.
            return self.drain_oversized(r, len + 1, seq, len);
        }
        self.seq = seq;
        self.payload = vec![0u8; len + 1];
        self.payload_filled = 0;
        self.read_payload(r)
    }

    fn read_payload(&mut self, r: &mut impl Read) -> Result<Option<(u64, String)>, V2Error> {
        while self.payload_filled < self.payload.len() {
            match r.read(&mut self.payload[self.payload_filled..]) {
                Ok(0) => {
                    return Err(V2Error::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-payload",
                    )))
                }
                Ok(k) => self.payload_filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(V2Error::from(e)),
            }
        }
        let mut payload = std::mem::take(&mut self.payload);
        self.payload_filled = 0;
        payload.pop(); // trailing newline
        match String::from_utf8(payload) {
            Ok(text) => Ok(Some((self.seq, text))),
            Err(_) => Err(V2Error::BadPayload { seq: self.seq }),
        }
    }

    fn drain_oversized(
        &mut self,
        r: &mut impl Read,
        mut remaining: usize,
        seq: u64,
        declared: usize,
    ) -> Result<Option<(u64, String)>, V2Error> {
        let mut chunk = [0u8; 8192];
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(V2Error::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-payload",
                    )))
                }
                Ok(k) => remaining -= k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let ve = V2Error::from(e);
                    if matches!(ve, V2Error::Timeout) {
                        self.draining = Some((remaining, seq, declared));
                    }
                    return Err(ve);
                }
            }
        }
        Err(V2Error::Oversized { seq, declared })
    }
}

/// Write a v2 success response: `+<seq> <len>\n<body>\n`. No flush — the
/// session loop flushes lazily.
pub fn write_v2_ok(w: &mut impl Write, seq: u64, body: &str) -> io::Result<()> {
    write!(w, "+{seq} {}\n{}\n", body.len(), body)
}

/// Write a v2 error response: `-<seq> <len>\n<CODE> <message>\n`.
pub fn write_v2_err(w: &mut impl Write, seq: u64, code: &str, msg: &str) -> io::Result<()> {
    let msg = msg.replace('\n', " ");
    let body = format!("{code} {msg}");
    write!(w, "-{seq} {}\n{}\n", body.len(), body)
}

/// Write one stream chunk: `*<seq> <len>\n<bytes>\n`.
pub fn write_v2_chunk(w: &mut impl Write, seq: u64, chunk: &[u8]) -> io::Result<()> {
    writeln!(w, "*{seq} {}", chunk.len())?;
    w.write_all(chunk)?;
    w.write_all(b"\n")
}

/// Run the v2 half of a session, entered after the `HELLO v2` handshake
/// has been acknowledged on the v1 framing. Returns when the client
/// disconnects, the stream desynchronizes, or the server drains.
pub(crate) fn run_v2_session(
    mut reader: BufReader<TcpStream>,
    writer: TcpStream,
    session_id: u64,
    router: Arc<ShardRouter>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    max_result_buffer: usize,
) {
    let mut writer = BufWriter::new(writer);
    let mut frames = V2FrameReader::new();
    let mut last_seq: u64 = 0;
    // Replies owed to the client, in request order. Protocol errors and
    // synchronous-path replies enter as `Ready`; overlapped commands as
    // `InFlight`. Nothing is written out of turn.
    let mut pending: VecDeque<(u64, Slot)> = VecDeque::new();
    'conn: loop {
        // Lazy flush: if the read buffer still holds request bytes the
        // client has pipelined ahead — keep submitting and accumulating
        // replies. Only when the next read would actually block does the
        // session settle every owed reply and flush.
        if reader.buffer().is_empty() {
            if drain(
                &mut writer,
                &router,
                &metrics,
                &mut pending,
                max_result_buffer,
            )
            .is_err()
                || writer.flush().is_err()
            {
                break;
            }
        } else {
            metrics.pipelined_frames.fetch_add(1, Ordering::Relaxed);
        }
        let (seq, payload) = match frames.read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean disconnect
            Err(V2Error::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break; // draining: drop idle connections
                }
                continue;
            }
            Err(V2Error::Oversized { seq, declared }) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let msg = format!("frame of {declared} bytes exceeds limit");
                pending.push_back((seq, Slot::Ready(Err((codes::OVERSIZED, msg)))));
                continue;
            }
            Err(V2Error::BadPayload { seq }) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let msg = "payload is not UTF-8".to_string();
                pending.push_back((seq, Slot::Ready(Err((codes::PARSE, msg)))));
                continue;
            }
            Err(V2Error::BadHeader(what)) => {
                // The framing is gone; there is no way to find the next
                // frame boundary reliably. Settle what is owed, answer
                // once on sequence 0, and hang up.
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if drain(
                    &mut writer,
                    &router,
                    &metrics,
                    &mut pending,
                    max_result_buffer,
                )
                .is_ok()
                {
                    let _ = write_v2_err(
                        &mut writer,
                        0,
                        codes::PARSE,
                        &format!("bad v2 frame header: {what}"),
                    );
                }
                break;
            }
            Err(V2Error::Io(_)) => break,
        };

        if seq <= last_seq {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let msg =
                format!("sequence id {seq} is not greater than the last accepted ({last_seq})");
            pending.push_back((seq, Slot::Ready(Err((codes::PARSE, msg)))));
            continue;
        }
        last_seq = seq;

        let command = match parse_command(&payload) {
            Ok(c) => c,
            Err((code, msg)) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                pending.push_back((seq, Slot::Ready(Err((code, msg)))));
                continue;
            }
        };

        if shutdown.load(Ordering::SeqCst) && !matches!(command, Command::Shutdown | Command::Stats)
        {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let msg = "server is draining".to_string();
            pending.push_back((seq, Slot::Ready(Err((codes::DRAINING, msg)))));
            continue;
        }

        // Rolling in-flight window: settle the oldest reply before
        // submitting past the cap, so a client pipelining arbitrarily far
        // ahead costs bounded reply memory without ever stalling flat.
        if pending.len() >= V2_MAX_INFLIGHT
            && !settle_front(
                &mut writer,
                &router,
                &metrics,
                &mut pending,
                max_result_buffer,
            )
        {
            break;
        }
        let mut command = command;
        loop {
            match router.submit_pipelined(session_id, command) {
                Ok(Submission::Pending(reply)) => {
                    pending.push_back((seq, Slot::InFlight(reply)));
                    break;
                }
                Ok(Submission::Backpressure(c)) if !pending.is_empty() => {
                    // Shard queue full while replies are in flight: settle
                    // the oldest — once it is answered the executor has
                    // freed at least one slot — and resubmit.
                    if !settle_front(
                        &mut writer,
                        &router,
                        &metrics,
                        &mut pending,
                        max_result_buffer,
                    ) {
                        break 'conn;
                    }
                    command = c;
                }
                Ok(Submission::Sync(c)) | Ok(Submission::Backpressure(c)) => {
                    // Sync: cross-command effects mean everything queued so
                    // far must finish (and be answered) before this runs.
                    // Backpressure with nothing in flight lands here too —
                    // the synchronous path's bounded admission wait is what
                    // turns sustained overload into ERR_BUSY.
                    if drain(
                        &mut writer,
                        &router,
                        &metrics,
                        &mut pending,
                        max_result_buffer,
                    )
                    .is_err()
                    {
                        break 'conn;
                    }
                    let reply = router.submit(session_id, c);
                    pending.push_back((seq, Slot::Ready(reply)));
                    break;
                }
                Err(e) => {
                    pending.push_back((seq, Slot::Ready(Err(e))));
                    break;
                }
            }
        }
    }
    // Settle whatever is still owed: queued jobs have already executed (or
    // will momentarily), so their replies must reach the client if the
    // socket still works — and their trace roots must close either way.
    let _ = drain(
        &mut writer,
        &router,
        &metrics,
        &mut pending,
        max_result_buffer,
    );
    let _ = writer.flush();
    router.close_session(session_id);
}

/// One reply owed to the v2 client.
enum Slot {
    /// Still running in an executor (overlapped submission).
    InFlight(PendingReply),
    /// Already known: protocol errors, admission refusals, and replies
    /// from the synchronous path.
    Ready(Reply),
}

/// Collect one owed reply, closing its trace root if it is still in
/// flight.
fn collect(router: &ShardRouter, slot: Slot) -> Reply {
    match slot {
        Slot::InFlight(p) => router.finish_pipelined(p),
        Slot::Ready(r) => r,
    }
}

/// Write one reply (success, stream, cap refusal, or error). `false` when
/// the connection is done — the transport failed or the reply was a fatal
/// `ERR_INTERNAL`.
fn write_reply(
    writer: &mut impl Write,
    metrics: &Metrics,
    seq: u64,
    reply: Reply,
    max_result_buffer: usize,
) -> bool {
    match reply {
        Ok(body) if body.len() > V2_CHUNK => {
            if body.len() > max_result_buffer {
                metrics.exec_errors.fetch_add(1, Ordering::Relaxed);
                let msg = format!(
                    "result of {} bytes exceeds the {max_result_buffer} byte \
                     result-buffer cap (--max-result-buffer-bytes)",
                    body.len()
                );
                write_v2_err(writer, seq, codes::OVERSIZED, &msg).is_ok()
            } else {
                stream_body(writer, seq, &body, metrics).is_ok()
            }
        }
        Ok(body) => write_v2_ok(writer, seq, &body).is_ok(),
        Err((code, msg)) => {
            let fatal = code == codes::INTERNAL;
            write_v2_err(writer, seq, code, &msg).is_ok() && !fatal
        }
    }
}

/// Settle the oldest owed reply, if any. `true` when the connection stays
/// usable.
fn settle_front(
    writer: &mut impl Write,
    router: &ShardRouter,
    metrics: &Metrics,
    pending: &mut VecDeque<(u64, Slot)>,
    max_result_buffer: usize,
) -> bool {
    match pending.pop_front() {
        Some((seq, slot)) => {
            let reply = collect(router, slot);
            write_reply(writer, metrics, seq, reply, max_result_buffer)
        }
        None => true,
    }
}

/// Write every owed reply in request order. On a write failure (or a fatal
/// `ERR_INTERNAL` reply) the remaining in-flight replies are still
/// collected — their root spans must close — but nothing more is written
/// and the connection is reported dead via `Err`.
fn drain(
    writer: &mut impl Write,
    router: &ShardRouter,
    metrics: &Metrics,
    pending: &mut VecDeque<(u64, Slot)>,
    max_result_buffer: usize,
) -> Result<(), ()> {
    let mut dead = false;
    while let Some((seq, slot)) = pending.pop_front() {
        let reply = collect(router, slot);
        if !dead {
            dead = !write_reply(writer, metrics, seq, reply, max_result_buffer);
        }
    }
    if dead {
        Err(())
    } else {
        Ok(())
    }
}

/// Stream one oversized body as `*<seq>` chunks plus the `+<seq>` trailer,
/// accounting the bytes in the result-buffer gauges while they are in
/// flight.
fn stream_body(w: &mut impl Write, seq: u64, body: &str, metrics: &Metrics) -> io::Result<()> {
    let total = body.len();
    metrics.result_buffer_grow(total as u64);
    let mut chunks = 0u64;
    let mut result = Ok(());
    for chunk in body.as_bytes().chunks(V2_CHUNK) {
        result = write_v2_chunk(w, seq, chunk);
        if result.is_err() {
            break;
        }
        chunks += 1;
        metrics.chunks_streamed.fetch_add(1, Ordering::Relaxed);
        // Chunks reach the socket incrementally; the gauge tracks what is
        // still waiting to be written.
        metrics.result_buffer_shrink(chunk.len() as u64);
    }
    if result.is_ok() {
        result = write_v2_ok(w, seq, &format!("stream bytes={total} chunks={chunks}"));
    } else {
        // Unstreamed remainder: release it from the gauge.
        let sent: u64 = (chunks as usize * V2_CHUNK).min(total) as u64;
        metrics.result_buffer_shrink(total as u64 - sent);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn header_parses_and_rejects() {
        assert_eq!(parse_v2_header("@1 5").unwrap(), (1, 5));
        assert_eq!(parse_v2_header("@42 0").unwrap(), (42, 0));
        assert_eq!(
            parse_v2_header(&format!("@{} {}", u64::MAX, MAX_FRAME)).unwrap(),
            (u64::MAX, MAX_FRAME)
        );
        for bad in [
            "",
            "@",
            "@1",
            "@ 5",
            "@x 5",
            "@1 x",
            "@-1 5",
            "@1 -5",
            "QUERY SELECT 1",
        ] {
            assert!(parse_v2_header(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn frame_roundtrip() {
        let mut r = Cursor::new(b"@7 14\nQUERY SELECT 1\n@9 3\nLAG\n".to_vec());
        let mut frames = V2FrameReader::new();
        assert_eq!(
            frames.read_frame(&mut r).unwrap(),
            Some((7, "QUERY SELECT 1".into()))
        );
        assert_eq!(frames.read_frame(&mut r).unwrap(), Some((9, "LAG".into())));
        assert_eq!(frames.read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_drained_and_typed() {
        let declared = MAX_FRAME + 3;
        let mut input = format!("@5 {declared}\n").into_bytes();
        input.extend(std::iter::repeat_n(b'x', declared));
        input.push(b'\n');
        input.extend_from_slice(b"@6 3\nLAG\n");
        let mut r = Cursor::new(input);
        let mut frames = V2FrameReader::new();
        match frames.read_frame(&mut r) {
            Err(V2Error::Oversized { seq, declared: d }) => {
                assert_eq!(seq, 5);
                assert_eq!(d, declared);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The connection is still usable: the next frame parses.
        assert_eq!(frames.read_frame(&mut r).unwrap(), Some((6, "LAG".into())));
    }

    #[test]
    fn bad_payload_utf8_keeps_sync() {
        let mut input = b"@3 4\n".to_vec();
        input.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc, b'\n']);
        input.extend_from_slice(b"@4 3\nLAG\n");
        let mut r = Cursor::new(input);
        let mut frames = V2FrameReader::new();
        match frames.read_frame(&mut r) {
            Err(V2Error::BadPayload { seq }) => assert_eq!(seq, 3),
            other => panic!("expected BadPayload, got {other:?}"),
        }
        assert_eq!(frames.read_frame(&mut r).unwrap(), Some((4, "LAG".into())));
    }

    #[test]
    fn truncated_payload_is_unexpected_eof() {
        let mut r = Cursor::new(b"@1 100\nonly a few bytes".to_vec());
        let mut frames = V2FrameReader::new();
        match frames.read_frame(&mut r) {
            Err(V2Error::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected Io(UnexpectedEof), got {other:?}"),
        }
    }

    #[test]
    fn writers_emit_the_documented_shapes() {
        let mut buf = Vec::new();
        write_v2_ok(&mut buf, 3, "ok 1").unwrap();
        write_v2_err(&mut buf, 4, codes::BUSY, "queue full\nretry").unwrap();
        write_v2_chunk(&mut buf, 5, b"abc").unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "+3 4\nok 1\n-4 25\nERR_BUSY queue full retry\n*5 3\nabc\n"
        );
    }
}
